//! Streaming-scan integration tests: the `iter_range` cursor stack must be
//! observationally identical to the materialising `range` path across
//! random histories (including flushes and compactions *between* creating
//! an iterator and draining it), scans must respect boundary conditions,
//! compactions must run in bounded memory, and the secondary-scan
//! delete-key pruning + re-validation short-circuit must stay exact under
//! concurrent flush churn.

use bytes::Bytes;
use lethe::lsm::cursor::probe;
use lethe::lsm::LsmConfig;
use lethe::{Lethe, LetheBuilder, ShardedLetheBuilder};
use proptest::prelude::*;

fn small_config(h: usize) -> LsmConfig {
    let mut cfg = LsmConfig::small_for_test();
    cfg.pages_per_delete_tile = h;
    cfg.max_pages_per_file = (8usize).max(h);
    if !cfg.max_pages_per_file.is_multiple_of(h) {
        cfg.max_pages_per_file = cfg.max_pages_per_file.div_ceil(h) * h;
    }
    cfg.size_ratio = 3;
    cfg
}

fn small_db(h: usize) -> Lethe {
    LetheBuilder::new()
        .with_config(small_config(h))
        .delete_persistence_threshold_secs(60.0)
        .build()
        .unwrap()
}

fn value(k: u64) -> Bytes {
    Bytes::from(format!("value-{k:08}"))
}

/// Fully drains an iter_range iterator, panicking on I/O errors.
fn drain(iter: impl Iterator<Item = lethe::storage::Result<(u64, Bytes)>>) -> Vec<(u64, Bytes)> {
    iter.map(|r| r.unwrap()).collect()
}

// ------------------------------------------------------------- boundaries

#[test]
fn scan_boundary_conditions() {
    let mut db = small_db(2);
    for k in 0..300u64 {
        db.put(k, k, value(k)).unwrap();
    }
    // a key at the very top of the domain must survive flush, compaction
    // and full-domain scans (a half-open [0, MAX) scan cannot see it, but
    // the compaction merge must not lose it)
    db.put(u64::MAX, 7, value(7)).unwrap();
    db.persist().unwrap();
    db.tree_mut().force_full_compaction().unwrap();
    assert_eq!(db.get(u64::MAX).unwrap(), Some(value(7)));

    // hi <= lo: empty, both materialised and streamed
    assert!(db.range(10, 10).unwrap().is_empty());
    assert!(db.range(20, 10).unwrap().is_empty());
    assert_eq!(db.iter_range(10, 10).unwrap().count(), 0);
    assert_eq!(db.iter_range(20, 10).unwrap().count(), 0);

    // lo == u64::MAX: the half-open range [MAX, MAX) is empty
    assert!(db.range(u64::MAX, u64::MAX).unwrap().is_empty());
    assert_eq!(db.iter_range(u64::MAX, u64::MAX).unwrap().count(), 0);

    // full-domain [0, MAX): every key except the one at MAX itself
    let full = db.range(0, u64::MAX).unwrap();
    assert_eq!(full.len(), 300);
    let streamed = drain(db.iter_range(0, u64::MAX).unwrap());
    assert_eq!(streamed, full);

    // a range that covers MAX inclusively does not exist in the half-open
    // API; the key is still reachable by point lookup (checked above) and
    // by a scan starting at MAX - 1... which excludes MAX too:
    assert!(db.range(u64::MAX - 1, u64::MAX).unwrap().is_empty());

    // scans over an empty tree
    let empty = small_db(1);
    assert!(empty.range(0, u64::MAX).unwrap().is_empty());
    assert_eq!(empty.iter_range(0, u64::MAX).unwrap().count(), 0);
}

#[test]
fn sharded_iter_range_matches_range_and_pages_early() {
    let db = ShardedLetheBuilder::new()
        .shards(4)
        .buffer(8, 4, 64)
        .size_ratio(4)
        .delete_persistence_threshold_secs(60.0)
        .build()
        .unwrap();
    for k in 0..2_000u64 {
        db.put(k, k % 97, format!("v{k}")).unwrap();
    }
    db.persist().unwrap();
    for k in (0..500u64).step_by(5) {
        db.delete(k).unwrap();
    }
    let materialised = db.range(0, 2_000).unwrap();
    let streamed: Vec<(u64, Bytes)> = db.iter_range(0, 2_000).map(|r| r.unwrap()).collect();
    assert_eq!(streamed, materialised);
    // global sort-key order
    assert!(streamed.windows(2).all(|w| w[0].0 < w[1].0));

    // a paging client stops early and pays only for the prefix
    let page: Vec<u64> = db.iter_range(0, 2_000).take(10).map(|r| r.unwrap().0).collect();
    assert_eq!(page, materialised[..10].iter().map(|(k, _)| *k).collect::<Vec<_>>());
}

// -------------------------------------------------- proptest: equivalence

/// One step of a random history; scans interleave with mutations and
/// maintenance so iterators are created against every tree shape.
#[derive(Debug, Clone)]
enum Step {
    Put(u64, u8),
    Delete(u64),
    DeleteRange(u64, u64),
    SecondaryDelete(u64, u64),
    Persist,
    /// Create an `iter_range` iterator and a materialised `range` result for
    /// the same bounds, drain `consume_before` items, run the *next* steps
    /// of the history (mutations, flushes, compactions), then drain the
    /// rest: the stream must equal the creation-time materialised result.
    Scan { lo: u64, len: u64, consume_before: usize },
}

fn step_strategy(key_space: u64) -> impl Strategy<Value = Step> {
    prop_oneof![
        8 => (0..key_space, any::<u8>()).prop_map(|(k, v)| Step::Put(k, v)),
        2 => (0..key_space).prop_map(Step::Delete),
        1 => (0..key_space, 1..(key_space / 4).max(2))
            .prop_map(|(s, len)| Step::DeleteRange(s, s + len)),
        1 => (0..key_space, 1..(key_space / 4).max(2))
            .prop_map(|(s, len)| Step::SecondaryDelete(s, s + len)),
        1 => Just(Step::Persist),
        3 => (0..key_space, 0..key_space, 0usize..64)
            .prop_map(|(lo, len, c)| Step::Scan { lo, len, consume_before: c }),
    ]
}

fn delete_key_of(k: u64, key_space: u64) -> u64 {
    k.wrapping_mul(31) % key_space
}

fn check_streaming_matches_materialised(ops: &[Step], key_space: u64, h: usize) {
    let mut db = small_db(h);
    let mut i = 0usize;
    while i < ops.len() {
        match ops[i].clone() {
            Step::Put(k, v) => {
                db.put(k, delete_key_of(k, key_space), vec![v; 9]).unwrap();
            }
            Step::Delete(k) => {
                db.delete(k).unwrap();
            }
            Step::DeleteRange(s, e) => db.delete_range(s, e).unwrap(),
            Step::SecondaryDelete(s, e) => {
                db.delete_where_delete_key_in(s, e).unwrap();
            }
            Step::Persist => db.persist().unwrap(),
            Step::Scan { lo, len, consume_before } => {
                let hi = lo.saturating_add(len);
                let expected = db.range(lo, hi).unwrap();
                let mut iter = db.iter_range(lo, hi).unwrap();
                let mut got: Vec<(u64, Bytes)> = Vec::new();
                for _ in 0..consume_before {
                    match iter.next() {
                        Some(r) => got.push(r.unwrap()),
                        None => break,
                    }
                }
                // mutate the tree mid-iteration: apply the remaining steps'
                // mutations plus forced maintenance before draining
                let lookahead = ops[i + 1..].iter().take(8).cloned().collect::<Vec<_>>();
                for step in &lookahead {
                    match step.clone() {
                        Step::Put(k, v) => {
                            db.put(k, delete_key_of(k, key_space), vec![v; 9]).unwrap()
                        }
                        Step::Delete(k) => {
                            db.delete(k).unwrap();
                        }
                        Step::DeleteRange(s, e) => db.delete_range(s, e).unwrap(),
                        Step::SecondaryDelete(s, e) => {
                            db.delete_where_delete_key_in(s, e).unwrap();
                        }
                        _ => {}
                    }
                }
                db.persist().unwrap();
                db.tree_mut().force_full_compaction().unwrap();
                got.extend(iter.map(|r| r.unwrap()));
                assert_eq!(
                    got, expected,
                    "stream [{lo}, {hi}) diverged from its creation-time snapshot"
                );
                // the consumed lookahead steps were already applied: skip them
                i += lookahead.len();
            }
        }
        i += 1;
    }
    // final full-domain check: range() is separately oracle-checked in
    // property_tests.rs, so the streamed result only needs to agree with it
    let expected = db.range(0, u64::MAX).unwrap();
    let streamed = drain(db.iter_range(0, u64::MAX).unwrap());
    assert_eq!(streamed, expected);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// `iter_range` streams byte-identical results to the materialising
    /// `range` taken at iterator-creation time, across random histories
    /// with flushes, compactions and secondary deletes applied while the
    /// iterator is half-drained (snapshot isolation).
    #[test]
    fn streaming_scan_equals_materialised_scan(
        ops in prop::collection::vec(step_strategy(256), 1..300),
    ) {
        check_streaming_matches_materialised(&ops, 256, 2);
    }

    /// Same with wide delete tiles (h = 8): the within-tile page re-sort is
    /// exercised hard.
    #[test]
    fn streaming_scan_equals_materialised_scan_wide_tiles(
        ops in prop::collection::vec(step_strategy(128), 1..200),
    ) {
        check_streaming_matches_materialised(&ops, 128, 8);
    }
}

// ------------------------------------------------- bounded-memory merges

/// A compaction that merges the whole tree must not materialise its input:
/// the streaming execute phase peaks at one output file's entries plus one
/// delete tile per input file — far below the total entry count.
#[test]
fn full_compaction_memory_is_bounded_by_file_granularity() {
    let mut cfg = small_config(2);
    cfg.buffer_pages = 32; // 128-entry flushes
    cfg.max_pages_per_file = 32; // 128-entry files (tiles stay at h·B = 8)
    cfg.size_ratio = 10; // keep many files resident without compacting much
    let mut db = LetheBuilder::new()
        .with_config(cfg.clone())
        .delete_persistence_threshold_secs(600.0)
        .build()
        .unwrap();
    let total = 20_000u64;
    for k in 0..total {
        db.put(k, (k * 37) % 10_000, value(k)).unwrap();
    }
    db.persist().unwrap();
    let files: usize = db.tree().files_per_level().iter().sum();
    assert!(files > 20, "need many input files to make this meaningful, got {files}");

    probe::reset();
    db.tree_mut().force_full_compaction().unwrap();
    let peak = probe::peak();

    // bound: one output file chunk + one tile per input file + slack
    let per_file = (cfg.max_pages_per_file * cfg.entries_per_page) as u64;
    let per_tile = (cfg.pages_per_delete_tile * cfg.entries_per_page) as u64;
    let bound = per_file + files as u64 * per_tile + 64;
    assert!(
        peak <= bound,
        "compaction peak working set {peak} exceeds file-granularity bound {bound}"
    );
    assert!(
        peak < total / 4,
        "compaction peak working set {peak} is proportional to input ({total} entries)"
    );
    // and the merge was correct
    assert_eq!(db.range(0, u64::MAX).unwrap().len(), total as usize);
}

// ------------------------------------------ secondary-scan fence pruning

/// With delete keys correlated to sort keys, every file covers a narrow
/// delete-key slice, so a narrow secondary scan must skip almost every file
/// — observable as a collapse in `pages_read`.
#[test]
fn secondary_scan_prunes_files_by_delete_key_bounds() {
    let mut db = small_db(2);
    // correlated: delete key == sort key, so files partition the delete-key
    // domain exactly like the sort-key domain
    let total = 4_000u64;
    for k in 0..total {
        db.put(k, k, value(k)).unwrap();
    }
    db.persist().unwrap();
    let files: usize = db.tree().files_per_level().iter().sum();
    assert!(files > 8, "need several files, got {files}");

    let before = db.io_snapshot();
    let hits = db.scan_by_delete_key(100, 140).unwrap();
    let read = db.io_snapshot().since(&before).pages_read;
    assert_eq!(hits.len(), 40);
    assert!(hits.iter().all(|e| (100..140).contains(&e.delete_key)));

    // the two KiWi fence levels together bound the reads: file-level
    // delete-key bounds skip non-intersecting files outright (the per-file
    // min/max added by this PR) and the per-tile delete fences prune within
    // the few files that do intersect. Only those pages plus the
    // per-candidate verification lookups may be read — an eighth of the
    // device is a generous ceiling.
    let total_pages: u64 = db
        .tree()
        .levels()
        .iter()
        .flat_map(|l| l.all_tables().map(|t| t.page_count() as u64).collect::<Vec<_>>())
        .sum();
    assert!(
        read < total_pages / 8,
        "narrow secondary scan read {read} of {total_pages} pages — file pruning is not working"
    );
}

/// The delete-key bounds drive pruning after a restart too: they are
/// recorded in the manifest and adopted by `SsTable::recover`.
#[test]
fn secondary_scan_pruning_survives_recovery() {
    let dir = std::env::temp_dir().join(format!("lethe-scanprune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open = || {
        LetheBuilder::new()
            .with_config(small_config(2))
            .delete_persistence_threshold_secs(60.0)
            .open(&dir)
            .unwrap()
    };
    {
        let mut db = open();
        for k in 0..2_000u64 {
            db.put(k, k, value(k)).unwrap();
        }
        db.persist().unwrap();
    }
    {
        let db = open();
        let before = db.io_snapshot();
        let hits = db.scan_by_delete_key(50, 80).unwrap();
        assert_eq!(hits.len(), 30);
        let read = db.io_snapshot().since(&before).pages_read;
        let total_pages: u64 = db
            .tree()
            .levels()
            .iter()
            .flat_map(|l| l.all_tables().map(|t| t.page_count() as u64).collect::<Vec<_>>())
            .sum();
        assert!(
            read < total_pages / 4,
            "post-recovery narrow scan read {read} of {total_pages} pages"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------- secondary scan under concurrent churn

/// Oracle test for the re-validation short-circuit: a stable, fully-acked
/// population must be returned by every secondary scan while a concurrent
/// writer forces continuous flushes and compactions (entries move between
/// memtable, frozen buffer and versions mid-scan, exercising both the
/// pinned-version fast path and the re-pin fallback).
#[test]
fn secondary_scan_is_exact_under_concurrent_flush_churn() {
    let db = ShardedLetheBuilder::new()
        .shards(2)
        .buffer(8, 4, 64)
        .size_ratio(3)
        .delete_persistence_threshold_secs(600.0)
        .build()
        .unwrap();
    let stable = 400u64;
    for k in 0..stable {
        db.put(k, k, value(k)).unwrap();
    }
    db.persist().unwrap();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let db_ref = &db;
        let stop_ref = &stop;
        // churn writer: disjoint keys, disjoint delete keys, constant
        // updates → constant freezes, flushes and compactions
        s.spawn(move || {
            let mut k = 0u64;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                // keys and delete keys both live far outside the stable
                // population; constant updates force freeze/flush/compaction
                db_ref
                    .put(1_000_000 + (k % 50_000), 1_000_000 + (k % 1_000), value(k))
                    .unwrap();
                k += 1;
            }
        });
        // scanner: the stable population must always be complete
        for _ in 0..200 {
            let hits = db_ref.scan_by_delete_key(0, stable).unwrap();
            let keys: Vec<u64> = hits.iter().map(|e| e.sort_key).collect();
            assert_eq!(
                keys,
                (0..stable).collect::<Vec<u64>>(),
                "a scan under churn lost or duplicated acked entries"
            );
            assert!(hits.iter().all(|e| e.delete_key < stable));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}
