//! Concurrent-access tests for the sharded front-end: `ShardedLethe` is
//! hammered from many threads with interleaved puts/deletes/gets and checked
//! against a `Mutex<BTreeMap>` oracle (the same oracle pattern as
//! `crates/bench/src/bin/fuzz_oracle.rs`, held under a lock so every thread
//! can update it).
//!
//! Determinism: each thread owns a disjoint slice of the key space and runs
//! a seeded operation stream, so the *final* store state is independent of
//! the thread interleaving and can be compared against the oracle exactly.

use lethe::workload::{run_concurrent, BatchWriteOp, Operation, WorkloadSpec};
use lethe::{ShardedLethe, ShardedLetheBuilder, WriteBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Mutex;

const THREADS: u64 = 6;
const KEYS_PER_THREAD: u64 = 2_000;
const OPS_PER_THREAD: u64 = 6_000;

fn small_sharded(shards: usize) -> ShardedLethe {
    ShardedLetheBuilder::new()
        .shards(shards)
        .buffer(8, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(2.0)
        .build()
        .unwrap()
}

/// The oracle's view of one entry: `(delete_key, value)`.
type Oracle = Mutex<BTreeMap<u64, (u64, Vec<u8>)>>;

/// Runs one seeded thread of interleaved mutations over the thread's own key
/// slice `[base, base + KEYS_PER_THREAD)`, updating the shared oracle, and
/// checking point lookups against it as it goes.
fn hammer(db: &ShardedLethe, oracle: &Oracle, thread: u64) {
    let base = thread * KEYS_PER_THREAD;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ thread);
    for _ in 0..OPS_PER_THREAD {
        let k = base + rng.gen_range(0..KEYS_PER_THREAD);
        match rng.gen_range(0..10u32) {
            // 60% puts
            0..=5 => {
                let d = k.wrapping_mul(31) % (THREADS * KEYS_PER_THREAD);
                let v = vec![rng.gen::<u8>(); 9];
                db.put(k, d, v.clone()).unwrap();
                oracle.lock().unwrap().insert(k, (d, v));
            }
            // 20% point deletes
            6..=7 => {
                db.delete(k).unwrap();
                oracle.lock().unwrap().remove(&k);
            }
            // 20% point lookups, verified against the oracle mid-run (the
            // thread is the only writer of its slice, so the expectation is
            // stable even while other threads run)
            _ => {
                let expected = oracle.lock().unwrap().get(&k).map(|(_, v)| v.clone());
                let got = db.get(k).unwrap().map(|b| b.to_vec());
                assert_eq!(got, expected, "thread {thread}: key {k} diverged mid-run");
            }
        }
    }
}

#[test]
fn concurrent_hammer_matches_oracle() {
    let db = small_sharded(4);
    let oracle: Oracle = Mutex::new(BTreeMap::new());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            let oracle = &oracle;
            s.spawn(move || hammer(db, oracle, t));
        }
    });

    db.persist().unwrap();
    let oracle = oracle.into_inner().unwrap();

    // every key of the key space agrees with the oracle after the dust settles
    let key_space = THREADS * KEYS_PER_THREAD;
    for k in 0..key_space {
        let expected = oracle.get(&k).map(|(_, v)| v.clone());
        let got = db.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(got, expected, "key {k} disagrees with the oracle");
    }

    // a full fan-out scan returns exactly the oracle's live keys, in order
    let scan: Vec<u64> = db.range(0, key_space).unwrap().into_iter().map(|(k, _)| k).collect();
    let expected: Vec<u64> = oracle.keys().copied().collect();
    assert_eq!(scan, expected);

    // a fan-out secondary range delete agrees with the oracle too: every
    // live entry with a qualifying delete key disappears, everything else
    // survives. (`entries_deleted` counts physical removals, which can
    // exceed the live count when stale versions are still on disk, so it is
    // checked as a lower bound.)
    let cutoff = key_space / 3;
    let stats = db.delete_where_delete_key_in(0, cutoff).unwrap();
    let expected_deleted = oracle.values().filter(|(d, _)| *d < cutoff).count() as u64;
    assert!(
        stats.entries_deleted >= expected_deleted,
        "physically deleted {} < {expected_deleted} live qualifying entries",
        stats.entries_deleted
    );
    assert!(db.scan_by_delete_key(0, cutoff).unwrap().is_empty());
    for (k, (d, v)) in &oracle {
        let got = db.get(*k).unwrap().map(|b| b.to_vec());
        if *d < cutoff {
            assert_eq!(got, None, "key {k} (delete key {d}) survived the purge");
        } else {
            assert_eq!(got.as_ref(), Some(v), "key {k} (delete key {d}) was wrongly purged");
        }
    }

    // aggregated counters saw every thread's traffic
    let tree_stats = db.stats();
    assert!(tree_stats.entries_ingested > 0);
    assert!(tree_stats.point_lookups >= THREADS * OPS_PER_THREAD / 10);
}

#[test]
fn concurrent_hammer_is_deterministic_across_shard_counts() {
    // the same seeded op streams must land the same final state whether the
    // store has 1 shard or 8 — sharding is an implementation detail
    let mut fingerprints = Vec::new();
    for shards in [1usize, 2, 8] {
        let db = small_sharded(shards);
        let oracle: Oracle = Mutex::new(BTreeMap::new());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = &db;
                let oracle = &oracle;
                s.spawn(move || hammer(db, oracle, t));
            }
        });
        db.persist().unwrap();
        let state: Vec<(u64, Vec<u8>)> = db
            .range(0, THREADS * KEYS_PER_THREAD)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, v.to_vec()))
            .collect();
        fingerprints.push(state);
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[1], fingerprints[2]);
}

#[test]
fn concurrent_workload_driver_smoke() {
    // the generic concurrent driver from lethe-workload applies a full mixed
    // spec (including range ops and secondary deletes) through the &self API
    let db = small_sharded(4);
    let spec = WorkloadSpec {
        operations: 4_000,
        key_space: 50_000,
        value_size: 32,
        preload_keys: 1_000,
        update_fraction: 0.40,
        timeseries_fraction: 0.03,
        batch_fraction: 0.04,
        batch_size: 6,
        snapshot_fraction: 0.03,
        point_lookup_fraction: 0.28,
        empty_lookup_fraction: 0.05,
        point_delete_fraction: 0.05,
        range_delete_fraction: 0.02,
        range_lookup_fraction: 0.05,
        streaming_range_fraction: 0.02,
        secondary_delete_fraction: 0.03,
        ..Default::default()
    };
    let report = run_concurrent(&spec, 4, |_t, op| match op {
        Operation::Put { key, delete_key } => {
            db.put(*key, *delete_key, vec![0u8; 32]).unwrap();
        }
        Operation::Get { key } | Operation::GetEmpty { key } => {
            db.get(*key).unwrap();
        }
        Operation::Delete { key } => {
            db.delete(*key).unwrap();
        }
        Operation::DeleteRange { start, end } => db.delete_range(*start, *end).unwrap(),
        Operation::RangeLookup { start, end } => {
            db.range(*start, *end).unwrap();
        }
        Operation::RangeStream { start, end, limit } => {
            for item in db.iter_range(*start, *end).take(*limit as usize) {
                item.unwrap();
            }
        }
        Operation::SecondaryRangeDelete { start, end } => {
            db.delete_where_delete_key_in(*start, *end).unwrap();
        }
        Operation::WriteBatch { ops } => {
            let mut batch = WriteBatch::new();
            for op in ops {
                match op {
                    BatchWriteOp::Put { key, delete_key } => {
                        batch.put(*key, *delete_key, vec![0u8; 32]);
                    }
                    BatchWriteOp::Delete { key } => {
                        batch.delete(*key);
                    }
                }
            }
            db.write(batch).unwrap();
        }
        Operation::SnapshotRead { key } => {
            let snapshot = db.snapshot();
            snapshot.get(*key).unwrap();
        }
        Operation::TimeSeriesAppend { series, start_tick, samples } => {
            let block = lethe::workload::timeseries::encode_block(*start_tick, samples);
            let key = lethe::workload::timeseries::encode_key(*start_tick, *series);
            db.put(key, *start_tick, block).unwrap();
        }
    });
    assert_eq!(report.operations, 4_000);
    db.persist().unwrap();
    let stats = db.stats();
    assert!(stats.entries_ingested > 1_000);
    assert!(stats.point_lookups > 0);
}
