//! Integration tests for the pluggable compaction strategies: size-tiered
//! and date-tiered selection through the builders, whole-file retirement of
//! expired time windows (zero pages read), and the FADE-tension case where
//! a held MVCC snapshot must delay a TTL drop without losing it.

use lethe::{CompactionStrategy, LetheBuilder, LsmConfig, MergePolicy, ShardedLetheBuilder};

fn small_config() -> LsmConfig {
    LsmConfig { merge_policy: MergePolicy::Tiering, ..LsmConfig::small_for_test() }
}

/// Writes `n` tombstone-free entries whose delete keys form a dense logical
/// timeline (entry `i` "created" at `i * spacing` µs), flushing periodically
/// so the history lands in several files across several base windows.
fn ingest_timeline(db: &mut lethe::Lethe, n: u64, spacing: u64) {
    for i in 0..n {
        db.put(i, i * spacing, vec![0u8; 48]).unwrap();
        if (i + 1) % 32 == 0 {
            db.persist().unwrap();
        }
    }
    db.persist().unwrap();
}

/// A wholly-expired window is retired as whole files: the manifest edit and
/// page reclamation happen without reading a single page of the dropped
/// files (the paper's full-file-drop ideal, generalised to whole windows).
#[test]
fn date_tiered_drops_expired_windows_without_reading_them() {
    let mut db = LetheBuilder::new()
        .with_config(small_config())
        .delete_persistence_threshold_secs(1.0)
        .compaction_strategy(CompactionStrategy::DateTiered {
            base_window_micros: 1_000,
            fan_in: 2,
            ttl_micros: Some(500_000),
        })
        .build()
        .unwrap();
    ingest_timeline(&mut db, 200, 100); // timeline spans 0..20_000 µs
    assert!(db.get(0).unwrap().is_some());
    assert!(db.stats().whole_file_drops == 0, "nothing may expire during ingest");

    // move logical time far past every window's end + TTL, then let
    // maintenance retire the whole history
    db.clock().advance_secs(10.0);
    let before = db.io_snapshot();
    let compacted_before = db.stats().bytes_compacted;
    db.maintain().unwrap();
    let io = db.io_snapshot().since(&before);
    let stats = db.stats();

    assert!(stats.whole_file_drops >= 1, "expected whole-file drops, stats: {stats:?}");
    assert_eq!(io.pages_read, 0, "whole-file drops must not read the dropped pages");
    assert_eq!(io.pages_written, 0, "whole-file drops must not rewrite data");
    for k in (0..200).step_by(13) {
        assert_eq!(db.get(k).unwrap(), None, "expired key {k} still readable");
    }
    assert!(db.range(0, 1 << 20).unwrap().is_empty(), "expired windows must be gone");
    // retiring files without reading them adds nothing to the compaction
    // write counters, so the drop is free in write-amplification terms
    assert_eq!(stats.bytes_compacted, compacted_before);
}

/// The FADE tension case: a held MVCC snapshot (registered with the
/// snapshot tracker, i.e. a `ShardedLethe::snapshot`) must delay the TTL
/// drop — counted in `tombstone_gc_delayed`, with the expired window still
/// readable through the snapshot — and the drop must proceed once the
/// snapshot is released.
#[test]
fn held_snapshot_delays_whole_file_drop_until_released() {
    let db = ShardedLetheBuilder::new()
        .shards(1)
        .buffer(4, 4, 64)
        .size_ratio(4)
        .delete_persistence_threshold_secs(1.0)
        .compaction_strategy(CompactionStrategy::DateTiered {
            base_window_micros: 1_000,
            fan_in: 2,
            ttl_micros: Some(500_000),
        })
        .build()
        .unwrap();
    for i in 0..200u64 {
        db.put(i, i * 100, vec![0u8; 48]).unwrap();
        if (i + 1) % 32 == 0 {
            db.persist().unwrap();
        }
    }
    db.persist().unwrap();

    let snapshot = db.snapshot();
    // the live store keeps moving: a later write advances the seqnum fence,
    // making the snapshot strictly older than the state a drop would edit
    db.clock().advance_secs(10.0);
    db.put(100_000, db.clock().now(), vec![3u8; 48]).unwrap();
    let delayed_before = db.stats().tombstone_gc_delayed;
    db.maintain().unwrap();
    let stats = db.stats();
    assert_eq!(stats.whole_file_drops, 0, "drop must wait for the snapshot");
    assert!(
        stats.tombstone_gc_delayed > delayed_before,
        "the suppressed drop must be counted: {stats:?}"
    );
    // the snapshot still reads the expired window in full
    for k in (0..200).step_by(7) {
        assert!(snapshot.get(k).unwrap().is_some(), "snapshot lost expired key {k}");
    }
    // the live store does too: the data is expired, not deleted
    assert!(db.get(0).unwrap().is_some());

    drop(snapshot);
    db.maintain().unwrap();
    let stats = db.stats();
    assert!(stats.whole_file_drops >= 1, "drop must proceed after release: {stats:?}");
    assert_eq!(db.get(0).unwrap(), None);
    assert!(db.range(0, 200).unwrap().is_empty(), "the expired window must be gone");
    // the fresh post-snapshot write is inside its TTL and survives
    assert!(db.get(100_000).unwrap().is_some());
}

/// Files holding tombstones are never whole-file-dropped, even when their
/// window is wholly expired — dropping the tombstone could resurrect an
/// older version of the key surviving in another file.
#[test]
fn tombstone_bearing_files_survive_window_expiry() {
    let mut db = LetheBuilder::new()
        .with_config(small_config())
        .delete_persistence_threshold_secs(1_000.0) // keep tombstones around
        .compaction_strategy(CompactionStrategy::DateTiered {
            base_window_micros: 1_000,
            fan_in: 2,
            ttl_micros: Some(500_000),
        })
        .build()
        .unwrap();
    for i in 0..64u64 {
        db.put(i, i * 100, vec![1u8; 48]).unwrap();
    }
    db.persist().unwrap();
    // a second generation of the same keys plus tombstones for half of them
    for i in 0..64u64 {
        if i % 2 == 0 {
            db.delete(i).unwrap();
        }
    }
    db.persist().unwrap();
    db.clock().advance_secs(10.0);
    db.maintain().unwrap();
    // the tombstones must still mask the first generation: a dropped
    // tombstone file would resurrect the generation-one values
    for i in 0..64u64 {
        if i % 2 == 0 {
            assert_eq!(db.get(i).unwrap(), None, "deleted key {i} resurrected");
        }
    }
}

/// The builder knob selects the strategy and forces the tiering merge
/// policy; a size-tiered engine ingests, compacts and reads correctly, and
/// the write-amplification counters account for its merges.
#[test]
fn size_tiered_builder_knob_works_end_to_end() {
    let builder = LetheBuilder::new()
        .with_config(LsmConfig::small_for_test())
        .compaction_strategy(CompactionStrategy::SizeTiered { fan_in: 2 });
    assert_eq!(
        builder.config().merge_policy,
        MergePolicy::Tiering,
        "tiered strategies require run-per-flush (tiering) levels"
    );
    let mut db = builder.delete_persistence_threshold_secs(1.0).build().unwrap();
    for i in 0..400u64 {
        db.put(i % 97, i, vec![(i % 251) as u8; 48]).unwrap();
        if (i + 1) % 64 == 0 {
            db.persist().unwrap();
        }
    }
    db.persist().unwrap();
    let stats = db.stats();
    assert!(stats.compactions >= 1, "size-tiered merges never triggered: {stats:?}");
    assert!(stats.bytes_flushed > 0 && stats.bytes_compacted > 0);
    assert!(stats.write_amp() > 1.0, "merges must show up as write amplification");
    for i in 0..97u64 {
        let got = db.get(i).unwrap().expect("key lost under size-tiered compaction");
        let last = (0..400u64).rev().find(|j| j % 97 == i).unwrap();
        assert_eq!(got[0], (last % 251) as u8, "stale version for key {i}");
    }
}

/// The sharded builder forwards the knob to every shard and absorbs the
/// new counters across them.
#[test]
fn sharded_builder_forwards_the_strategy_knob() {
    let db = ShardedLetheBuilder::new()
        .shards(2)
        .buffer(4, 4, 64)
        .size_ratio(4)
        .delete_persistence_threshold_secs(1.0)
        .compaction_strategy(CompactionStrategy::DateTiered {
            base_window_micros: 1_000,
            fan_in: 2,
            ttl_micros: None, // pure window-bucketed merging, no retention
        })
        .build()
        .unwrap();
    for i in 0..256u64 {
        db.put(i, i * 100, vec![2u8; 48]).unwrap();
    }
    db.persist().unwrap();
    let stats = db.stats();
    assert!(stats.bytes_flushed > 0, "absorbed flush bytes missing: {stats:?}");
    assert_eq!(stats.whole_file_drops, 0, "no TTL configured, nothing may drop");
    for i in (0..256u64).step_by(17) {
        assert!(db.get(i).unwrap().is_some(), "key {i} lost across shards");
    }
}
