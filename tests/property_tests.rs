//! Property-based tests (proptest): random operation sequences against a
//! model oracle, and structural invariants of the storage layer.

use bytes::Bytes;
use lethe::lsm::compaction::{FileSelection, SaturationPolicy};
use lethe::lsm::{LsmConfig, LsmTree, MergePolicy, SecondaryDeleteMode, SsTable};
use lethe::storage::{
    BloomFilter, Entry, Histogram, InMemoryBackend, LogicalClock, MemTable, Page, StorageBackend,
};
use lethe::{level_ttls, LetheBuilder, ShardedLethe, ShardedLetheBuilder, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// A random mutation applied to both the engine and the oracle.
///
/// The delete key of a put is a fixed function of the sort key (as if it were
/// an immutable creation attribute), matching the paper's model where the
/// delete key is e.g. a creation timestamp: all versions of a key share it,
/// so a secondary range delete either covers every version of a key or none.
#[derive(Debug, Clone)]
enum Mutation {
    Put(u64, u8),
    Delete(u64),
    DeleteRange(u64, u64),
    SecondaryDelete(u64, u64),
    Flush,
}

fn delete_key_of(sort_key: u64, key_space: u64) -> u64 {
    sort_key.wrapping_mul(31) % key_space
}

fn mutation_strategy(key_space: u64) -> impl Strategy<Value = Mutation> {
    prop_oneof![
        6 => (0..key_space, any::<u8>()).prop_map(|(k, v)| Mutation::Put(k, v)),
        2 => (0..key_space).prop_map(Mutation::Delete),
        1 => (0..key_space, 1..(key_space / 4).max(2)).prop_map(|(s, len)| Mutation::DeleteRange(s, s + len)),
        1 => (0..key_space, 1..(key_space / 4).max(2)).prop_map(|(s, len)| Mutation::SecondaryDelete(s, s + len)),
        1 => Just(Mutation::Flush),
    ]
}

fn tiny_config(merge_policy: MergePolicy, h: usize) -> LsmConfig {
    let mut cfg = LsmConfig::small_for_test();
    cfg.merge_policy = merge_policy;
    cfg.pages_per_delete_tile = h;
    cfg.max_pages_per_file = (8usize).max(h);
    if !cfg.max_pages_per_file.is_multiple_of(h) {
        cfg.max_pages_per_file = cfg.max_pages_per_file.div_ceil(h) * h;
    }
    cfg.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
    cfg.key_domain = 1 << 16;
    cfg
}

/// Applies the mutations to an engine and a `BTreeMap` oracle and checks that
/// every key of the key space agrees afterwards.
fn check_against_oracle(cfg: LsmConfig, dth_secs: f64, ops: &[Mutation], key_space: u64) {
    let mut db = LetheBuilder::new()
        .with_config(cfg)
        .delete_persistence_threshold_secs(dth_secs)
        .build()
        .unwrap();
    let mut oracle: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();
    for op in ops {
        match op {
            Mutation::Put(k, v) => {
                let d = delete_key_of(*k, key_space);
                let value = vec![*v; 9];
                db.put(*k, d, value.clone()).unwrap();
                oracle.insert(*k, (d, value));
            }
            Mutation::Delete(k) => {
                db.delete(*k).unwrap();
                oracle.remove(k);
            }
            Mutation::DeleteRange(s, e) => {
                db.delete_range(*s, *e).unwrap();
                let victims: Vec<u64> = oracle.range(*s..*e).map(|(k, _)| *k).collect();
                for k in victims {
                    oracle.remove(&k);
                }
            }
            Mutation::SecondaryDelete(s, e) => {
                db.delete_where_delete_key_in(*s, *e).unwrap();
                let victims: Vec<u64> =
                    oracle.iter().filter(|(_, (d, _))| d >= s && d < e).map(|(k, _)| *k).collect();
                for k in victims {
                    oracle.remove(&k);
                }
            }
            Mutation::Flush => {
                db.persist().unwrap();
            }
        }
    }
    db.persist().unwrap();
    for k in 0..key_space {
        let expected = oracle.get(&k).map(|(_, v)| v.clone());
        let got = db.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(got, expected, "key {k} disagrees with the oracle");
    }
    // a full scan returns exactly the oracle's live keys, in order
    let scan: Vec<u64> = db.range(0, key_space).unwrap().into_iter().map(|(k, _)| k).collect();
    let expected: Vec<u64> = oracle.keys().copied().collect();
    assert_eq!(scan, expected);
}

/// Drives a block-cache-enabled store and an uncached one through the same
/// mutation history and checks they are **observationally identical**: every
/// point lookup (spot-checked while the history is still being applied, and
/// exhaustively at the end), the full range scan and a secondary
/// (delete-key) scan must agree. The cache is sized to a few pages so
/// eviction churns constantly, and writes are warmed so freshly flushed
/// pages enter the cache right before compactions retire them — the
/// sequence that would expose a missed `drop_page` invalidation (a stale
/// page resurrected from cache) as a divergence.
fn check_cached_matches_uncached(ops: &[Mutation], key_space: u64, cache_bytes: usize) {
    let cfg = tiny_config(MergePolicy::Leveling, 2);
    let build = |cache: usize| {
        LetheBuilder::new()
            .with_config(cfg.clone())
            .delete_persistence_threshold_secs(1.0)
            .block_cache_bytes(cache)
            .warm_block_cache_on_write(cache > 0)
            .build()
            .unwrap()
    };
    let mut cached = build(cache_bytes);
    let mut plain = build(0);
    for (i, op) in ops.iter().enumerate() {
        match op {
            Mutation::Put(k, v) => {
                let d = delete_key_of(*k, key_space);
                cached.put(*k, d, vec![*v; 9]).unwrap();
                plain.put(*k, d, vec![*v; 9]).unwrap();
            }
            Mutation::Delete(k) => {
                cached.delete(*k).unwrap();
                plain.delete(*k).unwrap();
            }
            Mutation::DeleteRange(s, e) => {
                cached.delete_range(*s, *e).unwrap();
                plain.delete_range(*s, *e).unwrap();
            }
            Mutation::SecondaryDelete(s, e) => {
                cached.delete_where_delete_key_in(*s, *e).unwrap();
                plain.delete_where_delete_key_in(*s, *e).unwrap();
            }
            Mutation::Flush => {
                cached.persist().unwrap();
                plain.persist().unwrap();
            }
        }
        // spot-check mid-history so a stale cached page is caught near the
        // mutation that should have invalidated it, not at the very end
        if i % 16 == 0 {
            for probe in 0..8u64 {
                let k = (i as u64).wrapping_mul(13).wrapping_add(probe * 29) % key_space;
                assert_eq!(cached.get(k).unwrap(), plain.get(k).unwrap(), "key {k} after op {i}");
            }
        }
    }
    cached.persist().unwrap();
    plain.persist().unwrap();
    for k in 0..key_space {
        assert_eq!(cached.get(k).unwrap(), plain.get(k).unwrap(), "key {k} diverged");
    }
    // the equivalence must have been tested *through* the cache, not
    // vacuously against an inert one: every written page is warm-inserted
    // (all pages fit one stripe at this budget), and an immediate re-read
    // of a live key must be served from cache
    let snap = cached.cache_snapshot().expect("cache configured");
    if cached.io_snapshot().pages_written > 0 {
        assert!(snap.insertions > 0, "pages were written but never cached: {snap:?}");
    }
    if let Some(k) = (0..key_space).find(|k| plain.get(*k).unwrap().is_some()) {
        // persist() drained the buffers, so a live key is on disk: the
        // first read makes its page resident, the immediate second read
        // (nothing inserted in between) must hit
        cached.get(k).unwrap();
        let before = cached.io_snapshot();
        cached.get(k).unwrap();
        let delta = cached.io_snapshot().since(&before);
        assert!(delta.cache_hits > 0, "immediate re-read of key {k} missed the cache");
    }
    assert_eq!(
        cached.range(0, key_space).unwrap(),
        plain.range(0, key_space).unwrap(),
        "range scans diverged"
    );
    assert_eq!(
        cached.scan_by_delete_key(0, key_space).unwrap(),
        plain.scan_by_delete_key(0, key_space).unwrap(),
        "secondary scans diverged"
    );
}

/// Drives a tiered-strategy engine and a default-policy one through the same
/// mutation history and checks they are **observationally identical**: every
/// point lookup (spot-checked while the history is still being applied, and
/// exhaustively at the end), the full range scan and the secondary
/// (delete-key) scan must agree byte for byte. Compaction strategies
/// reorganise files differently — size classes for size-tiered, aligned
/// time windows for date-tiered — but must never change what a reader sees.
/// Date-tiered runs with its TTL off here: whole-file drops are
/// *intentional* data loss, so they are exercised separately
/// (`tests/compaction_strategies.rs`), not in an equivalence harness.
fn check_strategy_matches_default(
    strategy: lethe::CompactionStrategy,
    ops: &[Mutation],
    key_space: u64,
) {
    let build = |strategy: lethe::CompactionStrategy| {
        LetheBuilder::new()
            .with_config(tiny_config(MergePolicy::Leveling, 2))
            .delete_persistence_threshold_secs(1.0)
            .compaction_strategy(strategy)
            .build()
            .unwrap()
    };
    let mut tiered = build(strategy);
    let mut plain = build(lethe::CompactionStrategy::Default);
    for (i, op) in ops.iter().enumerate() {
        match op {
            Mutation::Put(k, v) => {
                let d = delete_key_of(*k, key_space);
                tiered.put(*k, d, vec![*v; 9]).unwrap();
                plain.put(*k, d, vec![*v; 9]).unwrap();
            }
            Mutation::Delete(k) => {
                tiered.delete(*k).unwrap();
                plain.delete(*k).unwrap();
            }
            Mutation::DeleteRange(s, e) => {
                tiered.delete_range(*s, *e).unwrap();
                plain.delete_range(*s, *e).unwrap();
            }
            Mutation::SecondaryDelete(s, e) => {
                tiered.delete_where_delete_key_in(*s, *e).unwrap();
                plain.delete_where_delete_key_in(*s, *e).unwrap();
            }
            Mutation::Flush => {
                tiered.persist().unwrap();
                plain.persist().unwrap();
            }
        }
        // spot-check mid-history so a divergence is caught near the
        // compaction that introduced it, not at the very end
        if i % 16 == 0 {
            for probe in 0..8u64 {
                let k = (i as u64).wrapping_mul(13).wrapping_add(probe * 29) % key_space;
                assert_eq!(tiered.get(k).unwrap(), plain.get(k).unwrap(), "key {k} after op {i}");
            }
        }
    }
    tiered.persist().unwrap();
    plain.persist().unwrap();
    for k in 0..key_space {
        assert_eq!(tiered.get(k).unwrap(), plain.get(k).unwrap(), "key {k} diverged");
    }
    assert_eq!(
        tiered.range(0, key_space).unwrap(),
        plain.range(0, key_space).unwrap(),
        "range scans diverged"
    );
    assert_eq!(
        tiered.scan_by_delete_key(0, key_space).unwrap(),
        plain.scan_by_delete_key(0, key_space).unwrap(),
        "secondary scans diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// A size-tiered store answers every query exactly like the default
    /// FADE-policy store across random put/delete/secondary-delete/flush
    /// histories — the strategy changes the file layout, never the data.
    #[test]
    fn size_tiered_store_is_observationally_identical(
        ops in prop::collection::vec(mutation_strategy(256), 1..400),
        fan_in in 2usize..5,
    ) {
        check_strategy_matches_default(
            lethe::CompactionStrategy::SizeTiered { fan_in },
            &ops,
            256,
        );
    }

    /// Same for a date-tiered store with retention disabled: window-bucketed
    /// merging must be invisible to readers.
    #[test]
    fn date_tiered_store_is_observationally_identical(
        ops in prop::collection::vec(mutation_strategy(256), 1..400),
        fan_in in 2usize..5,
        base_window in 1u64..1_000_000,
    ) {
        check_strategy_matches_default(
            lethe::CompactionStrategy::DateTiered {
                base_window_micros: base_window,
                fan_in,
                ttl_micros: None,
            },
            &ops,
            256,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The Gorilla codec round-trips *any* `(timestamp, value_bits)`
    /// sequence — monotone or not, NaN bit patterns included — byte for
    /// byte.
    #[test]
    fn gorilla_codec_roundtrips_any_samples(
        samples in prop::collection::vec((any::<u64>(), any::<u64>()), 0..300),
    ) {
        let bytes = lethe::workload::gorilla::encode(&samples);
        prop_assert_eq!(lethe::workload::gorilla::decode(&bytes).unwrap(), samples);
    }

    /// Regular-cadence random walks (the generated time-series shape)
    /// round-trip and never expand the raw encoding by more than the
    /// per-sample code overhead allows.
    #[test]
    fn gorilla_codec_roundtrips_generated_blocks(
        start_tick in 0u64..(1 << 40),
        walk in prop::collection::vec(any::<i32>(), 1..200),
    ) {
        let mut v = 0.0f64;
        let samples: Vec<u64> = walk.iter().map(|step| {
            v += *step as f64 * 1e-3;
            v.to_bits()
        }).collect();
        let bytes = lethe::workload::timeseries::encode_block(start_tick, &samples);
        prop_assert_eq!(lethe::workload::timeseries::decode_block(&bytes).unwrap(), samples);
    }
}

/// A durable-engine step: a regular mutation or a restart point (drop the
/// engine mid-history and reopen it from its directory).
#[derive(Debug, Clone)]
enum DurableOp {
    Mutate(Mutation),
    Restart,
}

fn durable_op_strategy(key_space: u64) -> impl Strategy<Value = DurableOp> {
    prop_oneof![
        10 => mutation_strategy(key_space).prop_map(DurableOp::Mutate),
        1 => Just(DurableOp::Restart),
    ]
}

/// Like [`check_against_oracle`] but for the durable (file-backed) engine,
/// with restarts interleaved at arbitrary points: every acknowledged
/// mutation must survive every restart, whether it sat in the write buffer
/// (WAL replay) or had been flushed/compacted (manifest recovery).
fn check_durable_against_oracle(ops: &[DurableOp], key_space: u64) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lethe-prop-durable-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = tiny_config(MergePolicy::Leveling, 2);
    // in-process restarts lose nothing unsynced, so the relaxed policy just
    // keeps the fuzz fast
    cfg.wal_sync = lethe::storage::SyncPolicy::OnFlush;
    let reopen = |cfg: &LsmConfig| {
        LetheBuilder::new()
            .with_config(cfg.clone())
            .delete_persistence_threshold_secs(1.0)
            .open(&dir)
            .unwrap()
    };
    let mut db = reopen(&cfg);
    let mut oracle: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();
    for op in ops {
        match op {
            DurableOp::Mutate(Mutation::Put(k, v)) => {
                let d = delete_key_of(*k, key_space);
                let value = vec![*v; 9];
                db.put(*k, d, value.clone()).unwrap();
                oracle.insert(*k, (d, value));
            }
            DurableOp::Mutate(Mutation::Delete(k)) => {
                db.delete(*k).unwrap();
                oracle.remove(k);
            }
            DurableOp::Mutate(Mutation::DeleteRange(s, e)) => {
                db.delete_range(*s, *e).unwrap();
                let victims: Vec<u64> = oracle.range(*s..*e).map(|(k, _)| *k).collect();
                for k in victims {
                    oracle.remove(&k);
                }
            }
            DurableOp::Mutate(Mutation::SecondaryDelete(s, e)) => {
                db.delete_where_delete_key_in(*s, *e).unwrap();
                let victims: Vec<u64> =
                    oracle.iter().filter(|(_, (d, _))| d >= s && d < e).map(|(k, _)| *k).collect();
                for k in victims {
                    oracle.remove(&k);
                }
            }
            DurableOp::Mutate(Mutation::Flush) => {
                db.persist().unwrap();
            }
            DurableOp::Restart => {
                drop(db);
                db = reopen(&cfg);
            }
        }
    }
    // one final restart so the end state is checked through recovery too
    drop(db);
    let db = reopen(&cfg);
    for k in 0..key_space {
        let expected = oracle.get(&k).map(|(_, v)| v.clone());
        let got = db.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(got, expected, "key {k} disagrees with the oracle after restarts");
    }
    let scan: Vec<u64> = db.range(0, key_space).unwrap().into_iter().map(|(k, _)| k).collect();
    let expected: Vec<u64> = oracle.keys().copied().collect();
    assert_eq!(scan, expected);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn lethe_leveling_matches_oracle(ops in prop::collection::vec(mutation_strategy(256), 1..400)) {
        check_against_oracle(tiny_config(MergePolicy::Leveling, 2), 1.0, &ops, 256);
    }

    #[test]
    fn lethe_tiering_matches_oracle(ops in prop::collection::vec(mutation_strategy(256), 1..400)) {
        check_against_oracle(tiny_config(MergePolicy::Tiering, 1), 1.0, &ops, 256);
    }

    #[test]
    fn lethe_wide_tiles_match_oracle(ops in prop::collection::vec(mutation_strategy(128), 1..300)) {
        check_against_oracle(tiny_config(MergePolicy::Leveling, 8), 0.2, &ops, 128);
    }

    /// A store reading through an eviction-heavy block cache answers every
    /// query exactly like an uncached one across random put/delete/
    /// secondary-delete/flush/compact interleavings (the cache is an
    /// optimisation, never a semantic change), and `drop_page`/deferred-
    /// reclamation invalidation never lets a retired page resurface.
    #[test]
    fn cached_store_is_observationally_identical(
        ops in prop::collection::vec(mutation_strategy(256), 1..400),
    ) {
        // a single ~2 KiB stripe holds only a handful of pages, so every
        // flush/compaction churns the cache through eviction
        check_cached_matches_uncached(&ops, 256, 2048);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The durable engine agrees with the oracle across random restart
    /// points (manifest recovery + WAL replay end to end).
    #[test]
    fn durable_engine_matches_oracle_across_restarts(
        ops in prop::collection::vec(durable_op_strategy(128), 1..250),
    ) {
        check_durable_against_oracle(&ops, 128);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_has_no_false_negatives(keys in prop::collection::hash_set(any::<u64>(), 1..500),
                                    bits in 2.0f64..16.0) {
        let mut bf = BloomFilter::new(keys.len(), bits);
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            prop_assert!(bf.may_contain(k));
        }
    }

    /// Page search agrees with a linear scan for every stored key.
    #[test]
    fn page_get_agrees_with_linear_scan(keys in prop::collection::vec(0u64..1000, 1..64)) {
        let entries: Vec<Entry> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Entry::put(k, k, i as u64 + 1, Bytes::from(vec![0u8; 4])))
            .collect();
        let page = Page::new(entries.clone());
        for &k in &keys {
            let newest = entries
                .iter()
                .filter(|e| e.sort_key == k)
                .max_by_key(|e| e.seqnum)
                .unwrap();
            prop_assert_eq!(page.get(k).unwrap().seqnum, newest.seqnum);
        }
        prop_assert!(page.get(2000).is_none());
    }

    /// Page encode/decode round-trips arbitrary entry mixes.
    #[test]
    fn page_codec_roundtrip(specs in prop::collection::vec((any::<u64>(), any::<u64>(), 0u8..3, 0usize..32), 0..48)) {
        let entries: Vec<Entry> = specs
            .iter()
            .enumerate()
            .map(|(i, (k, d, kind, len))| match kind {
                0 => Entry::put(*k, *d, i as u64, Bytes::from(vec![7u8; *len])),
                1 => Entry::point_tombstone(*k, i as u64),
                _ => Entry::range_tombstone(*k, k.saturating_add(10), i as u64),
            })
            .collect();
        let page = Page::new(entries);
        let decoded = Page::decode(page.encode()).unwrap();
        prop_assert_eq!(decoded, page);
    }

    /// The memtable behaves like a map with latest-write-wins semantics.
    #[test]
    fn memtable_latest_write_wins(writes in prop::collection::vec((0u64..64, any::<u8>()), 1..200)) {
        let mut m = MemTable::new();
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for (seq, (k, v)) in writes.iter().enumerate() {
            m.put(*k, 0, seq as u64 + 1, Bytes::from(vec![*v]));
            model.insert(*k, *v);
        }
        for (k, v) in &model {
            let entry = m.get(*k).unwrap();
            prop_assert_eq!(entry.value.as_ref(), &[*v][..]);
        }
        prop_assert_eq!(m.len(), model.len());
    }

    /// Histogram range estimates never exceed the total and are exact over
    /// the full domain.
    #[test]
    fn histogram_estimates_are_bounded(keys in prop::collection::vec(0u64..10_000, 1..500),
                                       lo in 0u64..10_000, len in 1u64..5_000) {
        let mut h = Histogram::new(0, 10_000, 32);
        for &k in &keys {
            h.add(k);
        }
        let est = h.estimate_range(lo, lo + len);
        prop_assert!(est >= -1e-9);
        prop_assert!(est <= keys.len() as f64 + 1e-9);
        let full = h.estimate_range(0, 10_000);
        prop_assert!((full - keys.len() as f64).abs() < 1e-6);
    }

    /// FADE's TTL allocation always sums to Dth, is increasing, and assigns
    /// exponentially growing per-level shares.
    #[test]
    fn fade_ttls_always_sum_to_dth(dth in 1_000u64..10_000_000, t in 2usize..12, levels in 1usize..8) {
        let ttls = level_ttls(dth, t, levels);
        prop_assert_eq!(ttls.len(), levels);
        prop_assert_eq!(*ttls.last().unwrap(), dth);
        prop_assert!(ttls.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(ttls[0] >= 1 || dth < levels as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The KiWi construction preserves its structural invariants for any
    /// entry set and tile granularity: tiles ordered on the sort key, pages
    /// inside a tile ordered on the delete key, entries inside a page ordered
    /// on the sort key, and no entry lost.
    #[test]
    fn kiwi_layout_invariants_hold(
        keys in prop::collection::btree_set(0u64..50_000, 1..600),
        h in 1usize..16,
    ) {
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = h;
        cfg.max_pages_per_file = h * 64; // one file
        let backend = InMemoryBackend::new_shared();
        let entries: Vec<Entry> = keys
            .iter()
            .map(|&k| Entry::put(k, k.wrapping_mul(0x9E37_79B9) % 100_000, k + 1, Bytes::from(vec![1u8; 8])))
            .collect();
        let table = SsTable::build(1, entries.clone(), vec![], 0, None, &cfg, backend.as_ref()).unwrap();

        // tiles are ordered and non-overlapping on the sort key
        for w in table.tiles.windows(2) {
            prop_assert!(w[0].max_sort < w[1].min_sort);
        }
        let mut seen = 0usize;
        for tile in &table.tiles {
            for w in tile.pages.windows(2) {
                prop_assert!(w[0].max_delete <= w[1].min_delete);
            }
            for handle in &tile.pages {
                let page = backend.read_page(handle.id).unwrap();
                let sort_keys: Vec<u64> = page.entries().iter().map(|e| e.sort_key).collect();
                let mut sorted = sort_keys.clone();
                sorted.sort_unstable();
                prop_assert_eq!(&sort_keys, &sorted);
                seen += page.len();
            }
        }
        prop_assert_eq!(seen, entries.len());

        // every key is findable through the fence + filter + page path
        let stats = lethe::storage::IoStats::new_shared();
        for e in entries.iter().take(50) {
            let found = table.get(e.sort_key, backend.as_ref(), &stats).unwrap();
            prop_assert_eq!(found.unwrap().sort_key, e.sort_key);
        }
    }

    /// A secondary range delete removes exactly the qualifying live entries,
    /// never touches others, and full drops never read pages.
    #[test]
    fn secondary_delete_partitions_by_delete_key(
        keys in prop::collection::btree_set(0u64..10_000, 10..300),
        h in 1usize..12,
        lo in 0u64..5_000,
        len in 1u64..5_000,
    ) {
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = h;
        cfg.max_pages_per_file = h * 64;
        let backend = InMemoryBackend::new_shared();
        let entries: Vec<Entry> = keys
            .iter()
            .map(|&k| Entry::put(k, (k * 31) % 10_000, k + 1, Bytes::from(vec![1u8; 8])))
            .collect();
        let table = SsTable::build(1, entries.clone(), vec![], 0, None, &cfg, backend.as_ref()).unwrap();
        let hi = lo + len;
        let reads_before = backend.stats().snapshot().pages_read;
        let (survivor, stats, obsolete) =
            table.secondary_range_delete(lo, hi, &cfg, backend.as_ref(), 1).unwrap();
        // page drops are deferred to the caller (version-set garbage)
        prop_assert_eq!(obsolete.len() as u64, stats.full_page_drops + stats.partial_page_drops);
        for id in &obsolete {
            backend.drop_page(*id).unwrap();
        }
        let reads = backend.stats().snapshot().pages_read - reads_before;
        // full drops never read; pages classified as partially covered by the
        // fence metadata are read (a few of them may turn out to contain no
        // qualifying entry and are left untouched), so the read count is
        // bounded by the number of non-fully-dropped, non-ignored pages
        prop_assert!(reads >= stats.partial_page_drops);
        prop_assert!(reads <= stats.partial_page_drops + stats.pages_untouched);
        let expected_deleted =
            entries.iter().filter(|e| e.delete_key >= lo && e.delete_key < hi).count() as u64;
        prop_assert_eq!(stats.entries_deleted, expected_deleted);
        let remaining: Vec<Entry> = match &survivor {
            Some(t) => t.read_all_entries(backend.as_ref()).unwrap(),
            None => Vec::new(),
        };
        prop_assert_eq!(remaining.len() as u64, entries.len() as u64 - expected_deleted);
        prop_assert!(remaining.iter().all(|e| e.delete_key < lo || e.delete_key >= hi));
    }

    /// Under a pure-insert workload the baseline and Lethe answer every
    /// query identically (the "no deletes ⇒ identical behaviour" claim).
    #[test]
    fn no_deletes_means_identical_answers(keys in prop::collection::vec(0u64..2_000, 50..400)) {
        let cfg = tiny_config(MergePolicy::Leveling, 1);
        let backend_a = InMemoryBackend::new_shared();
        let mut baseline = LsmTree::new(
            cfg.clone(),
            backend_a,
            LogicalClock::new(),
            Box::new(SaturationPolicy::new(FileSelection::MinOverlap)),
        )
        .unwrap();
        let mut lethe = LetheBuilder::new()
            .with_config(cfg)
            .delete_persistence_threshold_secs(0.5)
            .build()
            .unwrap();
        for (i, &k) in keys.iter().enumerate() {
            let v = Bytes::from(format!("v{i}"));
            baseline.put(k, k, v.clone()).unwrap();
            lethe.put(k, k, v).unwrap();
        }
        baseline.flush().unwrap();
        baseline.maintain().unwrap();
        lethe.persist().unwrap();
        for k in 0..2_000u64 {
            prop_assert_eq!(baseline.get(k).unwrap(), lethe.get(k).unwrap());
        }
    }
}

/// One step of the batch-atomicity history: an atomic [`WriteBatch`]
/// rewriting every key of one group with the group's next generation tag,
/// an atomic batch deleting the whole group, or a persist (flush +
/// compaction churn between batches).
#[derive(Debug, Clone)]
enum BatchStep {
    WriteGroup(usize),
    DeleteGroup(usize),
    Persist,
}

fn batch_step_strategy(groups: usize) -> impl Strategy<Value = BatchStep> {
    prop_oneof![
        6 => (0..groups).prop_map(BatchStep::WriteGroup),
        2 => (0..groups).prop_map(BatchStep::DeleteGroup),
        1 => Just(BatchStep::Persist),
    ]
}

const BATCH_GROUPS: usize = 8;
const GROUP_KEYS: u64 = 8;
const BATCH_KEY_SPACE: u64 = BATCH_GROUPS as u64 * GROUP_KEYS;

/// Key `j` of `group`: groups are interleaved across the sort-key space
/// (adjacent sort keys belong to different groups), so one group's keys
/// scatter across pages and files and a batch is never "atomic" merely by
/// sitting in one page.
fn group_key(group: usize, j: u64) -> u64 {
    j * BATCH_GROUPS as u64 + group as u64
}

fn group_of(key: u64) -> usize {
    (key % BATCH_GROUPS as u64) as usize
}

/// Write-batch atomicity as seen by live readers: a writer applies the
/// scripted history of whole-group batches (every key of a group written
/// with one shared generation tag, or the whole group deleted) against a
/// single-shard store while a concurrent reader continuously
///
/// * scans `iter_range` — a pinned snapshot, so every group it returns must
///   be **complete and uniformly tagged** (a partial group or a mix of tags
///   is a torn batch), with the tag per group non-decreasing from scan to
///   scan, and
/// * probes point `get`s — each key's tag must be monotone over time
///   (a regression means a reader observed a batch un-apply).
///
/// The store's buffer is tiny, so the history crosses flush and compaction
/// churn constantly; the single-shard scope is deliberate (multi-shard
/// scans are the documented weakly-consistent fan-out).
fn check_batches_are_atomic_to_readers(steps: &[BatchStep]) {
    let db = ShardedLetheBuilder::new()
        .shards(1)
        .buffer(8, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(1.0)
        .build()
        .unwrap();
    let tag_of = |value: &[u8]| u64::from_le_bytes(value[..8].try_into().unwrap());
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db = &db;
        let done = &done;
        let reader = s.spawn(move || {
            let mut last_scan_tag = [0u64; BATCH_GROUPS];
            let mut last_key_tag: BTreeMap<u64, u64> = BTreeMap::new();
            // keep reading one extra pass after the writer finishes so the
            // final history suffix is observed too
            let mut final_pass = false;
            loop {
                let mut by_group: Vec<Vec<(u64, u64)>> = vec![Vec::new(); BATCH_GROUPS];
                for item in db.iter_range(0, BATCH_KEY_SPACE) {
                    let (k, v) = item.unwrap();
                    by_group[group_of(k)].push((k, tag_of(&v)));
                }
                for (g, entries) in by_group.iter().enumerate() {
                    if entries.is_empty() {
                        continue;
                    }
                    assert_eq!(
                        entries.len(),
                        GROUP_KEYS as usize,
                        "torn batch: a pinned scan saw only part of group {g}: {entries:?}"
                    );
                    let tag = entries[0].1;
                    assert!(
                        entries.iter().all(|(_, t)| *t == tag),
                        "torn batch: group {g} mixes generation tags: {entries:?}"
                    );
                    assert!(
                        tag >= last_scan_tag[g],
                        "group {g} went back in time: scan saw tag {tag} after {}",
                        last_scan_tag[g]
                    );
                    last_scan_tag[g] = tag;
                }
                for k in 0..BATCH_KEY_SPACE {
                    if let Some(v) = db.get(k).unwrap() {
                        let tag = tag_of(&v);
                        let seen = last_key_tag.entry(k).or_insert(tag);
                        assert!(
                            tag >= *seen,
                            "key {k} went back in time: get saw tag {tag} after {seen}"
                        );
                        *seen = tag;
                    }
                }
                if final_pass {
                    return;
                }
                final_pass = done.load(Ordering::Acquire);
            }
        });
        let mut generation = 0u64;
        let mut live = [false; BATCH_GROUPS];
        for step in steps {
            match step {
                BatchStep::WriteGroup(g) => {
                    generation += 1;
                    let mut batch = WriteBatch::new();
                    for j in 0..GROUP_KEYS {
                        let k = group_key(*g, j);
                        let mut value = generation.to_le_bytes().to_vec();
                        value.push(0); // match the 9-byte payloads used elsewhere
                        batch.put(k, delete_key_of(k, BATCH_KEY_SPACE), value);
                    }
                    db.write(batch).unwrap();
                    live[*g] = true;
                }
                BatchStep::DeleteGroup(g) => {
                    let mut batch = WriteBatch::new();
                    for j in 0..GROUP_KEYS {
                        batch.delete(group_key(*g, j));
                    }
                    db.write(batch).unwrap();
                    live[*g] = false;
                }
                BatchStep::Persist => db.persist().unwrap(),
            }
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();
        // final audit: exactly the groups whose last batch was a write are
        // present, each complete
        let mut by_group: Vec<Vec<u64>> = vec![Vec::new(); BATCH_GROUPS];
        for item in db.iter_range(0, BATCH_KEY_SPACE) {
            let (k, _) = item.unwrap();
            by_group[group_of(k)].push(k);
        }
        for (g, keys) in by_group.iter().enumerate() {
            let expected: Vec<u64> =
                if live[g] { (0..GROUP_KEYS).map(|j| group_key(g, j)).collect() } else { Vec::new() };
            assert_eq!(keys, &expected, "group {g} final state diverged");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Live readers observe every [`WriteBatch`] entirely or not at all —
    /// pinned `iter_range` snapshots never return a partial or mixed-tag
    /// group, and point reads never regress — across constant flush and
    /// compaction churn.
    #[test]
    fn write_batches_are_atomic_to_live_readers(
        steps in prop::collection::vec(batch_step_strategy(BATCH_GROUPS), 10..80),
    ) {
        check_batches_are_atomic_to_readers(&steps);
    }
}

/// One step of the snapshot-consistency history: a plain mutation, an
/// atomic multi-key write batch, or a full maintenance pass (flush plus
/// FADE compaction churn).
#[derive(Debug, Clone)]
enum SnapOp {
    Mutate(Mutation),
    Batch(Vec<(u64, u8)>),
    Maintain,
}

fn snap_op_strategy(key_space: u64) -> impl Strategy<Value = SnapOp> {
    prop_oneof![
        8 => mutation_strategy(key_space).prop_map(SnapOp::Mutate),
        2 => prop::collection::vec((0..key_space, any::<u8>()), 1..6).prop_map(SnapOp::Batch),
        1 => Just(SnapOp::Maintain),
    ]
}

/// Applies one step to the store and a `BTreeMap` oracle in lockstep.
fn apply_snap_op(
    db: &ShardedLethe,
    oracle: &mut BTreeMap<u64, (u64, Vec<u8>)>,
    op: &SnapOp,
    key_space: u64,
) {
    match op {
        SnapOp::Mutate(Mutation::Put(k, v)) => {
            let d = delete_key_of(*k, key_space);
            let value = vec![*v; 9];
            db.put(*k, d, value.clone()).unwrap();
            oracle.insert(*k, (d, value));
        }
        SnapOp::Mutate(Mutation::Delete(k)) => {
            db.delete(*k).unwrap();
            oracle.remove(k);
        }
        SnapOp::Mutate(Mutation::DeleteRange(s, e)) => {
            db.delete_range(*s, *e).unwrap();
            let victims: Vec<u64> = oracle.range(*s..*e).map(|(k, _)| *k).collect();
            for k in victims {
                oracle.remove(&k);
            }
        }
        SnapOp::Mutate(Mutation::SecondaryDelete(s, e)) => {
            db.delete_where_delete_key_in(*s, *e).unwrap();
            let victims: Vec<u64> =
                oracle.iter().filter(|(_, (d, _))| d >= s && d < e).map(|(k, _)| *k).collect();
            for k in victims {
                oracle.remove(&k);
            }
        }
        SnapOp::Mutate(Mutation::Flush) => db.persist().unwrap(),
        SnapOp::Batch(writes) => {
            let mut batch = WriteBatch::new();
            for (k, v) in writes {
                let d = delete_key_of(*k, key_space);
                let value = vec![*v; 9];
                batch.put(*k, d, value.clone());
                oracle.insert(*k, (d, value));
            }
            db.write(batch).unwrap();
        }
        SnapOp::Maintain => db.maintain().unwrap(),
    }
}

/// Takes a [`lethe::Snapshot`] mid-history and checks it stays
/// byte-identical to the oracle frozen at snapshot time while the live
/// store keeps mutating, flushing and compacting underneath it — every
/// read surface: point gets, the materialised range scan, the streaming
/// `iter_range` cursor and the secondary (delete-key) index scan. The live
/// store must meanwhile agree with the *live* oracle, so the snapshot is a
/// frozen view, not a stalled store.
fn check_snapshot_freezes_the_view(shards: usize, pre: &[SnapOp], post: &[SnapOp], key_space: u64) {
    let db = ShardedLetheBuilder::new()
        .shards(shards)
        .buffer(8, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(1.0)
        .build()
        .unwrap();
    let mut oracle: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();
    for op in pre {
        apply_snap_op(&db, &mut oracle, op, key_space);
    }
    let snapshot = db.snapshot();
    let frozen = oracle.clone();
    for op in post {
        apply_snap_op(&db, &mut oracle, op, key_space);
    }
    db.persist().unwrap();

    // point reads at the snapshot: byte-identical to the frozen oracle
    for k in 0..key_space {
        let expected = frozen.get(&k).map(|(_, v)| v.clone());
        let got = snapshot.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(got, expected, "snapshot get({k}) diverged from the frozen oracle");
    }
    // materialised and streamed range scans agree with the frozen oracle
    let expected: Vec<(u64, Vec<u8>)> = frozen.iter().map(|(k, (_, v))| (*k, v.clone())).collect();
    let ranged: Vec<(u64, Vec<u8>)> =
        snapshot.range(0, key_space).unwrap().into_iter().map(|(k, v)| (k, v.to_vec())).collect();
    assert_eq!(ranged, expected, "snapshot range scan diverged from the frozen oracle");
    let streamed: Vec<(u64, Vec<u8>)> = snapshot
        .iter_range(0, key_space)
        .unwrap()
        .map(|item| item.map(|(k, v)| (k, v.to_vec())).unwrap())
        .collect();
    assert_eq!(streamed, expected, "snapshot streamed scan diverged from the materialised one");
    // the secondary (delete-key) index view is frozen too
    let span = (key_space / 2).max(1);
    let expected_secondary: Vec<u64> =
        frozen.iter().filter(|(_, (d, _))| *d < span).map(|(k, _)| *k).collect();
    let got_secondary: Vec<u64> = snapshot
        .scan_by_delete_key(0, span)
        .unwrap()
        .into_iter()
        .map(|e| e.sort_key)
        .collect();
    assert_eq!(got_secondary, expected_secondary, "snapshot secondary scan diverged");
    // the live store moved on with the live oracle
    for k in 0..key_space {
        let expected = oracle.get(&k).map(|(_, v)| v.clone());
        assert_eq!(db.get(k).unwrap().map(|b| b.to_vec()), expected, "live get({k}) diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Reads through a held snapshot stay byte-identical to an oracle frozen
    /// at snapshot time under random interleavings of puts, batches, point
    /// and range deletes, secondary range deletes, flushes and compactions
    /// applied to the live store afterwards — single-shard…
    #[test]
    fn snapshot_reads_are_frozen_single_shard(
        pre in prop::collection::vec(snap_op_strategy(128), 1..120),
        post in prop::collection::vec(snap_op_strategy(128), 1..120),
    ) {
        check_snapshot_freezes_the_view(1, &pre, &post, 128);
    }

    /// …and across a 3-shard store, where the seqnum fence must cut every
    /// shard at the same instant.
    #[test]
    fn snapshot_reads_are_frozen_three_shards(
        pre in prop::collection::vec(snap_op_strategy(128), 1..120),
        post in prop::collection::vec(snap_op_strategy(128), 1..120),
    ) {
        check_snapshot_freezes_the_view(3, &pre, &post, 128);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// FADE's core invariant (paper §4.1) survives the move to *background*
    /// scheduling: tombstone-TTL-driven compactions now run on per-shard
    /// worker threads, but after quiescing the workers no file in any shard
    /// may still hold a tombstone older than the delete persistence
    /// threshold `D_th` — asserted through the tombstone-age watermarks of
    /// the content snapshot, exactly as the paper defines delete
    /// persistence.
    #[test]
    fn background_scheduling_preserves_ttl_guarantee(
        ops in prop::collection::vec(mutation_strategy(256), 40..200),
        dth_secs in 1.0f64..8.0,
        shards in 1usize..4,
    ) {
        let db = ShardedLetheBuilder::new()
            .shards(shards)
            .buffer(8, 4, 64)
            .size_ratio(4)
            .delete_tile_pages(2)
            .delete_persistence_threshold_secs(dth_secs)
            .build()
            .unwrap();
        for op in &ops {
            match op {
                Mutation::Put(k, v) => {
                    db.put(*k, delete_key_of(*k, 256), vec![*v; 9]).unwrap();
                }
                Mutation::Delete(k) => {
                    db.delete(*k).unwrap();
                }
                Mutation::DeleteRange(s, e) => db.delete_range(*s, *e).unwrap(),
                Mutation::SecondaryDelete(s, e) => {
                    db.delete_where_delete_key_in(*s, *e).unwrap();
                }
                Mutation::Flush => db.persist().unwrap(),
            }
        }
        // move logical time past the threshold, then quiesce the workers:
        // every TTL-expired file must have been compacted down by now
        db.clock().advance_secs(dth_secs * 1.5);
        db.maintain().unwrap();
        let dth = (dth_secs * 1_000_000.0) as u64;
        let snap = db.snapshot_contents().unwrap();
        for (age, count) in &snap.tombstone_file_ages {
            prop_assert!(
                *age <= dth,
                "a file holding {} tombstones is older ({} µs) than Dth ({} µs)",
                count, age, dth
            );
        }
    }
}
