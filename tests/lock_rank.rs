//! Debug-build lock-rank detector, exercised with the engine's real ranks.
//!
//! The unit tests in `lethe-sync` prove the mechanism; these tests prove the
//! *deployed order* — the rank constants the engine actually uses — rejects
//! the inversions the sharded front-end is most at risk of:
//!
//! * taking a shard engine lock while holding the commit-queue state lock
//!   (the group-commit leader must lock the engine first);
//! * cross-shard 2PC taking engine locks in descending shard order;
//! * re-locking the compactor worker state while an engine lock is held
//!   (the `with_shard` temporary-lifetime hazard the detector caught during
//!   the migration).
//!
//! All of these are `debug_assertions`-only: release builds compile the
//! tracking away, so every test here is ignored in `--release`.

use lethe::sync::{held_lock_count, LockRank, Mutex};

/// The panic message of a joined thread, empty when it did not panic.
fn panic_message(result: std::thread::Result<()>) -> String {
    match result {
        Ok(()) => String::new(),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".into()),
    }
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
fn engine_lock_under_commit_queue_state_is_an_inversion() {
    let caught = std::thread::spawn(|| {
        let engine = Mutex::with_order(LockRank::Engine, 0, ());
        let queue_state = Mutex::new(LockRank::CommitQueueState, ());
        // the leader protocol locks the engine, then drains the queue state;
        // the reverse nesting would deadlock against it
        let _state = queue_state.lock();
        let _engine = engine.lock();
    })
    .join();
    let msg = panic_message(caught);
    assert!(msg.contains("lock-rank inversion"), "unexpected panic payload: {msg}");
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
fn cross_shard_engine_locks_must_ascend_by_shard_index() {
    let caught = std::thread::spawn(|| {
        let shard0 = Mutex::with_order(LockRank::Engine, 0, ());
        let shard2 = Mutex::with_order(LockRank::Engine, 2, ());
        // 2PC locks involved shards in ascending index order; descending
        // order deadlocks against a concurrent cross-shard writer
        let _hi = shard2.lock();
        let _lo = shard0.lock();
    })
    .join();
    let msg = panic_message(caught);
    assert!(msg.contains("lock-rank"), "unexpected panic payload: {msg}");
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
fn ascending_cross_shard_locks_are_legal() {
    let shard0 = Mutex::with_order(LockRank::Engine, 0, ());
    let shard1 = Mutex::with_order(LockRank::Engine, 1, ());
    let shard2 = Mutex::with_order(LockRank::Engine, 2, ());
    let _a = shard0.lock();
    let _b = shard1.lock();
    let _c = shard2.lock();
    assert_eq!(held_lock_count(), 3);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
fn worker_state_under_engine_lock_is_an_inversion() {
    let caught = std::thread::spawn(|| {
        let engine = Mutex::with_order(LockRank::Engine, 0, ());
        let worker_state = Mutex::new(LockRank::WorkerState, ());
        // Compactor::wake / PauseGuard::drop lock the worker state; calling
        // either while holding the shard lock is the with_shard
        // temporary-lifetime hazard
        let _engine = engine.lock();
        let _state = worker_state.lock();
    })
    .join();
    let msg = panic_message(caught);
    assert!(msg.contains("lock-rank inversion"), "unexpected panic payload: {msg}");
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
fn full_write_path_nesting_is_legal() {
    // the deepest real nesting on the write path: engine → commit queue
    // drain → outcome slot → WAL, all strictly ascending
    let engine = Mutex::with_order(LockRank::Engine, 0, ());
    let queue_state = Mutex::new(LockRank::CommitQueueState, ());
    let slot = Mutex::new(LockRank::CommitSlot, ());
    let wal = Mutex::new(LockRank::Wal, ());
    let _a = engine.lock();
    let _b = queue_state.lock();
    let _c = slot.lock();
    let _d = wal.lock();
    assert_eq!(held_lock_count(), 4);
}
