//! Oracle-checked crash-recovery tests for the durable engine.
//!
//! Two crash models are exercised, both against a `BTreeMap` oracle of the
//! acknowledged state:
//!
//! * **Abrupt kill** — the engine is dropped at an arbitrary operation
//!   boundary with no warning. Everything acknowledged must be returned by
//!   the reopened store (manifest recovery for flushed data, WAL replay for
//!   the buffered tail).
//! * **Injected kill** — a [`FailPoint`] shared by the data file, WAL and
//!   manifest makes the n-th durable step fail, simulating a kill *inside*
//!   a flush, compaction, WAL truncation or manifest rewrite. The kill-point
//!   sweep replays one scripted workload for every reachable n, so every
//!   ordering window of the protocol (pages written but manifest not
//!   committed, manifest committed but WAL not yet truncated, mid-rewrite,
//!   …) is crossed at least once. After an injected kill, only the single
//!   in-flight operation may be in either its before or after state; every
//!   earlier acknowledgement must hold exactly.

use bytes::Bytes;
use lethe::lsm::{CompactionStrategy, LsmConfig, SecondaryDeleteMode};
use lethe::storage::{FailPoint, Result, SyncPolicy};
use lethe::{Lethe, LetheBuilder, ShardedLethe, ShardedLetheBuilder, WriteBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const KEY_SPACE: u64 = 256;

/// Registry of every [`FailPoint::check`] site name in the source tree.
/// `lethe-lint` cross-checks this list against the code in both directions
/// (an unregistered site is untested, a registered name with no site is
/// dead), and `kill_point_trace_covers_the_whole_registry` below proves a
/// workload actually reaches each one at runtime.
// lint:kill-points-registry:begin
const KILL_POINTS: &[&str] = &[
    "backend.write_page",
    "batchlog.append",
    "batchlog.commit_fsync",
    "checkpoint.marker.rename",
    "checkpoint.marker.tmp",
    "drop.commit",
    "drop.retire",
    "manifest.append",
    "manifest.rewrite.begin",
    "manifest.rewrite.rename",
    "wal.append",
    "wal.append_nosync",
    "wal.rewrite.begin",
    "wal.rewrite.rename",
];
// lint:kill-points-registry:end

/// The delete key is a fixed function of the sort key (an immutable
/// creation attribute, as in the paper's model).
fn delete_key_of(k: u64) -> u64 {
    k.wrapping_mul(31) % KEY_SPACE
}

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "lethe-crash-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn tiny_config() -> LsmConfig {
    let mut cfg = LsmConfig::small_for_test();
    cfg.pages_per_delete_tile = 2;
    cfg.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
    cfg.suppress_blind_deletes = true;
    cfg.key_domain = 1 << 16;
    // in-process crashes lose nothing that reached the file, so the relaxed
    // policy keeps the fuzz fast without weakening what it checks (the
    // protocol ordering); power-failure durability itself is Always's job
    cfg.wal_sync = SyncPolicy::OnFlush;
    cfg
}

fn builder() -> LetheBuilder {
    LetheBuilder::new().with_config(tiny_config()).delete_persistence_threshold_secs(1.0)
}

// ----------------------------------------------------------------- op model

#[derive(Debug, Clone)]
enum Op {
    Put(u64, u8),
    Delete(u64),
    DeleteRange(u64, u64),
    SecondaryDelete(u64, u64),
    Persist,
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..12u32) {
        0..=6 => Op::Put(rng.gen_range(0..KEY_SPACE), rng.gen::<u8>()),
        7..=8 => Op::Delete(rng.gen_range(0..KEY_SPACE)),
        9 => {
            let s = rng.gen_range(0..KEY_SPACE);
            Op::DeleteRange(s, s + rng.gen_range(1..KEY_SPACE / 4))
        }
        10 => {
            let s = rng.gen_range(0..KEY_SPACE);
            Op::SecondaryDelete(s, s + rng.gen_range(1..KEY_SPACE / 4))
        }
        _ => Op::Persist,
    }
}

type Oracle = BTreeMap<u64, Vec<u8>>;

fn apply_oracle(oracle: &mut Oracle, op: &Op) {
    match op {
        Op::Put(k, v) => {
            oracle.insert(*k, vec![*v; 9]);
        }
        Op::Delete(k) => {
            oracle.remove(k);
        }
        Op::DeleteRange(s, e) => {
            let victims: Vec<u64> = oracle.range(*s..*e).map(|(k, _)| *k).collect();
            for k in victims {
                oracle.remove(&k);
            }
        }
        Op::SecondaryDelete(s, e) => {
            let victims: Vec<u64> = oracle
                .keys()
                .copied()
                .filter(|k| {
                    let d = delete_key_of(*k);
                    d >= *s && d < *e
                })
                .collect();
            for k in victims {
                oracle.remove(&k);
            }
        }
        Op::Persist => {}
    }
}

/// Keys whose state an in-flight (crashed) op may or may not have reached.
fn affected_keys(op: &Op) -> Vec<u64> {
    match op {
        Op::Put(k, _) | Op::Delete(k) => vec![*k],
        Op::DeleteRange(s, e) => (*s..(*e).min(KEY_SPACE)).collect(),
        Op::SecondaryDelete(s, e) => (0..KEY_SPACE)
            .filter(|k| {
                let d = delete_key_of(*k);
                d >= *s && d < *e
            })
            .collect(),
        Op::Persist => vec![],
    }
}

/// A store the crash harness can drive: `Lethe` or `ShardedLethe`.
trait Store {
    fn apply(&mut self, op: &Op) -> Result<()>;
    fn get(&mut self, k: u64) -> Result<Option<Bytes>>;
    fn live_keys(&mut self) -> Result<Vec<u64>>;
}

impl Store for Lethe {
    fn apply(&mut self, op: &Op) -> Result<()> {
        match op {
            Op::Put(k, v) => self.put(*k, delete_key_of(*k), vec![*v; 9]),
            Op::Delete(k) => self.delete(*k).map(|_| ()),
            Op::DeleteRange(s, e) => self.delete_range(*s, *e),
            Op::SecondaryDelete(s, e) => self.delete_where_delete_key_in(*s, *e).map(|_| ()),
            Op::Persist => self.persist(),
        }
    }
    fn get(&mut self, k: u64) -> Result<Option<Bytes>> {
        Lethe::get(self, k)
    }
    fn live_keys(&mut self) -> Result<Vec<u64>> {
        Ok(self.range(0, KEY_SPACE)?.into_iter().map(|(k, _)| k).collect())
    }
}

impl Store for ShardedLethe {
    fn apply(&mut self, op: &Op) -> Result<()> {
        match op {
            Op::Put(k, v) => self.put(*k, delete_key_of(*k), vec![*v; 9]),
            Op::Delete(k) => self.delete(*k).map(|_| ()),
            Op::DeleteRange(s, e) => self.delete_range(*s, *e),
            Op::SecondaryDelete(s, e) => self.delete_where_delete_key_in(*s, *e).map(|_| ()),
            Op::Persist => self.persist(),
        }
    }
    fn get(&mut self, k: u64) -> Result<Option<Bytes>> {
        ShardedLethe::get(self, k)
    }
    fn live_keys(&mut self) -> Result<Vec<u64>> {
        Ok(self.range(0, KEY_SPACE)?.into_iter().map(|(k, _)| k).collect())
    }
}

/// Verifies a reopened store against the oracle. `pending` is the op that
/// was in flight when the store crashed, if any: keys it touches may be in
/// either their before or after state, and the oracle is resynchronised to
/// whichever the store durably chose. Every other key must match exactly.
fn verify_and_resync(store: &mut dyn Store, oracle: &mut Oracle, pending: Option<&Op>) {
    let mut oracle_after = oracle.clone();
    let ambiguous: Vec<u64> = match pending {
        Some(op) => {
            apply_oracle(&mut oracle_after, op);
            affected_keys(op)
        }
        None => vec![],
    };
    for k in 0..KEY_SPACE {
        let got = store.get(k).unwrap().map(|b| b.to_vec());
        let before = oracle.get(&k).cloned();
        if ambiguous.contains(&k) {
            let after = oracle_after.get(&k).cloned();
            assert!(
                got == before || got == after,
                "key {k}: got {got:?}, expected before-crash {before:?} or after {after:?} \
                 (pending {pending:?})"
            );
            // adopt whatever the store durably decided
            match got {
                Some(v) => {
                    oracle.insert(k, v);
                }
                None => {
                    oracle.remove(&k);
                }
            }
        } else {
            assert_eq!(got, before, "key {k} lost or corrupted across the crash");
        }
    }
    let live = store.live_keys().unwrap();
    let expected: Vec<u64> = oracle.keys().copied().collect();
    assert_eq!(live, expected, "full scan disagrees with the oracle after recovery");
}

// ----------------------------------------------------------- headline tests

/// The bug this subsystem exists to fix: before the manifest, a durable
/// store forgot everything that had been flushed (the flush truncated the
/// WAL without persisting the tree's file layout).
#[test]
fn flushed_data_survives_reopen() {
    let dir = unique_dir("flushed");
    let mut expected: Oracle = BTreeMap::new();
    {
        let mut db = builder().open(&dir).unwrap();
        for i in 0..2000u64 {
            let k = i % KEY_SPACE;
            let v = (i % 251) as u8;
            db.put(k, delete_key_of(k), vec![v; 9]).unwrap();
            expected.insert(k, vec![v; 9]);
        }
        db.persist().unwrap();
        assert!(db.stats().flushes > 0, "workload must actually flush");
        assert!(db.stats().compactions > 0, "workload must actually compact");
    }
    {
        let mut db = builder().open(&dir).unwrap();
        for (k, v) in &expected {
            assert_eq!(db.get(*k).unwrap().map(|b| b.to_vec()), Some(v.clone()), "key {k}");
        }
        // a write-after-recovery round trip still works
        db.put(7, delete_key_of(7), b"fresh".to_vec()).unwrap();
        db.persist().unwrap();
        assert_eq!(db.get(7).unwrap(), Some(Bytes::from_static(b"fresh")));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn trailing WAL frame (crash mid-append) must not fail the open; the
/// valid prefix is recovered.
#[test]
fn torn_wal_tail_recovers_valid_prefix_on_open() {
    let dir = unique_dir("tornwal");
    {
        let mut db = builder().open(&dir).unwrap();
        for k in 0..8u64 {
            db.put(k, delete_key_of(k), vec![1u8; 9]).unwrap();
        }
        // no persist: the records live only in the WAL
    }
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("lethe.wal"))
            .unwrap();
        // a length prefix promising 100 bytes, followed by only 3
        f.write_all(&100u32.to_be_bytes()).unwrap();
        f.write_all(&[1, 2, 3]).unwrap();
    }
    let db = builder().open(&dir).expect("torn tail must not fail the open");
    for k in 0..8u64 {
        assert_eq!(db.get(k).unwrap(), Some(Bytes::from(vec![1u8; 9])), "key {k}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------- kill-point sweep

/// Builds the deterministic workload script shared by the sweep tests.
fn sweep_script() -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut script: Vec<Op> = (0..140).map(|_| random_op(&mut rng)).collect();
    // make sure the protocol-heavy paths are on the script regardless of
    // what the dice said
    script.push(Op::Persist);
    script.push(Op::SecondaryDelete(0, KEY_SPACE / 2));
    script.push(Op::Persist);
    script
}

/// Replays `script` against a fresh store with the fail point armed at
/// `kill`, then reopens and verifies. Returns `false` once `kill` is past
/// every durable step of the script (i.e. nothing crashed).
fn run_sweep_iteration(script: &[Op], kill: u64, shards: Option<usize>) -> bool {
    let dir = unique_dir("sweep");
    let fp = FailPoint::new();
    let mut oracle: Oracle = BTreeMap::new();
    let mut pending: Option<Op> = None;

    let open_single = |fp: Option<FailPoint>| -> Lethe {
        let mut b = builder();
        if let Some(fp) = fp {
            b = b.crash_failpoint(fp);
        }
        b.open(&dir).unwrap()
    };
    let open_sharded = |fp: Option<FailPoint>, n: usize| -> ShardedLethe {
        let mut b = ShardedLetheBuilder::from_builder(builder()).shards(n);
        if let Some(fp) = fp {
            b = b.crash_failpoint(fp);
        }
        b.open(&dir).unwrap()
    };

    {
        let mut store: Box<dyn Store> = match shards {
            None => Box::new(open_single(Some(fp.clone()))),
            Some(n) => Box::new(open_sharded(Some(fp.clone()), n)),
        };
        fp.arm(kill);
        for op in script {
            match store.apply(op) {
                Ok(()) => apply_oracle(&mut oracle, op),
                Err(_) => {
                    pending = Some(op.clone());
                    break;
                }
            }
        }
        fp.disarm();
    }
    let crashed = pending.is_some();
    let mut store: Box<dyn Store> = match shards {
        None => Box::new(open_single(None)),
        Some(n) => Box::new(open_sharded(None, n)),
    };
    verify_and_resync(store.as_mut(), &mut oracle, pending.as_ref());
    let _ = std::fs::remove_dir_all(&dir);
    crashed
}

#[test]
fn kill_point_sweep_single_shard() {
    let script = sweep_script();
    // dense coverage of the early protocol steps, sparser further out; the
    // sweep ends when a kill index is past the script's last durable step
    let mut kill = 0u64;
    let mut crashes = 0u32;
    while run_sweep_iteration(&script, kill, None) {
        crashes += 1;
        kill += 1 + kill / 16;
    }
    assert!(crashes > 30, "sweep must cross many kill points, got {crashes}");
}

#[test]
fn kill_point_sweep_sharded() {
    let script = sweep_script();
    let mut kill = 0u64;
    let mut crashes = 0u32;
    while run_sweep_iteration(&script, kill, Some(3)) {
        crashes += 1;
        kill += 1 + kill / 12;
    }
    assert!(crashes > 30, "sweep must cross many kill points, got {crashes}");
}

/// One iteration of the whole-file-drop sweep: ingest an expired timeline
/// into a date-tiered durable store, then crash at the `kill`-th durable
/// step *of the drop commit* (manifest edit before page retirement).
/// Because one `DropFiles` task retires every expired file through a single
/// manifest edit, recovery must see the window either entirely present
/// (crash before the edit landed) or entirely gone — never partially
/// retired, and a re-driven maintenance pass must finish the retirement.
/// Returns `false` once `kill` is past every durable step of the drop.
fn run_drop_sweep_iteration(kill: u64) -> bool {
    const TIMELINE: u64 = 96;
    let dir = unique_dir("dropsweep");
    let fp = FailPoint::new();
    let date_tiered = || {
        builder().compaction_strategy(CompactionStrategy::DateTiered {
            base_window_micros: 1_000,
            fan_in: 2,
            ttl_micros: Some(500_000),
        })
    };
    let crashed = {
        let mut db = date_tiered().crash_failpoint(fp.clone()).open(&dir).unwrap();
        for i in 0..TIMELINE {
            db.put(i, i * 100, vec![4u8; 16]).unwrap();
            if (i + 1) % 32 == 0 {
                db.persist().unwrap();
            }
        }
        db.persist().unwrap();
        db.clock().advance_secs(10.0);
        // arm only around the maintenance pass, so the kill lands inside
        // the drop protocol rather than the ingest
        fp.arm(kill);
        let crashed = db.maintain().is_err();
        fp.disarm();
        crashed
    };
    {
        let mut db = date_tiered().open(&dir).unwrap();
        let present = (0..TIMELINE).filter(|&k| db.get(k).unwrap().is_some()).count() as u64;
        assert!(
            present == 0 || present == TIMELINE,
            "partial window after drop crash at step {kill}: {present}/{TIMELINE} keys survive"
        );
        // recovery must be able to finish the job: the logical clock restarts
        // at zero on reopen, so re-expire the window, then retire it
        db.clock().advance_secs(10.0);
        db.maintain().unwrap();
        for k in 0..TIMELINE {
            assert_eq!(db.get(k).unwrap(), None, "expired key {k} survives re-driven maintenance");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    crashed
}

#[test]
fn kill_point_sweep_whole_file_drop() {
    let mut kill = 0u64;
    let mut crashes = 0u32;
    while run_drop_sweep_iteration(kill) {
        crashes += 1;
        kill += 1;
    }
    // the drop commit consults at least drop.commit, manifest.append and
    // drop.retire — the sweep must have crashed inside each window
    assert!(crashes >= 3, "drop sweep must cross the commit protocol, got {crashes}");
}

/// Proves the `KILL_POINTS` registry is *runtime-reachable*, not just
/// statically cross-checked: a traced (disarmed) fail point records every
/// site name a mixed sharded workload consults, and the set must equal the
/// registry exactly. A site the workload never reaches would pass the lint
/// (the name exists in source) but has no sweep that can kill inside it —
/// this test catches that gap; a traced site missing from the registry is
/// caught by the lint itself.
#[test]
fn kill_point_trace_covers_the_whole_registry() {
    let dir = unique_dir("killtrace");
    let fp = FailPoint::new();
    fp.enable_trace();
    {
        let db = ShardedLetheBuilder::from_builder(builder())
            .shards(3)
            .crash_failpoint(fp.clone())
            .open(&dir)
            .unwrap();
        // group-commit puts: staged WAL frames (wal.append_nosync)
        for k in 0..48u64 {
            db.put(k, delete_key_of(k), vec![7u8; 16]).unwrap();
        }
        // direct ops: synced appends (wal.append)
        db.delete(3).unwrap();
        db.delete_range(10, 14).unwrap();
        // cross-shard batch: 2PC through the batch-commit log
        // (batchlog.append + batchlog.commit_fsync)
        let mut batch = WriteBatch::new();
        for k in 100..140u64 {
            batch.put(k, delete_key_of(k), vec![9u8; 16]);
        }
        db.write(batch).unwrap();
        // first persist: flush (backend.write_page), first manifest commit
        // (manifest.rewrite.begin/rename), WAL truncation
        // (wal.rewrite.begin/rename)
        db.persist().unwrap();
        // second round so a later manifest commit takes the append path
        // (manifest.append) instead of the first-commit rewrite
        for k in 200..232u64 {
            db.put(k, delete_key_of(k), vec![5u8; 16]).unwrap();
        }
        db.persist().unwrap();
        // online checkpoint: streams a snapshot into a fresh directory —
        // page writes on the checkpoint backend, its manifest commit, and
        // the completeness marker (checkpoint.marker.tmp/rename)
        let ckpt = unique_dir("killtrace-ckpt");
        db.checkpoint(&ckpt).unwrap();
        let _ = std::fs::remove_dir_all(&ckpt);
    }
    // whole-file drop: a date-tiered store whose wholly-expired windows are
    // retired through the drop commit steps (drop.commit / drop.retire)
    let dropdir = unique_dir("killtrace-drop");
    {
        let mut db = builder()
            .compaction_strategy(CompactionStrategy::DateTiered {
                base_window_micros: 1_000,
                fan_in: 2,
                ttl_micros: Some(500_000),
            })
            .crash_failpoint(fp.clone())
            .open(&dropdir)
            .unwrap();
        for i in 0..64u64 {
            db.put(i, i * 100, vec![6u8; 16]).unwrap();
        }
        db.persist().unwrap();
        db.clock().advance_secs(10.0);
        db.maintain().unwrap();
        assert!(db.stats().whole_file_drops >= 1, "coverage workload must drive a drop");
    }
    let _ = std::fs::remove_dir_all(&dropdir);
    let _ = std::fs::remove_dir_all(&dir);
    let traced: BTreeSet<&str> = fp.traced_sites().into_iter().collect();
    let registry: BTreeSet<&str> = KILL_POINTS.iter().copied().collect();
    let unreached: Vec<&&str> = registry.difference(&traced).collect();
    assert!(
        unreached.is_empty(),
        "registered kill points never consulted by the coverage workload: {unreached:?} \
         (traced: {traced:?})"
    );
    let unregistered: Vec<&&str> = traced.difference(&registry).collect();
    assert!(
        unregistered.is_empty(),
        "sites consulted at runtime but missing from KILL_POINTS: {unregistered:?}"
    );
}

// ------------------------------------------------------------ restart fuzz

/// Randomized restart fuzz: one long history against one directory, with
/// abrupt kills and armed fail points interleaved at random, continuing
/// after every recovery (so recovered state is itself re-crashed and
/// re-recovered, manifests fold, and WAL replays stack on flushed state).
fn run_restart_fuzz(seed: u64, shards: Option<usize>) {
    let dir = unique_dir(&format!("fuzz{}", shards.unwrap_or(1)));
    let mut rng = StdRng::seed_from_u64(seed);
    let fp = FailPoint::new();
    let mut oracle: Oracle = BTreeMap::new();

    let open = |fp: FailPoint| -> Box<dyn Store> {
        match shards {
            None => Box::new(builder().crash_failpoint(fp).open(&dir).unwrap()),
            Some(n) => Box::new(
                ShardedLetheBuilder::from_builder(builder())
                    .shards(n)
                    .crash_failpoint(fp)
                    .open(&dir)
                    .unwrap(),
            ),
        }
    };

    let mut store = open(fp.clone());
    let mut reopens = 0u32;
    let mut injected = 0u32;
    for _ in 0..700 {
        // occasionally schedule an injected failure a few durable steps out
        if !fp.is_armed() && rng.gen_range(0..25u32) == 0 {
            fp.arm(rng.gen_range(0..40u64));
        }
        let op = random_op(&mut rng);
        match store.apply(&op) {
            Ok(()) => apply_oracle(&mut oracle, &op),
            Err(_) => {
                injected += 1;
                fp.disarm();
                drop(store);
                store = open(fp.clone());
                reopens += 1;
                verify_and_resync(store.as_mut(), &mut oracle, Some(&op));
            }
        }
        // abrupt kill at a clean op boundary
        if rng.gen_range(0..60u32) == 0 {
            fp.disarm();
            drop(store);
            store = open(fp.clone());
            reopens += 1;
            verify_and_resync(store.as_mut(), &mut oracle, None);
        }
    }
    fp.disarm();
    drop(store);
    let mut store = open(fp);
    verify_and_resync(store.as_mut(), &mut oracle, None);
    assert!(reopens > 2, "fuzz must actually restart, got {reopens}");
    assert!(injected > 0, "fuzz must hit at least one injected kill");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_fuzz_single_shard() {
    for seed in [1u64, 2, 3] {
        run_restart_fuzz(seed, None);
    }
}

#[test]
fn restart_fuzz_sharded() {
    for seed in [11u64, 12] {
        run_restart_fuzz(seed, Some(3));
    }
}

// ----------------------------------- background-commit kill-point sweep

/// Applies one op to a sharded store directly (the `Store` impl boxes it;
/// here we also need `persist` between phases).
fn apply_sharded(db: &ShardedLethe, op: &Op) -> Result<()> {
    match op {
        Op::Put(k, v) => db.put(*k, delete_key_of(*k), vec![*v; 9]),
        Op::Delete(k) => db.delete(*k).map(|_| ()),
        Op::DeleteRange(s, e) => db.delete_range(*s, *e),
        Op::SecondaryDelete(s, e) => db.delete_where_delete_key_in(*s, *e).map(|_| ()),
        Op::Persist => db.persist(),
    }
}

/// Checks a live (not reopened) sharded store against the oracle exactly.
fn assert_live_matches_oracle(db: &ShardedLethe, oracle: &Oracle) {
    for k in 0..KEY_SPACE {
        let got = db.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(got, oracle.get(&k).cloned(), "live store diverged on key {k}");
    }
    let live: Vec<u64> = db.range(0, KEY_SPACE).unwrap().into_iter().map(|(k, _)| k).collect();
    let expected: Vec<u64> = oracle.keys().copied().collect();
    assert_eq!(live, expected, "live scan diverged from the oracle");
}

/// Kill-point sweep targeting the *background* commit sequence explicitly.
///
/// A workload is ingested and fully quiesced with the fail point disarmed;
/// a fresh buffer of writes and tombstones is then staged; the fail point
/// is armed; and `persist()` drives the shard's worker across the durable
/// steps of its flush/compaction commits — device page writes and sync,
/// manifest append, WAL prefix rewrite (so the kill lands in every window:
/// pages written but manifest not committed, manifest committed / version
/// installed but WAL not yet truncated, mid-rewrite) — with a kill at every
/// index until one sweep survives the whole sequence.
///
/// Two properties are checked per crash. (a) The **live** store keeps
/// serving exactly the acknowledged state: a failed background job installs
/// nothing and the frozen buffer is only cleared by a successful flush, so
/// an injected crash inside the worker never tears the in-memory view.
/// (b) The **reopened** store recovers exactly the acknowledged state:
/// flushes and compactions never change logical contents, so — unlike a
/// crash inside a foreground write — there is no ambiguous in-flight
/// operation at all.
#[test]
fn kill_point_sweep_background_commit() {
    let mut kill = 0u64;
    let mut crashes = 0u32;
    loop {
        let dir = unique_dir("bgsweep");
        let fp = FailPoint::new();
        let mut oracle: Oracle = BTreeMap::new();
        let mut crashed = false;
        {
            let db = ShardedLetheBuilder::from_builder(builder())
                .shards(1)
                .crash_failpoint(fp.clone())
                .open(&dir)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(0xBACC);
            // phase 1: ingest and fully quiesce with the fail point disarmed
            for _ in 0..120 {
                let op = random_op(&mut rng);
                if matches!(op, Op::Persist) {
                    continue;
                }
                apply_sharded(&db, &op).unwrap();
                apply_oracle(&mut oracle, &op);
            }
            db.persist().unwrap();
            // phase 2: stage a fresh buffer (puts + tombstones of every
            // flavour) so the armed persist crosses a flush commit and the
            // compactions it triggers
            for _ in 0..40 {
                let op = random_op(&mut rng);
                if matches!(op, Op::Persist | Op::SecondaryDelete(..)) {
                    continue;
                }
                apply_sharded(&db, &op).unwrap();
                apply_oracle(&mut oracle, &op);
            }
            fp.arm(kill);
            if db.persist().is_err() {
                crashed = true;
                fp.disarm();
                // (a) the live store still serves every acknowledged write
                assert_live_matches_oracle(&db, &oracle);
            }
            fp.disarm();
        }
        // (b) reopen and verify exactly: no ambiguity window exists for a
        // crash inside a background flush/compaction commit
        {
            let mut db: Box<dyn Store> = Box::new(
                ShardedLetheBuilder::from_builder(builder()).shards(1).open(&dir).unwrap(),
            );
            verify_and_resync(db.as_mut(), &mut oracle, None);
        }
        let _ = std::fs::remove_dir_all(&dir);
        if !crashed {
            break;
        }
        crashes += 1;
        kill += 1;
    }
    assert!(crashes >= 8, "sweep must cross the background commit's durable steps, got {crashes}");
}

// ------------------------------------- group-commit kill-point sweep

/// One write inside an atomic [`WriteBatch`].
#[derive(Debug, Clone)]
enum BatchItem {
    Put(u64, u8),
    Delete(u64),
    /// Secondary range delete `[s, e)` on the delete key — the structural
    /// batch op that restructures KiWi pages under a paused worker.
    SecDel(u64, u64),
}

/// An op in the group-commit sweep script: an atomic batch or one of the
/// plain ops (so batches land between flushes, WAL truncations and
/// compactions, not in a vacuum).
#[derive(Debug, Clone)]
enum GOp {
    Batch(Vec<BatchItem>),
    Single(Op),
}

fn random_batch(rng: &mut StdRng) -> Vec<BatchItem> {
    let n = rng.gen_range(2..10usize);
    let mut items: Vec<BatchItem> = (0..n)
        .map(|_| {
            if rng.gen_range(0..5u32) == 0 {
                BatchItem::Delete(rng.gen_range(0..KEY_SPACE))
            } else {
                BatchItem::Put(rng.gen_range(0..KEY_SPACE), rng.gen::<u8>())
            }
        })
        .collect();
    // occasionally make the batch structural: a secondary range delete
    // rides along with the puts and deletes
    if rng.gen_range(0..8u32) == 0 {
        let s = rng.gen_range(0..KEY_SPACE);
        items.push(BatchItem::SecDel(s, s + rng.gen_range(1..KEY_SPACE / 4)));
    }
    items
}

/// Deterministic script for the group-commit sweep: roughly half atomic
/// batches, interleaved with plain ops and periodic persists so the armed
/// kills also land inside the flushes and compactions between batches.
fn group_commit_script(seed: u64) -> Vec<GOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = Vec::new();
    for i in 0..70 {
        if rng.gen_range(0..2u32) == 0 {
            script.push(GOp::Batch(random_batch(&mut rng)));
        } else {
            script.push(GOp::Single(random_op(&mut rng)));
        }
        if i % 20 == 19 {
            script.push(GOp::Single(Op::Persist));
        }
    }
    script.push(GOp::Batch(random_batch(&mut rng)));
    script.push(GOp::Single(Op::Persist));
    script
}

fn apply_batch_to(db: &ShardedLethe, items: &[BatchItem]) -> Result<()> {
    let mut batch = WriteBatch::new();
    for item in items {
        match item {
            BatchItem::Put(k, v) => {
                batch.put(*k, delete_key_of(*k), vec![*v; 9]);
            }
            BatchItem::Delete(k) => {
                batch.delete(*k);
            }
            BatchItem::SecDel(s, e) => {
                batch.secondary_range_delete(*s, *e);
            }
        }
    }
    db.write(batch)
}

fn apply_batch_oracle(oracle: &mut Oracle, items: &[BatchItem]) {
    for item in items {
        match item {
            BatchItem::Put(k, v) => {
                oracle.insert(*k, vec![*v; 9]);
            }
            BatchItem::Delete(k) => {
                oracle.remove(k);
            }
            BatchItem::SecDel(s, e) => {
                apply_oracle(oracle, &Op::SecondaryDelete(*s, *e));
            }
        }
    }
}

/// Keys a batch may touch (a superset: secondary deletes contribute every
/// key whose delete key falls in range, live or not).
fn batch_keys(items: &[BatchItem]) -> Vec<u64> {
    let mut keys: Vec<u64> = items
        .iter()
        .flat_map(|item| match item {
            BatchItem::Put(k, _) | BatchItem::Delete(k) => vec![*k],
            BatchItem::SecDel(s, e) => affected_keys(&Op::SecondaryDelete(*s, *e)),
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// The batch-level atomicity check: unlike [`verify_and_resync`], which
/// allows each ambiguous key independently to be in its before or after
/// state, a crashed batch must leave **all** of its keys in the pre-batch
/// state or **all** of them in the post-batch state — a mix is a torn batch.
/// The oracle is resynchronised to whichever side the store durably chose.
fn verify_batch_all_or_nothing(store: &mut dyn Store, oracle: &mut Oracle, items: &[BatchItem]) {
    let mut after = oracle.clone();
    apply_batch_oracle(&mut after, items);
    let mut all_before = true;
    let mut all_after = true;
    let mut observed: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
    for k in batch_keys(items) {
        let got = store.get(k).unwrap().map(|b| b.to_vec());
        if got != oracle.get(&k).cloned() {
            all_before = false;
        }
        if got != after.get(&k).cloned() {
            all_after = false;
        }
        observed.insert(k, got);
    }
    assert!(
        all_before || all_after,
        "torn batch after crash: observed {observed:?} matches neither the pre-batch \
         nor the post-batch state (batch {items:?})"
    );
    if all_after {
        *oracle = after;
    }
}

/// Replays the group-commit script with the fail point armed at `kill`,
/// reopens, and checks every acknowledged op exactly and the in-flight op
/// (batch-atomically for batches). Returns `false` once nothing crashed.
fn run_group_commit_sweep_iteration(script: &[GOp], kill: u64, shards: usize) -> (bool, bool) {
    let dir = unique_dir("gcsweep");
    let fp = FailPoint::new();
    let mut oracle: Oracle = BTreeMap::new();
    let mut pending: Option<GOp> = None;
    {
        let db = ShardedLetheBuilder::from_builder(builder())
            .shards(shards)
            .crash_failpoint(fp.clone())
            .open(&dir)
            .unwrap();
        fp.arm(kill);
        for op in script {
            let res = match op {
                GOp::Batch(items) => apply_batch_to(&db, items),
                GOp::Single(op) => apply_sharded(&db, op),
            };
            match res {
                Ok(()) => match op {
                    GOp::Batch(items) => apply_batch_oracle(&mut oracle, items),
                    GOp::Single(op) => apply_oracle(&mut oracle, op),
                },
                Err(_) => {
                    pending = Some(op.clone());
                    break;
                }
            }
        }
        fp.disarm();
    }
    let crashed = pending.is_some();
    let batch_crashed = matches!(pending, Some(GOp::Batch(_)));
    let mut store: Box<dyn Store> = Box::new(
        ShardedLetheBuilder::from_builder(builder()).shards(shards).open(&dir).unwrap(),
    );
    match &pending {
        Some(GOp::Batch(items)) => {
            verify_batch_all_or_nothing(store.as_mut(), &mut oracle, items);
            verify_and_resync(store.as_mut(), &mut oracle, None);
        }
        Some(GOp::Single(op)) => verify_and_resync(store.as_mut(), &mut oracle, Some(op)),
        None => verify_and_resync(store.as_mut(), &mut oracle, None),
    }
    let _ = std::fs::remove_dir_all(&dir);
    (crashed, batch_crashed)
}

fn run_group_commit_sweep(shards: usize, seed: u64) {
    let script = group_commit_script(seed);
    let mut kill = 0u64;
    let mut crashes = 0u32;
    let mut batch_crashes = 0u32;
    loop {
        let (crashed, batch_crashed) = run_group_commit_sweep_iteration(&script, kill, shards);
        if !crashed {
            break;
        }
        crashes += 1;
        batch_crashes += u32::from(batch_crashed);
        kill += 1 + kill / 16;
    }
    assert!(crashes > 30, "sweep must cross many kill points, got {crashes}");
    assert!(
        batch_crashes > 3,
        "sweep must kill inside batch commits, got {batch_crashes} of {crashes}"
    );
}

/// Single-shard group commit: every kill lands inside the stage → fsync →
/// apply sequence of one WAL frame (or the flush/compaction around it), and
/// each in-flight batch must recover all-or-nothing.
#[test]
fn group_commit_kill_point_sweep_single_shard() {
    run_group_commit_sweep(1, 0xBA7C4);
}

/// Cross-shard group commit: kills land in every window of the two-phase
/// protocol — some prepared WALs durable but not all, all prepared but the
/// BATCHES commit record absent, the commit record durable but the crash
/// before apply — and each in-flight batch must still recover atomically
/// across all three shards.
#[test]
fn group_commit_kill_point_sweep_cross_shard() {
    run_group_commit_sweep(3, 0xBA7C4);
}

/// A batch id left in a shard WAL by a crashed (rolled-back) cross-shard
/// batch must never be handed to a later batch: recovery does not rewrite
/// WALs, so if the new batch commits under the reused id, the *next*
/// recovery would find the stale prepared slice's id in the committed set
/// and resurrect part of the aborted batch. The sweep crashes batch A in
/// every window of the 2PC, reopens, commits an unrelated batch B, then
/// recovers once more and checks A is still all-or-nothing and B intact.
/// (Keys 100–102 and 200–202 both span shards 0 and 2 of 3 under the
/// routing hash, so both batches take the cross-shard prepare/commit path.)
#[test]
fn aborted_batch_id_is_never_reused_after_reopen() {
    let shards = 3;
    let mut kill = 0u64;
    let mut crashes = 0u32;
    loop {
        let dir = unique_dir("gc-id-reuse");
        let fp = FailPoint::new();
        let crashed = {
            let db = ShardedLetheBuilder::from_builder(builder())
                .shards(shards)
                .crash_failpoint(fp.clone())
                .open(&dir)
                .unwrap();
            fp.arm(kill);
            let mut a = WriteBatch::new();
            for k in [100u64, 101, 102] {
                a.put(k, delete_key_of(k), vec![0xAA; 9]);
            }
            let res = db.write(a);
            fp.disarm();
            res.is_err()
        };
        // first recovery rolls A back (or replays it in full if the crash
        // landed past the commit point); then an unrelated batch commits —
        // its id must be fresh, not A's leftover
        let a_applied = {
            let db =
                ShardedLetheBuilder::from_builder(builder()).shards(shards).open(&dir).unwrap();
            let a_applied = db.get(100).unwrap().is_some();
            for k in [101u64, 102] {
                assert_eq!(
                    db.get(k).unwrap().is_some(),
                    a_applied,
                    "torn batch A after first recovery (kill {kill})"
                );
            }
            let mut b = WriteBatch::new();
            for k in [200u64, 201, 202] {
                b.put(k, delete_key_of(k), vec![0xBB; 9]);
            }
            db.write(b).unwrap();
            a_applied
        };
        // the second recovery is where id reuse would bite: B's commit
        // record must not retroactively commit A's stale prepared slices
        {
            let db =
                ShardedLetheBuilder::from_builder(builder()).shards(shards).open(&dir).unwrap();
            for k in [100u64, 101, 102] {
                assert_eq!(
                    db.get(k).unwrap().is_some(),
                    a_applied,
                    "rolled-back batch slice resurrected by id reuse (kill {kill})"
                );
            }
            for k in [200u64, 201, 202] {
                assert!(
                    db.get(k).unwrap().is_some(),
                    "committed batch B lost after recovery (kill {kill})"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        if !crashed {
            break;
        }
        crashes += 1;
        kill += 1;
    }
    // 4 injectable durable steps under OnFlush: one prepare append per
    // involved shard plus the commit log's append and fsync checks — the
    // sweep must at least cross the all-prepared-uncommitted window
    assert!(crashes >= 4, "sweep must cross the prepare/commit windows, got {crashes}");
}

// --------------------------------------------- checkpoint kill-point sweep

/// Kill-point sweep across every durable step of an online checkpoint.
///
/// One store is built and a snapshot pinned once; the sweep then repeatedly
/// streams that pinned snapshot into a fresh checkpoint directory with the
/// fail point armed one step further each round, while the live store keeps
/// taking writes between rounds (the pinned fence never moves, and the
/// workers are drained before each armed window so the injected step is
/// deterministic). A torn checkpoint must be **detectably incomplete**:
/// [`Lethe::restore`] refuses the directory, it never opens silently short.
/// The surviving run must restore to exactly the oracle frozen at the
/// snapshot fence — none of the post-fence writes may leak across. The
/// fired-site audit proves the sweep crossed *every* durable step of the
/// checkpoint protocol: data-page writes, the manifest commit, and the
/// completeness marker's tmp write and rename.
#[test]
fn checkpoint_kill_point_sweep() {
    let dir = unique_dir("ckpt-sweep");
    let fp = FailPoint::new();
    let db = ShardedLetheBuilder::from_builder(builder())
        .shards(3)
        .crash_failpoint(fp.clone())
        .open(&dir)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0xC4E7);
    let mut oracle: Oracle = BTreeMap::new();
    for _ in 0..150 {
        let op = random_op(&mut rng);
        apply_sharded(&db, &op).unwrap();
        apply_oracle(&mut oracle, &op);
    }
    db.persist().unwrap();

    let snapshot = db.snapshot();
    let frozen = oracle.clone();

    let mut kill = 0u64;
    let mut crashes = 0u32;
    let mut fired: BTreeSet<&'static str> = BTreeSet::new();
    let mut post_key = 10_000u64;
    loop {
        // the store keeps moving while the pinned fence stays put; drain
        // the workers so the armed window below is deterministic
        for _ in 0..4 {
            db.put(post_key, delete_key_of(post_key % KEY_SPACE), vec![0xEE; 9]).unwrap();
            post_key += 1;
        }
        db.maintain().unwrap();

        let ckpt = unique_dir("ckpt-out");
        fp.arm(kill);
        let res = db.checkpoint_at(&snapshot, &ckpt);
        fp.disarm();
        match res {
            Err(_) => {
                crashes += 1;
                fired.insert(fp.last_fired().expect("an injected kill records its site"));
                // torn checkpoints are detectably incomplete, never
                // silently short
                assert!(
                    Lethe::restore(&ckpt).is_err(),
                    "restore accepted a torn checkpoint (kill {kill})"
                );
                let _ = std::fs::remove_dir_all(&ckpt);
            }
            Ok(marker) => {
                assert_eq!(marker.fence, snapshot.seqnum());
                let restored = Lethe::restore(&ckpt).unwrap();
                for k in 0..KEY_SPACE {
                    assert_eq!(
                        restored.get(k).unwrap().map(|b| b.to_vec()),
                        frozen.get(&k).cloned(),
                        "restored key {k} diverged from the fence oracle"
                    );
                }
                // none of the post-fence writes leaked across the fence
                let live: Vec<u64> = restored
                    .range(0, u64::MAX)
                    .unwrap()
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                let expected: Vec<u64> = frozen.keys().copied().collect();
                assert_eq!(live, expected, "restored scan shows post-fence writes");
                let _ = std::fs::remove_dir_all(&ckpt);
                break;
            }
        }
        kill += 1;
    }
    assert!(crashes >= 5, "sweep must cross the checkpoint's durable steps, got {crashes}");
    let expected: BTreeSet<&'static str> = [
        "backend.write_page",
        "manifest.rewrite.begin",
        "manifest.rewrite.rename",
        "checkpoint.marker.tmp",
        "checkpoint.marker.rename",
    ]
    .into_iter()
    .collect();
    assert_eq!(fired, expected, "the sweep must kill inside every durable checkpoint step");
    // the live store was never damaged by any of the torn checkpoints
    for k in 0..KEY_SPACE {
        assert_eq!(
            db.get(k).unwrap().map(|b| b.to_vec()),
            oracle.get(&k).cloned(),
            "live store diverged on key {k} after the sweep"
        );
    }
    assert!(db.get(10_000).unwrap().is_some(), "post-fence writes must be live");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An online checkpoint under genuinely concurrent writers: three threads
/// overwrite and delete the snapshotted keys the whole time the checkpoint
/// streams, and the restored store must still read exactly the oracle
/// frozen at the snapshot fence, byte for byte.
#[test]
fn checkpoint_restores_the_fence_despite_concurrent_writers() {
    let dir = unique_dir("ckpt-live");
    let ckpt = unique_dir("ckpt-live-out");
    let db = ShardedLetheBuilder::from_builder(builder()).shards(3).open(&dir).unwrap();
    let mut frozen: Oracle = BTreeMap::new();
    for k in 0..KEY_SPACE {
        let v = vec![(k % 251) as u8; 9];
        db.put(k, delete_key_of(k), v.clone()).unwrap();
        frozen.insert(k, v);
    }
    db.persist().unwrap();

    let snapshot = db.snapshot();
    let stop = AtomicBool::new(false);
    let marker = std::thread::scope(|s| {
        let stop = &stop;
        let db = &db;
        let writers: Vec<_> = (0..3u64)
            .map(|t| {
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) && i < 5_000 {
                        let k = (t * 1_000 + i) % KEY_SPACE;
                        db.put(k, delete_key_of(k), vec![0xEE; 9]).unwrap();
                        if i.is_multiple_of(64) {
                            db.delete((i * 7) % KEY_SPACE).unwrap();
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        let marker = db.checkpoint_at(&snapshot, &ckpt).unwrap();
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        marker
    });
    assert_eq!(marker.fence, snapshot.seqnum());

    let restored = Lethe::restore(&ckpt).unwrap();
    for k in 0..KEY_SPACE {
        assert_eq!(
            restored.get(k).unwrap().map(|b| b.to_vec()),
            frozen.get(&k).cloned(),
            "restored key {k} shows a concurrent writer's data"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ckpt);
}
