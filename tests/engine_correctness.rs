//! Cross-crate integration tests: the Lethe engine and the state-of-the-art
//! baselines must agree with a model key-value store (a `BTreeMap` oracle)
//! under mixed workloads, and Lethe must additionally honour its
//! delete-persistence guarantee.

use lethe::workload::{BatchWriteOp, Operation, WorkloadGenerator, WorkloadSpec};
use lethe::{Baseline, BaselineKind, Lethe, LetheBuilder, LsmConfig, ShardedLetheBuilder, WriteBatch};
use std::collections::BTreeMap;

fn small_config() -> LsmConfig {
    LsmConfig {
        size_ratio: 4,
        buffer_pages: 8,
        entries_per_page: 4,
        entry_size: 64,
        max_pages_per_file: 8,
        key_domain: 1 << 20,
        ingestion_rate: 10_000,
        ..LsmConfig::default()
    }
}

fn lethe_engine(h: usize) -> Lethe {
    LetheBuilder::new()
        .with_config(small_config())
        .delete_persistence_threshold_secs(2.0)
        .delete_tile_pages(h)
        .build()
        .unwrap()
}

/// Drives an operation stream through Lethe, a baseline and a BTreeMap
/// oracle, then checks that every key agrees across all three.
fn run_against_oracle(spec: WorkloadSpec, h: usize) {
    let mut gen = WorkloadGenerator::new(spec.clone());
    let mut ops = gen.preload();
    ops.extend(gen.operations());

    let mut lethe = lethe_engine(h);
    let mut baseline = Baseline::new(BaselineKind::RocksDbLike, small_config()).unwrap();
    // oracle: sort key -> (delete key, value)
    let mut oracle: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();

    for op in &ops {
        match op {
            Operation::Put { key, delete_key } => {
                let value = format!("v-{key}-{delete_key}").into_bytes();
                lethe.put(*key, *delete_key, value.clone()).unwrap();
                baseline.put(*key, *delete_key, value.clone()).unwrap();
                oracle.insert(*key, (*delete_key, value));
            }
            Operation::Get { key } | Operation::GetEmpty { key } => {
                let expected = oracle.get(key).map(|(_, v)| v.clone());
                assert_eq!(
                    lethe.get(*key).unwrap().map(|b| b.to_vec()),
                    expected,
                    "lethe disagrees with oracle on key {key}"
                );
                assert_eq!(
                    baseline.get(*key).unwrap().map(|b| b.to_vec()),
                    expected,
                    "baseline disagrees with oracle on key {key}"
                );
            }
            Operation::Delete { key } => {
                lethe.delete(*key).unwrap();
                baseline.delete(*key).unwrap();
                oracle.remove(key);
            }
            Operation::DeleteRange { start, end } => {
                lethe.delete_range(*start, *end).unwrap();
                baseline.delete_range(*start, *end).unwrap();
                let victims: Vec<u64> = oracle.range(*start..*end).map(|(k, _)| *k).collect();
                for k in victims {
                    oracle.remove(&k);
                }
            }
            Operation::RangeLookup { start, end } => {
                let expected: Vec<u64> = oracle.range(*start..*end).map(|(k, _)| *k).collect();
                let got: Vec<u64> =
                    lethe.range(*start, *end).unwrap().into_iter().map(|(k, _)| k).collect();
                assert_eq!(got, expected, "lethe range [{start}, {end}) disagrees");
            }
            Operation::RangeStream { start, end, limit } => {
                let expected: Vec<u64> = oracle
                    .range(*start..*end)
                    .map(|(k, _)| *k)
                    .take(*limit as usize)
                    .collect();
                let got: Vec<u64> = lethe
                    .iter_range(*start, *end)
                    .unwrap()
                    .take(*limit as usize)
                    .map(|r| r.unwrap().0)
                    .collect();
                assert_eq!(got, expected, "lethe stream [{start}, {end})x{limit} disagrees");
            }
            Operation::SecondaryRangeDelete { start, end } => {
                lethe.delete_where_delete_key_in(*start, *end).unwrap();
                baseline.delete_where_delete_key_in(*start, *end).unwrap();
                let victims: Vec<u64> = oracle
                    .iter()
                    .filter(|(_, (d, _))| *d >= *start && *d < *end)
                    .map(|(k, _)| *k)
                    .collect();
                for k in victims {
                    oracle.remove(&k);
                }
            }
            Operation::WriteBatch { ops: batch_ops } => {
                let mut lethe_batch = WriteBatch::new();
                let mut baseline_batch = WriteBatch::new();
                for op in batch_ops {
                    match op {
                        BatchWriteOp::Put { key, delete_key } => {
                            let value = format!("b-{key}-{delete_key}").into_bytes();
                            lethe_batch.put(*key, *delete_key, value.clone());
                            baseline_batch.put(*key, *delete_key, value.clone());
                            oracle.insert(*key, (*delete_key, value));
                        }
                        BatchWriteOp::Delete { key } => {
                            lethe_batch.delete(*key);
                            baseline_batch.delete(*key);
                            oracle.remove(key);
                        }
                    }
                }
                lethe.write_batch(lethe_batch).unwrap();
                baseline.tree_mut().write_batch(baseline_batch).unwrap();
            }
            Operation::SnapshotRead { key } => {
                // a snapshot taken now must agree with the oracle frozen now
                let snapshot = lethe.capture_snapshot();
                let expected = oracle.get(key).map(|(_, v)| v.clone());
                assert_eq!(
                    snapshot.get(*key).unwrap().map(|b| b.to_vec()),
                    expected,
                    "snapshot read disagrees with oracle on key {key}"
                );
            }
            Operation::TimeSeriesAppend { series, start_tick, samples } => {
                let block = lethe::workload::timeseries::encode_block(*start_tick, samples);
                let key = lethe::workload::timeseries::encode_key(*start_tick, *series);
                lethe.put(key, *start_tick, block.clone()).unwrap();
                baseline.put(key, *start_tick, block.clone()).unwrap();
                oracle.insert(key, (*start_tick, block));
            }
        }
    }

    lethe.persist().unwrap();
    baseline.persist().unwrap();

    // final audit over every key the oracle has ever seen plus some misses
    for key in oracle.keys().copied().collect::<Vec<_>>() {
        let expected = oracle.get(&key).map(|(_, v)| v.clone());
        assert_eq!(lethe.get(key).unwrap().map(|b| b.to_vec()), expected, "final lethe key {key}");
        assert_eq!(
            baseline.get(key).unwrap().map(|b| b.to_vec()),
            expected,
            "final baseline key {key}"
        );
    }
    // full range scan agrees with the oracle's live key set
    let all_live: Vec<u64> = oracle.keys().copied().collect();
    let lethe_live: Vec<u64> =
        lethe.range(0, u64::MAX).unwrap().into_iter().map(|(k, _)| k).collect();
    assert_eq!(lethe_live, all_live, "lethe full scan disagrees with oracle");
}

#[test]
fn mixed_workload_matches_oracle_classic_layout() {
    let spec = WorkloadSpec {
        seed: 1,
        preload_keys: 500,
        operations: 3_000,
        key_space: 2_000,
        value_size: 48,
        update_fraction: 0.45,
        point_lookup_fraction: 0.30,
        empty_lookup_fraction: 0.05,
        point_delete_fraction: 0.10,
        range_delete_fraction: 0.02,
        range_lookup_fraction: 0.05,
        secondary_delete_fraction: 0.03,
        secondary_delete_selectivity: 0.02,
        ..Default::default()
    };
    run_against_oracle(spec, 1);
}

#[test]
fn mixed_workload_matches_oracle_kiwi_layout() {
    let spec = WorkloadSpec {
        seed: 2,
        preload_keys: 800,
        operations: 3_000,
        key_space: 3_000,
        value_size: 32,
        update_fraction: 0.36,
        batch_fraction: 0.04,
        batch_size: 5,
        point_lookup_fraction: 0.30,
        snapshot_fraction: 0.03,
        empty_lookup_fraction: 0.05,
        point_delete_fraction: 0.10,
        range_delete_fraction: 0.02,
        range_lookup_fraction: 0.05,
        streaming_range_fraction: 0.02,
        streaming_range_limit: 25,
        secondary_delete_fraction: 0.03,
        secondary_delete_selectivity: 0.05,
        ..Default::default()
    };
    run_against_oracle(spec, 4);
}

#[test]
fn zipfian_update_heavy_workload_matches_oracle() {
    let spec = WorkloadSpec {
        seed: 3,
        preload_keys: 300,
        operations: 4_000,
        key_space: 1_000,
        value_size: 24,
        update_fraction: 0.60,
        point_lookup_fraction: 0.25,
        empty_lookup_fraction: 0.0,
        point_delete_fraction: 0.12,
        range_delete_fraction: 0.0,
        range_lookup_fraction: 0.03,
        secondary_delete_fraction: 0.0,
        distribution: lethe::workload::KeyDistribution::Zipfian { theta: 0.9 },
        ..Default::default()
    };
    run_against_oracle(spec, 2);
}

#[test]
fn delete_persistence_is_honoured_under_continuous_ingestion() {
    let mut db = LetheBuilder::new()
        .with_config(small_config())
        .delete_persistence_threshold_secs(1.0)
        .ingestion_rate(10_000)
        .build()
        .unwrap();
    // insert, delete a slice, then keep ingesting for several thresholds of
    // logical time
    for k in 0..2_000u64 {
        db.put(k, k, vec![1u8; 24]).unwrap();
    }
    for k in (0..2_000u64).step_by(3) {
        db.delete(k).unwrap();
    }
    for k in 10_000..40_000u64 {
        db.put(k, k, vec![1u8; 24]).unwrap();
    }
    db.persist().unwrap();
    let dth = db.config().delete_persistence_threshold.unwrap();
    let snap = db.snapshot_contents().unwrap();
    for (age, count) in &snap.tombstone_file_ages {
        assert!(
            age <= &dth,
            "{count} tombstones live in a file older ({age} µs) than Dth ({dth} µs)"
        );
    }
    // deleted keys stay deleted, surviving keys stay readable
    assert_eq!(db.get(0).unwrap(), None);
    assert_eq!(db.get(3).unwrap(), None);
    assert!(db.get(1).unwrap().is_some());
}

/// The tension between FADE's delete-persistence promise and a held MVCC
/// snapshot: while a snapshot can still read deleted data, expired
/// tombstones must NOT be persistently dropped (the snapshot keeps its
/// view), the deferral must be counted, and the delete-persistence
/// accounting must keep reporting the tombstones as unpersisted — never
/// claiming a delete completed under a pin. Once the snapshot releases,
/// one maintenance pass restores the quiesce invariant: no tombstone file
/// older than `D_th`.
#[test]
fn held_snapshot_defers_tombstone_gc_but_never_fakes_persistence() {
    let dth_secs = 1.0;
    let db = ShardedLetheBuilder::new()
        .shards(1)
        .buffer(8, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(dth_secs)
        .build()
        .unwrap();
    for k in 0..600u64 {
        db.put(k, k, vec![1u8; 24]).unwrap();
    }
    db.persist().unwrap();

    let snapshot = db.snapshot();
    for k in (0..600u64).step_by(3) {
        db.delete(k).unwrap();
    }
    // keep ingesting so compactions (which would normally drop expired
    // tombstones at the bottom level) actually run under the pin
    for k in 10_000..12_000u64 {
        db.put(k, k, vec![1u8; 24]).unwrap();
    }
    db.persist().unwrap();
    // logical time sails past D_th with the snapshot still held
    db.clock().advance_secs(dth_secs * 5.0);
    db.maintain().unwrap();

    let stats = db.stats();
    assert!(
        stats.tombstone_gc_delayed > 0,
        "no tombstone-GC deferral was recorded while a snapshot was pinned"
    );
    // the snapshot still reads the pre-delete state
    assert!(snapshot.get(0).unwrap().is_some(), "snapshot lost key 0 to tombstone GC");
    assert!(snapshot.get(3).unwrap().is_some(), "snapshot lost key 3 to tombstone GC");
    // the accounting keeps reporting the expired tombstones as unpersisted
    // (files older than D_th still hold them) instead of claiming the
    // deletes persisted while the snapshot could read the deleted data
    let dth = (dth_secs * 1_000_000.0) as u64;
    let contents = db.snapshot_contents().unwrap();
    assert!(
        contents.tombstone_file_ages.iter().any(|(age, _)| *age > dth),
        "pinned tombstones vanished from the delete-persistence accounting: {:?}",
        contents.tombstone_file_ages
    );
    // gating GC never gates the delete itself: live reads see the deletes
    assert_eq!(db.get(0).unwrap(), None);
    assert!(db.get(1).unwrap().is_some());

    // release the pin: the next maintenance pass restores the quiesce
    // invariant — no file anywhere still holds a tombstone older than D_th
    drop(snapshot);
    db.maintain().unwrap();
    let contents = db.snapshot_contents().unwrap();
    for (age, count) in &contents.tombstone_file_ages {
        assert!(
            age <= &dth,
            "{count} tombstones still live in a file older ({age} µs) than Dth ({dth} µs) \
             after the snapshot released"
        );
    }
    assert_eq!(db.get(0).unwrap(), None);
    assert!(db.get(1).unwrap().is_some());
}

#[test]
fn baseline_without_threshold_retains_old_tombstones() {
    // the state of the art gives no guarantee: with a mostly-static tree the
    // tombstones linger well past any would-be threshold
    let mut baseline = Baseline::new(BaselineKind::RocksDbLike, small_config()).unwrap();
    for k in 0..2_000u64 {
        baseline.put(k, k, vec![1u8; 24]).unwrap();
    }
    for k in (0..2_000u64).step_by(3) {
        baseline.delete(k).unwrap();
    }
    baseline.persist().unwrap();
    // equivalent logical time passes without substantive new ingestion
    baseline.tree().clock().advance_secs(30.0);
    baseline.persist().unwrap();
    let snap = baseline.tree().snapshot_contents().unwrap();
    assert!(
        snap.tombstones > 0,
        "the baseline should still be holding tombstones after 30 s of idle time"
    );
}

#[test]
fn secondary_range_delete_is_equivalent_to_full_compaction_result() {
    // Lethe's page-drop path and the baseline's full-tree compaction must
    // leave behind exactly the same logical database
    let mut lethe = lethe_engine(8);
    let mut baseline = Baseline::new(BaselineKind::RocksDbLike, small_config()).unwrap();
    for k in 0..4_000u64 {
        let d = (k * 7919) % 4_000;
        lethe.put(k, d, vec![2u8; 32]).unwrap();
        baseline.put(k, d, vec![2u8; 32]).unwrap();
    }
    lethe.persist().unwrap();
    baseline.persist().unwrap();
    lethe.delete_where_delete_key_in(1_000, 3_000).unwrap();
    baseline.delete_where_delete_key_in(1_000, 3_000).unwrap();
    for k in 0..4_000u64 {
        let gone = (1_000..3_000).contains(&((k * 7919) % 4_000));
        assert_eq!(lethe.get(k).unwrap().is_none(), gone, "lethe key {k}");
        assert_eq!(baseline.get(k).unwrap().is_none(), gone, "baseline key {k}");
    }
    // but Lethe must have done it with page drops, not a full rewrite
    assert!(lethe.stats().secondary_delete.full_page_drops > 0);
    assert_eq!(lethe.stats().full_tree_compactions, 0);
    assert!(baseline.tree().stats().full_tree_compactions >= 1);
}
