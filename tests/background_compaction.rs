//! Concurrency stress tests for background FADE compaction with snapshot
//! reads.
//!
//! N writer threads and M reader threads run against a live [`ShardedLethe`]
//! while the per-shard background workers flush and compact underneath them,
//! checked against a lock-free oracle:
//!
//! * every key is owned by exactly one writer, which publishes two atomic
//!   watermarks per key — `issued` (stored *before* the put) and `acked`
//!   (stored *after* the put returns). Values encode `(key, version)`.
//! * a read of key `k` must return a version `v` with
//!   `acked_before_read ≤ v ≤ issued_after_read`: the lower bound is
//!   linearizability (an acknowledged write is visible to every later read),
//!   the upper bound rejects values from the future or thin air.
//! * within one reader thread, versions per key never go backwards.
//! * a range scan must contain every key acknowledged before the scan
//!   started, in strictly increasing key order — a half-committed version
//!   install (input files removed but replacements not yet visible) would
//!   surface here as a vanished key or a torn ordering.
//!
//! The runs are seeded and sized deterministically for CI; set
//! `LETHE_STRESS_ROUNDS` to scale the writer workload up for longer soaks.

use lethe::{ShardedLethe, ShardedLetheBuilder, WriteBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const WRITERS: usize = 4;
const READERS: usize = 3;
const KEYS_PER_WRITER: u64 = 300;
const KEYS: u64 = WRITERS as u64 * KEYS_PER_WRITER;
/// Churn keys (deleted/range-deleted/secondary-deleted at random) live in a
/// disjoint region so the versioned invariants above stay exact.
const CHURN_BASE: u64 = 1 << 20;
const CHURN_KEYS: u64 = 512;

fn rounds() -> u64 {
    std::env::var("LETHE_STRESS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(6)
}

fn store_with_cache(block_cache_bytes: usize) -> ShardedLethe {
    // tiny buffers: flushes and compactions run constantly under the load
    ShardedLetheBuilder::new()
        .shards(4)
        .buffer(8, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(2.0)
        .block_cache_bytes(block_cache_bytes)
        .warm_block_cache_on_write(block_cache_bytes > 0)
        .build()
        .unwrap()
}

fn store() -> ShardedLethe {
    store_with_cache(0)
}

fn encode(key: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode(key: u64, raw: &[u8]) -> u64 {
    assert_eq!(raw.len(), 16, "value for key {key} has the wrong shape");
    let k = u64::from_le_bytes(raw[..8].try_into().unwrap());
    assert_eq!(k, key, "value embeds key {k} but was returned for key {key}");
    u64::from_le_bytes(raw[8..].try_into().unwrap())
}

#[test]
fn writers_and_readers_with_live_oracle() {
    oracle_stress(store());
}

/// The same harness reading through a block cache so small (a few pages
/// across 4 shards) that every flush and compaction forces evictions while
/// the churn thread retires pages via deletes of every flavour: any missed
/// `drop_page`/deferred-reclamation invalidation — a stale page served from
/// cache — fails the oracle's version bounds.
#[test]
fn writers_and_readers_with_live_oracle_eviction_heavy_cache() {
    let db = store_with_cache(4096);
    oracle_stress(db);
}

fn oracle_stress(db: ShardedLethe) {
    let issued: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let acked: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);
    let rounds = rounds();

    std::thread::scope(|s| {
        let db = &db;
        let issued = &issued;
        let acked = &acked;
        let stop = &stop;

        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            writer_handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xA11CE + w as u64);
                let base = w as u64 * KEYS_PER_WRITER;
                for version in 1..=rounds {
                    // visit the slice in a fresh random order every round
                    let mut keys: Vec<u64> = (base..base + KEYS_PER_WRITER).collect();
                    for i in (1..keys.len()).rev() {
                        keys.swap(i, rng.gen_range(0..i + 1));
                    }
                    for k in keys {
                        issued[k as usize].store(version, Ordering::SeqCst);
                        db.put(k, k, encode(k, version)).unwrap();
                        acked[k as usize].store(version, Ordering::SeqCst);
                    }
                }
            }));
        }

        for r in 0..READERS {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEE + r as u64);
                let mut last_seen = vec![0u64; KEYS as usize];
                while !stop.load(Ordering::Relaxed) {
                    // point lookups with linearizability bounds
                    for _ in 0..64 {
                        let k = rng.gen_range(0..KEYS);
                        let lo = acked[k as usize].load(Ordering::SeqCst);
                        let got = db.get(k).unwrap();
                        let hi = issued[k as usize].load(Ordering::SeqCst);
                        match got {
                            Some(raw) => {
                                let v = decode(k, &raw);
                                assert!(
                                    v >= lo && v <= hi,
                                    "key {k}: read version {v} outside [{lo}, {hi}]"
                                );
                                assert!(
                                    v >= last_seen[k as usize],
                                    "key {k}: version went backwards ({} then {v})",
                                    last_seen[k as usize]
                                );
                                last_seen[k as usize] = v;
                            }
                            None => assert_eq!(
                                lo, 0,
                                "key {k}: acknowledged version {lo} vanished"
                            ),
                        }
                    }
                    // a range scan: acknowledged keys may never vanish and
                    // the result must be strictly sorted (a half-committed
                    // version would tear exactly these properties)
                    let a = rng.gen_range(0..KEYS - 64);
                    let b = a + rng.gen_range(16..64);
                    let floor: Vec<u64> =
                        (a..b).map(|k| acked[k as usize].load(Ordering::SeqCst)).collect();
                    let scan = db.range(a, b).unwrap();
                    assert!(
                        scan.windows(2).all(|w| w[0].0 < w[1].0),
                        "range scan not strictly sorted"
                    );
                    for (k, raw) in &scan {
                        let v = decode(*k, raw);
                        let lo = floor[(*k - a) as usize];
                        assert!(v >= lo, "key {k}: scanned version {v} below acked floor {lo}");
                    }
                    let present: Vec<u64> = scan.iter().map(|(k, _)| *k).collect();
                    for k in a..b {
                        if floor[(k - a) as usize] > 0 {
                            assert!(
                                present.binary_search(&k).is_ok(),
                                "key {k} acknowledged before the scan but missing from it"
                            );
                        }
                    }
                }
            });
        }

        // churn + maintenance thread: deletes of every flavour plus clock
        // advances so FADE's TTL triggers fire while readers are in flight
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE);
            while !stop.load(Ordering::Relaxed) {
                let k = CHURN_BASE + rng.gen_range(0..CHURN_KEYS);
                db.put(k, k, encode(k, 1)).unwrap();
                match rng.gen_range(0..4u32) {
                    0 => {
                        db.delete(k).unwrap();
                    }
                    1 => {
                        let s0 = CHURN_BASE + rng.gen_range(0..CHURN_KEYS / 2);
                        db.delete_range(s0, s0 + rng.gen_range(1..CHURN_KEYS / 4)).unwrap();
                    }
                    2 => {
                        // secondary delete confined to the churn region's
                        // delete keys; exercises the worker pause protocol
                        let s0 = CHURN_BASE + rng.gen_range(0..CHURN_KEYS / 2);
                        db.delete_where_delete_key_in(s0, s0 + rng.gen_range(1..CHURN_KEYS / 4))
                            .unwrap();
                    }
                    _ => {
                        // let logical time pass so TTL-driven compactions fire
                        db.clock().advance_secs(0.5);
                        db.maintain().unwrap();
                    }
                }
            }
        });

        for h in writer_handles {
            h.join().expect("writer thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // quiesce and verify the end state exactly against the oracle
    db.persist().unwrap();
    for k in 0..KEYS {
        let want = acked[k as usize].load(Ordering::SeqCst);
        let got = db.get(k).unwrap().expect("key written by a joined writer");
        assert_eq!(decode(k, &got), want, "key {k} final version");
    }
    let full: Vec<u64> = db.range(0, KEYS).unwrap().into_iter().map(|(k, _)| k).collect();
    assert_eq!(full, (0..KEYS).collect::<Vec<u64>>(), "final scan must hold every key");

    // the background machinery must actually have run
    let stats = db.stats();
    assert!(stats.flushes > 0, "no background flush ever ran");
    assert!(stats.compactions > 0, "no background compaction ever ran");
    let installs: u64 =
        (0..db.shard_count()).map(|i| db.with_shard(i, |s| s.tree().versions().installs())).sum();
    assert!(installs > 0, "no version was ever installed");

    // when running with a cache, it must actually have been exercised: the
    // tiny budget forces constant eviction and the retire paths invalidate
    if let Some(snap) = db.cache_snapshot() {
        assert!(snap.hits > 0, "the cache never served a hit: {snap:?}");
        assert!(snap.evictions > 0, "a few-page cache must evict under churn: {snap:?}");
        assert!(
            snap.bytes_resident <= snap.capacity_bytes,
            "residency exceeded the configured budget: {snap:?}"
        );
    }
}

// ------------------------------------------------- group-commit batch stress

/// Size of one atomic batch in the stress harness: each batch rewrites one
/// whole *group* of keys to a single new version.
const BATCH: u64 = 8;
const GROUPS_PER_WRITER: u64 = 40;
const BATCH_WRITERS: usize = 4;
const BATCH_KEYS: u64 = BATCH_WRITERS as u64 * GROUPS_PER_WRITER * BATCH;

/// Slot `slot` of group `group` owned by `writer`. The layout stripes
/// writers across adjacent sort keys, so concurrent batches from different
/// writers always overlap in key-space (every scan window crosses all of
/// them) even though each group has exactly one owner.
fn batch_key(writer: usize, group: u64, slot: u64) -> u64 {
    (group * BATCH + slot) * BATCH_WRITERS as u64 + writer as u64
}

/// Global group index of a key (indexes the `issued`/`acked` watermarks).
fn batch_gid(key: u64) -> usize {
    let writer = (key % BATCH_WRITERS as u64) as usize;
    let group = (key / BATCH_WRITERS as u64) / BATCH;
    writer * GROUPS_PER_WRITER as usize + group as usize
}

/// N writer threads issuing overlapping atomic batches against a live store
/// (flushes/compactions churning underneath), readers asserting
/// **linearizable per-batch watermarks**: each group publishes `issued`
/// (stored before the batch is submitted) and `acked` (stored after it
/// returns), and every read of any key in the group must observe a version
/// in `[acked_before_read, issued_after_read]` — the lower bound is batch
/// linearizability (an acknowledged batch is fully visible: a half-applied
/// batch would strand a key below it), the upper bound rejects speculative
/// application of a batch that was never submitted. Versions per key never
/// go backwards within one reader.
///
/// With `strict_scan_atomicity` (single-shard stores, where a scan pins one
/// snapshot) every scan must additionally see each group *uniformly*: two
/// different versions of one batch group inside a single pinned scan is a
/// torn batch.
fn batch_oracle_stress(db: ShardedLethe, strict_scan_atomicity: bool) {
    let groups = BATCH_WRITERS * GROUPS_PER_WRITER as usize;
    let issued: Vec<AtomicU64> = (0..groups).map(|_| AtomicU64::new(0)).collect();
    let acked: Vec<AtomicU64> = (0..groups).map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);
    let rounds = rounds();

    std::thread::scope(|s| {
        let db = &db;
        let issued = &issued;
        let acked = &acked;
        let stop = &stop;

        let mut writer_handles = Vec::new();
        for w in 0..BATCH_WRITERS {
            writer_handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBA7C4 + w as u64);
                for version in 1..=rounds {
                    let mut order: Vec<u64> = (0..GROUPS_PER_WRITER).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.gen_range(0..i + 1));
                    }
                    for g in order {
                        let gid = w * GROUPS_PER_WRITER as usize + g as usize;
                        issued[gid].store(version, Ordering::SeqCst);
                        let mut batch = WriteBatch::new();
                        for j in 0..BATCH {
                            let k = batch_key(w, g, j);
                            batch.put(k, k, encode(k, version));
                        }
                        db.write(batch).unwrap();
                        acked[gid].store(version, Ordering::SeqCst);
                    }
                }
            }));
        }

        for r in 0..READERS {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xFEED + r as u64);
                let mut last_seen = vec![0u64; BATCH_KEYS as usize];
                while !stop.load(Ordering::Relaxed) {
                    // point lookups against the per-batch watermark bounds
                    for _ in 0..64 {
                        let k = rng.gen_range(0..BATCH_KEYS);
                        let gid = batch_gid(k);
                        let lo = acked[gid].load(Ordering::SeqCst);
                        let got = db.get(k).unwrap();
                        let hi = issued[gid].load(Ordering::SeqCst);
                        match got {
                            Some(raw) => {
                                let v = decode(k, &raw);
                                assert!(
                                    v >= lo && v <= hi,
                                    "key {k}: version {v} outside its batch's \
                                     watermark window [{lo}, {hi}]"
                                );
                                assert!(
                                    v >= last_seen[k as usize],
                                    "key {k}: version went backwards ({} then {v})",
                                    last_seen[k as usize]
                                );
                                last_seen[k as usize] = v;
                            }
                            None => assert_eq!(
                                lo, 0,
                                "key {k}: its batch was acknowledged at version {lo} \
                                 but the key vanished"
                            ),
                        }
                    }
                    // a streaming scan across many writers' groups: every key
                    // acknowledged before the scan must be present, versions
                    // respect the acked floor, and (single-shard) each group
                    // is uniformly versioned within the pinned snapshot
                    let a = rng.gen_range(0..BATCH_KEYS - 256);
                    let b = a + rng.gen_range(64..256);
                    let floor: Vec<u64> =
                        (a..b).map(|k| acked[batch_gid(k)].load(Ordering::SeqCst)).collect();
                    let mut scan = Vec::new();
                    for item in db.iter_range(a, b) {
                        scan.push(item.unwrap());
                    }
                    assert!(
                        scan.windows(2).all(|w| w[0].0 < w[1].0),
                        "range scan not strictly sorted"
                    );
                    let mut group_version: std::collections::BTreeMap<usize, u64> =
                        std::collections::BTreeMap::new();
                    for (k, raw) in &scan {
                        let v = decode(*k, raw);
                        let lo = floor[(*k - a) as usize];
                        assert!(v >= lo, "key {k}: scanned version {v} below acked floor {lo}");
                        if strict_scan_atomicity {
                            let prev = *group_version.entry(batch_gid(*k)).or_insert(v);
                            assert_eq!(
                                prev,
                                v,
                                "torn batch: group {} shows versions {prev} and {v} \
                                 inside one pinned scan",
                                batch_gid(*k)
                            );
                        }
                    }
                    let present: Vec<u64> = scan.iter().map(|(k, _)| *k).collect();
                    for k in a..b {
                        if floor[(k - a) as usize] > 0 {
                            assert!(
                                present.binary_search(&k).is_ok(),
                                "key {k} acknowledged before the scan but missing from it"
                            );
                        }
                    }
                }
            });
        }

        // churn thread: atomic batches of puts+deletes in a disjoint region,
        // range/secondary deletes and TTL maintenance, all overlapping the
        // measured batches in the group-commit queues
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x0DDB);
            while !stop.load(Ordering::Relaxed) {
                let mut batch = WriteBatch::new();
                for _ in 0..6 {
                    let k = CHURN_BASE + rng.gen_range(0..CHURN_KEYS);
                    batch.put(k, k, encode(k, 1));
                }
                batch.delete(CHURN_BASE + rng.gen_range(0..CHURN_KEYS));
                db.write(batch).unwrap();
                match rng.gen_range(0..4u32) {
                    0 => {
                        let s0 = CHURN_BASE + rng.gen_range(0..CHURN_KEYS / 2);
                        db.delete_range(s0, s0 + rng.gen_range(1..CHURN_KEYS / 4)).unwrap();
                    }
                    1 => {
                        // a structural batch: a secondary delete confined to
                        // the churn region rides along with fresh puts
                        let s0 = CHURN_BASE + rng.gen_range(0..CHURN_KEYS / 2);
                        let mut batch = WriteBatch::new();
                        let k = CHURN_BASE + rng.gen_range(0..CHURN_KEYS);
                        batch.put(k, k, encode(k, 1));
                        batch.secondary_range_delete(s0, s0 + rng.gen_range(1..CHURN_KEYS / 4));
                        db.write(batch).unwrap();
                    }
                    2 => {
                        db.clock().advance_secs(0.5);
                        db.maintain().unwrap();
                    }
                    _ => {}
                }
            }
        });

        for h in writer_handles {
            h.join().expect("batch writer thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // quiesce and verify the end state exactly: every group fully at its
    // acknowledged version
    db.persist().unwrap();
    for k in 0..BATCH_KEYS {
        let want = acked[batch_gid(k)].load(Ordering::SeqCst);
        let got = db.get(k).unwrap().expect("key written by a joined batch writer");
        assert_eq!(decode(k, &got), want, "key {k} final version");
    }
    let full: Vec<u64> = db.range(0, BATCH_KEYS).unwrap().into_iter().map(|(k, _)| k).collect();
    assert_eq!(full, (0..BATCH_KEYS).collect::<Vec<u64>>(), "final scan must hold every key");
    let stats = db.stats();
    assert!(stats.flushes > 0, "no background flush ever ran");
    assert!(stats.compactions > 0, "no background compaction ever ran");
}

/// Overlapping batches across a 4-shard store: per-batch watermark bounds
/// and monotonicity (multi-shard scans are the documented weakly-consistent
/// fan-out, so strict in-scan uniformity is asserted by the single-shard
/// variant below).
#[test]
fn concurrent_batch_writers_with_live_oracle() {
    batch_oracle_stress(store(), false);
}

/// The same harness against a **durable single-shard** store: every batch
/// rides the group-commit WAL (leader fsync, waiter wakeup) and every scan
/// pins one snapshot, so in-scan group uniformity is asserted strictly
/// (fsync coalescing itself is asserted by the shard unit tests and the
/// `group_commit` bench).
#[test]
fn concurrent_batch_writers_durable_single_shard() {
    let dir = std::env::temp_dir()
        .join(format!("lethe-batch-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = ShardedLetheBuilder::new()
        .shards(1)
        .buffer(8, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(2.0)
        .open(&dir)
        .unwrap();
    batch_oracle_stress(db, true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Readers hammering a store whose only mutations are *rewrites* (forced
/// full-tree compactions and no-op secondary deletes) must observe the exact
/// same contents on every single read: any torn version install — files
/// removed before their replacements became visible, or a reader seeing a
/// mixture of two versions — shows up as a missing key, a duplicate, or a
/// wrong value.
#[test]
fn rewrites_are_invisible_to_snapshot_readers() {
    const N: u64 = 600;
    let db = ShardedLetheBuilder::new()
        .shards(1)
        .buffer(8, 4, 64)
        .size_ratio(3)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(30.0)
        .build()
        .unwrap();
    for k in 0..N {
        db.put(k, k, encode(k, 7)).unwrap();
    }
    db.persist().unwrap();
    let installs_before = db.with_shard(0, |s| s.tree().versions().installs());

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        for r in 0..4 {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD00D + r as u64);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..N);
                    let got = db.get(k).unwrap().expect("preloaded key vanished mid-rewrite");
                    assert_eq!(decode(k, &got), 7, "key {k} value torn by a rewrite");
                    let scan = db.range(0, N).unwrap();
                    assert_eq!(scan.len(), N as usize, "full scan lost keys mid-rewrite");
                    assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
                }
            });
        }
        // rewrite the whole tree over and over underneath the readers
        s.spawn(move || {
            for _ in 0..12 {
                db.with_shard(0, |shard| shard.tree_mut().force_full_compaction()).unwrap();
                // a secondary delete over an empty delete-key range walks the
                // whole pause/commit path without changing contents
                db.delete_where_delete_key_in(N + 1, N + 2).unwrap();
                db.maintain().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    let installs_after = db.with_shard(0, |s| s.tree().versions().installs());
    assert!(
        installs_after > installs_before,
        "the rewrite loop must actually install new versions"
    );
    for k in 0..N {
        assert_eq!(decode(k, &db.get(k).unwrap().unwrap()), 7, "key {k} after the rewrite storm");
    }
}

// ---------------------------------------------------- snapshot churn stress

/// Retired files still awaiting page reclamation, summed across shards.
fn garbage_backlog(db: &ShardedLethe) -> usize {
    (0..db.shard_count()).map(|i| db.with_shard(i, |s| s.tree().versions().garbage_len())).sum()
}

/// Snapshot readers churn — open a point-in-time view, read through it, drop
/// it — alongside the writer/compaction storm, and deliberately *hold* views
/// across whole compaction cycles:
///
/// * a key acknowledged before a snapshot was taken may never vanish from
///   it, and its version must sit inside the snapshot's
///   `[acked_before, issued_after]` watermark window;
/// * re-reading through a held snapshot after the tree has been rewritten
///   underneath it must return the exact same bytes — reclaiming a pinned
///   page (use-after-reclaim) would surface here as an error, a vanished
///   key, or a torn value;
/// * the page-reclamation backlog that builds up behind a pin is bounded:
///   it must drain to zero once every snapshot handle is released.
#[test]
fn snapshot_churn_under_background_compaction() {
    let db = store();
    // watermarks start at 1: the preload below acknowledges every key, so
    // no snapshot taken afterwards may ever miss one
    let issued: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(1)).collect();
    let acked: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(1)).collect();
    let stop = AtomicBool::new(false);
    let rounds = rounds();

    // preload every key at version 1, pin the image, then rewrite the whole
    // tree underneath the pin: every preloaded table is retired while still
    // pinned, so reclamation must defer — not free — its pages
    for k in 0..KEYS {
        db.put(k, k, encode(k, 1)).unwrap();
    }
    db.persist().unwrap();
    let preload = db.snapshot();
    for i in 0..db.shard_count() {
        db.with_shard(i, |s| s.tree_mut().force_full_compaction()).unwrap();
    }
    assert!(
        garbage_backlog(&db) > 0,
        "rewriting a pinned tree must defer page reclamation, not skip it"
    );

    std::thread::scope(|s| {
        let db = &db;
        let issued = &issued;
        let acked = &acked;
        let stop = &stop;

        // the same seeded writer storm as the point-oracle harness, shifted
        // up one version so the preload stays distinguishable
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            writer_handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5A4B + w as u64);
                let base = w as u64 * KEYS_PER_WRITER;
                for version in 2..=rounds + 1 {
                    let mut keys: Vec<u64> = (base..base + KEYS_PER_WRITER).collect();
                    for i in (1..keys.len()).rev() {
                        keys.swap(i, rng.gen_range(0..i + 1));
                    }
                    for k in keys {
                        issued[k as usize].store(version, Ordering::SeqCst);
                        db.put(k, k, encode(k, version)).unwrap();
                        acked[k as usize].store(version, Ordering::SeqCst);
                    }
                }
            }));
        }

        // snapshot-churn readers: open a view, bound every read by the
        // watermarks of the instant it was taken, re-scan it for stability,
        // and keep every fourth view alive across later iterations (and the
        // compactions they contain) before re-verifying its frozen contents
        for r in 0..READERS {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x54A9 + r as u64);
                let mut held: Option<(lethe::Snapshot, Vec<(u64, u64)>)> = None;
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let keys: Vec<u64> = (0..48).map(|_| rng.gen_range(0..KEYS)).collect();
                    let lo: Vec<u64> =
                        keys.iter().map(|&k| acked[k as usize].load(Ordering::SeqCst)).collect();
                    let snap = db.snapshot();
                    let hi: Vec<u64> =
                        keys.iter().map(|&k| issued[k as usize].load(Ordering::SeqCst)).collect();
                    let mut observed = Vec::with_capacity(keys.len());
                    for (i, &k) in keys.iter().enumerate() {
                        let raw = snap.get(k).unwrap().unwrap_or_else(|| {
                            panic!("key {k} acknowledged before the snapshot but missing from it")
                        });
                        let v = decode(k, &raw);
                        assert!(
                            v >= lo[i] && v <= hi[i],
                            "key {k}: snapshot version {v} outside its window [{}, {}]",
                            lo[i],
                            hi[i]
                        );
                        observed.push((k, v));
                    }
                    // a snapshot scan holds every preloaded key of the window
                    // and never changes between passes over the same handle
                    let a = rng.gen_range(0..KEYS - 64);
                    let b = a + rng.gen_range(16..64);
                    let scan: Vec<(u64, Vec<u8>)> = snap
                        .range(a, b)
                        .unwrap()
                        .into_iter()
                        .map(|(k, v)| (k, v.to_vec()))
                        .collect();
                    let scanned: Vec<u64> = scan.iter().map(|(k, _)| *k).collect();
                    assert_eq!(scanned, (a..b).collect::<Vec<u64>>(), "snapshot scan lost keys");
                    // a view held across whole compaction cycles stays frozen
                    if let Some((old, old_observed)) = &held {
                        for (k, v) in old_observed {
                            let raw = old
                                .get(*k)
                                .unwrap()
                                .unwrap_or_else(|| panic!("held snapshot lost key {k}"));
                            assert_eq!(
                                decode(*k, &raw),
                                *v,
                                "held snapshot changed its answer for key {k}"
                            );
                        }
                    }
                    let rescan: Vec<(u64, Vec<u8>)> = snap
                        .iter_range(a, b)
                        .unwrap()
                        .map(|item| item.map(|(k, v)| (k, v.to_vec())))
                        .collect::<Result<_, _>>()
                        .unwrap();
                    assert_eq!(scan, rescan, "one snapshot, two scans, different answers");
                    if iter.is_multiple_of(4) {
                        held = Some((snap, observed));
                    }
                    iter += 1;
                }
            });
        }

        // churn + maintenance: deletes of every flavour plus clock advances,
        // so TTL-driven (and snapshot-gated) compaction paths run hot
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x6A4B);
            while !stop.load(Ordering::Relaxed) {
                let k = CHURN_BASE + rng.gen_range(0..CHURN_KEYS);
                db.put(k, k, encode(k, 1)).unwrap();
                match rng.gen_range(0..4u32) {
                    0 => {
                        db.delete(k).unwrap();
                    }
                    1 => {
                        let s0 = CHURN_BASE + rng.gen_range(0..CHURN_KEYS / 2);
                        db.delete_range(s0, s0 + rng.gen_range(1..CHURN_KEYS / 4)).unwrap();
                    }
                    2 => {
                        let s0 = CHURN_BASE + rng.gen_range(0..CHURN_KEYS / 2);
                        db.delete_where_delete_key_in(s0, s0 + rng.gen_range(1..CHURN_KEYS / 4))
                            .unwrap();
                    }
                    _ => {
                        db.clock().advance_secs(0.5);
                        db.maintain().unwrap();
                    }
                }
            }
        });

        for h in writer_handles {
            h.join().expect("writer thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // the long-held snapshot survived every compaction cycle of the run: it
    // still serves the exact preload image while the live store moved on
    db.persist().unwrap();
    for k in 0..KEYS {
        let raw = preload.get(k).unwrap().expect("preload snapshot lost a key");
        assert_eq!(decode(k, &raw), 1, "preload snapshot drifted for key {k}");
        let live = db.get(k).unwrap().expect("live key vanished after the run");
        assert_eq!(
            decode(k, &live),
            acked[k as usize].load(Ordering::SeqCst),
            "key {k} final live version"
        );
    }
    assert_eq!(db.live_snapshots(), 1, "only the preload pin should remain");
    assert!(garbage_backlog(&db) > 0, "the preload pin must still be deferring reclamation");

    // release the last pin: the backlog must drain completely — a bounded
    // debt, not a leak. Releasing un-gates FADE's deferred TTL work, so
    // first drain the background workers to quiescence (each structural
    // commit sweeps, but a commit cannot free its own retirees — the
    // in-flight plan still pins them — so a final sweep follows the drain).
    drop(preload);
    assert_eq!(db.live_snapshots(), 0);
    db.maintain().unwrap();
    for i in 0..db.shard_count() {
        db.with_shard(i, |s| {
            let tree = s.tree();
            tree.versions().collect_garbage(tree.backend().as_ref());
        });
    }
    assert_eq!(garbage_backlog(&db), 0, "reclamation backlog must drain once pins release");

    let stats = db.stats();
    assert!(stats.flushes > 0, "no background flush ever ran");
    assert!(stats.compactions > 0, "no background compaction ever ran");
}
