//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the criterion API the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `BatchSize`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Every bench target compiles and runs under `cargo bench`,
//! printing a mean ns/iteration per benchmark; swapping the real dependency
//! back in is a one-line `Cargo.toml` change.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost across routine invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup batch.
    SmallInput,
    /// Large inputs: few routine calls per setup batch.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the bench closure.
pub struct Bencher {
    target: Duration,
    /// Mean nanoseconds per iteration measured by the last `iter*` call.
    elapsed_ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher { target, elapsed_ns_per_iter: f64::NAN, iters: 0 }
    }

    /// Times `routine` over repeated calls until the measurement target is
    /// reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.target && iters >= 10 {
                break;
            }
            if iters >= 10_000_000 {
                break;
            }
        }
        let total = start.elapsed();
        self.elapsed_ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` on inputs produced by `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // warm-up
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
            if (measured >= self.target && iters >= 5) || wall.elapsed() >= self.target * 20 {
                break;
            }
        }
        self.elapsed_ns_per_iter = measured.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for API parity; the stand-in's
    /// measurement loop is time-targeted, so this only scales the target).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // criterion's default is 100 samples; scale our time budget with the
        // requested sample count so `sample_size(10)` benches finish quickly
        let base = Criterion::DEFAULT_TARGET;
        self.criterion.target = base.mul_f64((n as f64 / 100.0).clamp(0.05, 2.0));
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut bench: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let mut b = Bencher::new(self.criterion.target);
        bench(&mut b);
        report(&full, &b);
        self
    }

    /// Ends the group (restores the default measurement target).
    pub fn finish(&mut self) {
        self.criterion.target = Criterion::DEFAULT_TARGET;
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { target: Self::DEFAULT_TARGET }
    }
}

impl Criterion {
    const DEFAULT_TARGET: Duration = Duration::from_millis(300);

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Registers and immediately runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut bench: F) -> &mut Self {
        let mut b = Bencher::new(self.target);
        bench(&mut b);
        report(name, &b);
        self
    }
}

fn report(name: &str, b: &Bencher) {
    if b.elapsed_ns_per_iter.is_nan() {
        println!("{name:<60} (no measurement)");
    } else if b.elapsed_ns_per_iter >= 1_000_000.0 {
        println!(
            "{name:<60} {:>12.3} ms/iter  ({} iters)",
            b.elapsed_ns_per_iter / 1_000_000.0,
            b.iters
        );
    } else if b.elapsed_ns_per_iter >= 1_000.0 {
        println!(
            "{name:<60} {:>12.3} µs/iter  ({} iters)",
            b.elapsed_ns_per_iter / 1_000.0,
            b.iters
        );
    } else {
        println!("{name:<60} {:>12.1} ns/iter  ({} iters)", b.elapsed_ns_per_iter, b.iters);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
