//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: [`Mutex`] and [`RwLock`]
//! with `parking_lot`'s non-poisoning `lock()`/`read()`/`write()` signatures
//! (a poisoned std lock — a panic while holding the guard — is treated as a
//! fatal bug and unwrapped into the inner guard, matching `parking_lot`'s
//! behaviour of simply not having poisoning).

#![deny(missing_docs)]

use std::fmt;

/// A mutual-exclusion lock with a non-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()` APIs.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
