//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io/proptest/)
//! property-testing crate.
//!
//! The build environment has no network access, so this crate reimplements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, ranges, tuples,
//!   [`strategy::Just`] and weighted unions (`prop_oneof!`),
//! * [`arbitrary::any`] for primitive types,
//! * [`collection`](strategy::collection)'s `vec`/`hash_set`/`btree_set`,
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support, and
//! * `prop_assert!`/`prop_assert_eq!`.
//!
//! Generation is deterministic (each case is seeded from the case index), so
//! failures are reproducible by construction. The one intentional omission is
//! *shrinking*: a failing case reports its inputs via the normal panic
//! message instead of a minimised counterexample. The sibling
//! `crates/bench/src/bin/fuzz_oracle.rs` binary provides greedy shrinking for
//! the engine-versus-oracle property where minimisation matters most.

#![deny(missing_docs)]

/// Re-exported so the [`proptest!`] macro can name the RNG from any crate.
pub use rand;

/// Strategy combinators: the core value-generation abstraction.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Weighted union of strategies; built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, strat) in &self.arms {
                if pick < *weight as u64 {
                    return strat.generate(rng);
                }
                pick -= *weight as u64;
            }
            self.arms.last().unwrap().1.generate(rng)
        }
    }

    /// Collection strategies (`vec`, `hash_set`, `btree_set`).
    pub mod collection {
        use super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::collections::{BTreeSet, HashSet};
        use std::hash::Hash;

        fn pick_len(size: &std::ops::Range<usize>, rng: &mut StdRng) -> usize {
            rng.gen_range(size.clone())
        }

        /// Generates `Vec`s of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = pick_len(&self.size, rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `HashSet`s of `element` values with a cardinality in
        /// `size` (best effort: bounded retries when the element domain is
        /// too small to reach the minimum).
        pub fn hash_set<S>(element: S, size: std::ops::Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, size }
        }

        /// Strategy returned by [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let target = pick_len(&self.size, rng);
                let mut out = HashSet::new();
                let mut tries = 0usize;
                while out.len() < target && tries < target * 20 + 100 {
                    out.insert(self.element.generate(rng));
                    tries += 1;
                }
                out
            }
        }

        /// Generates `BTreeSet`s of `element` values with a cardinality in
        /// `size` (best effort, like [`hash_set`]).
        pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        /// Strategy returned by [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let target = pick_len(&self.size, rng);
                let mut out = BTreeSet::new();
                let mut tries = 0usize;
                while out.len() < target && tries < target * 20 + 100 {
                    out.insert(self.element.generate(rng));
                    tries += 1;
                }
                out
            }
        }
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value over the type's full domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Test-runner configuration (`cases` is the only knob the stand-in honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API parity; the stand-in does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror of proptest's `prop::` module path.
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new_weighted(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure, like a plain
/// `assert!`; the stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` runs
/// `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
          $(#[$attr:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    // stable per-test seed: the case index mixed with the
                    // test name so sibling tests see different streams
                    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}
