//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few plain-data specs
//! but never serialises anything in-tree (no `serde_json` or similar), so the
//! derives expand to nothing. The import sites (`use serde::{Deserialize,
//! Serialize};`) compile unchanged against this crate; swapping the real
//! dependency back in is a one-line `Cargo.toml` change.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
