//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Provides the subset of the `rand` 0.8 API the workspace uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits and [`rngs::StdRng`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, which is all the workload generator and fuzzers require.
//! Sequences differ from the real crate's `StdRng` (ChaCha12), which is fine:
//! every consumer in this workspace only relies on *reproducibility*, never
//! on a specific stream.

#![deny(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::gen_range`] can sample from a `Range`.
pub trait SampleUniform: Copy {
    /// Converts to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the `u64` sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // multiply-shift bounded sampling (Lemire); bias is negligible for
        // the span sizes used here and the stream stays deterministic
        let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + v)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        let span = (hi - lo).saturating_add(1);
        let v = if span == 0 {
            rng.next_u64()
        } else {
            ((rng.next_u64() as u128 * span as u128) >> 64) as u64
        };
        T::from_u64(lo + v)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full domain (`u8`, `u64`,
    /// `f64` in `[0, 1)`, …).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
