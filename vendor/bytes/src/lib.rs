//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the small subset of the `bytes` API it actually uses:
//! [`Bytes`] (a cheaply cloneable, immutable byte buffer), [`BytesMut`] (a
//! growable builder), and the [`Buf`]/[`BufMut`] cursor traits. The types are
//! API-compatible with the real crate for every call site in the workspace,
//! so swapping the real dependency back in is a one-line `Cargo.toml` change.
//!
//! `Bytes` is backed by an `Arc<[u8]>` plus a `(start, end)` window, which
//! preserves the two properties the engine relies on: `clone()` is O(1) and
//! buffers are `Send + Sync`.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Creates `Bytes` from a static slice without copying semantics that
    /// matter here (the stand-in copies once into an `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` windowing the given sub-range (O(1), shares the
    /// underlying allocation).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for &[u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        Bytes::from(m.buf)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl Bytes {
    /// Consumes the first `len` bytes and returns them as a new `Bytes`
    /// sharing the underlying allocation.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write cursor building a byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice (alias of [`BufMut::put_slice`] kept for parity with
    /// the real crate).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slicing() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(7);
        m.put_u64(1234);
        m.put_u8(9);
        m.put_slice(b"tail");
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 4 + 8 + 1 + 4);
        assert_eq!(b.get_u32(), 7);
        assert_eq!(b.get_u64(), 1234);
        assert_eq!(b.get_u8(), 9);
        let tail = b.copy_to_bytes(4);
        assert_eq!(tail, &b"tail"[..]);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn equality_and_clone_are_cheap_window_ops() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..3), &[2u8, 3][..]);
        assert_eq!(Bytes::from("abc"), Bytes::from_static(b"abc"));
    }
}
