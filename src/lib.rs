//! # lethe
//!
//! Umbrella crate for the Lethe reproduction (*Lethe: A Tunable Delete-Aware
//! LSM Engine*, SIGMOD 2020). It re-exports the public API of the workspace
//! crates so applications can depend on a single crate:
//!
//! * [`lethe_core`] (re-exported at the root) — the [`Lethe`] engine, the
//!   FADE compaction policy, KiWi planning helpers, the tuning equations and
//!   the Table 2 cost model, the state-of-the-art [`Baseline`] engines, and
//!   [`ShardedLethe`] — the concurrent, `Send + Sync` sharded front-end.
//! * [`lsm`] — the underlying LSM-tree substrate (for white-box access).
//! * [`storage`] — pages, Bloom filters, fence pointers, devices, WAL.
//! * [`workload`] — the deterministic workload generator used by the
//!   benchmark harness and the examples, plus the multi-threaded
//!   concurrent driver ([`workload::run_concurrent`]).
//!
//! Start with the repository-level docs: `README.md` (what Lethe is, the
//! two knobs, quick start) and `ARCHITECTURE.md` (the layer stack, the
//! FADE/KiWi split, and where the sharded front-end sits).
//!
//! ```
//! use lethe::{Lethe, LetheBuilder};
//!
//! let mut db = LetheBuilder::new()
//!     .buffer(8, 4, 64)
//!     .size_ratio(4)
//!     .delete_persistence_threshold_secs(60.0)
//!     .build()
//!     .unwrap();
//! db.put(10, 1234, "value").unwrap();
//! assert!(db.get(10).unwrap().is_some());
//! ```

#![forbid(unsafe_code)]

pub use lethe_core::*;

/// The LSM-tree substrate (levels, compaction policies, the tree itself).
pub use lethe_lsm as lsm;
/// The storage substrate (pages, filters, fences, devices, WAL, clock).
pub use lethe_storage as storage;
/// Ranked lock primitives (deadlock-checked in debug builds).
pub use lethe_sync as sync;
/// Deterministic workload generation (YCSB-A variant with deletes).
pub use lethe_workload as workload;
