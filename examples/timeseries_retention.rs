//! Scenario 2 of the paper (DComp): a data company stores operational
//! documents sorted by `document_id` but must *delete by timestamp* — "drop
//! everything older than D days" — even though the timestamp is not the sort
//! key. This is a **secondary range delete**, the operation KiWi is built
//! for.
//!
//! The example compares three layouts on the same retention workload:
//! the state-of-the-art baseline (full-tree compaction), Lethe with `h = 1`
//! (classic layout + delete fences) and Lethe with a tuned `h`, reporting the
//! I/O each daily purge costs.
//!
//! Run with `cargo run --example timeseries_retention --release`.

use lethe::storage::CostModel;
use lethe::{Baseline, BaselineKind, Lethe, LetheBuilder, LsmConfig};

const DOCS: u64 = 60_000;
const DAYS: u64 = 30;
const RETAIN_DAYS: u64 = 23;

fn config() -> LsmConfig {
    LsmConfig {
        size_ratio: 4,
        buffer_pages: 64,
        entries_per_page: 4,
        entry_size: 128,
        max_pages_per_file: 32,
        ingestion_rate: 50_000,
        key_domain: DOCS * 2,
        ..LsmConfig::default()
    }
}

/// Ingest `DOCS` documents whose ids arrive in random-ish order while their
/// timestamps advance monotonically (id and timestamp are uncorrelated).
fn ingest(mut put: impl FnMut(u64, u64, String)) {
    for i in 0..DOCS {
        let doc_id = (i * 7919) % DOCS; // scrambled arrival order (7919 is coprime to DOCS)
        let day = i * DAYS / DOCS; // timestamps move forward
        put(doc_id, day, format!("document {doc_id} created on day {day}"));
    }
}

fn report(label: &str, pages_read: u64, pages_written: u64, dropped: u64, deleted: u64) {
    let model = CostModel::default();
    let io_us = pages_read as f64 * model.page_read_us + pages_written as f64 * model.page_write_us;
    println!(
        "{label:<28} {deleted:>7} docs purged | {pages_read:>7} pages read, {pages_written:>7} written, {dropped:>7} dropped whole | modeled I/O {:>9.1} ms",
        io_us / 1000.0
    );
}

fn run_lethe(h: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut db: Lethe = LetheBuilder::new()
        .with_config(config())
        .delete_persistence_threshold_secs(10.0)
        .delete_tile_pages(h)
        .build()?;
    ingest(|k, d, v| db.put(k, d, v).unwrap());
    db.persist()?;
    let before = db.io_snapshot();
    let stats = db.delete_where_delete_key_in(0, DAYS - RETAIN_DAYS)?;
    let delta = db.io_snapshot().since(&before);
    report(
        &format!("lethe (h = {h})"),
        delta.pages_read,
        delta.pages_written,
        stats.full_page_drops,
        stats.entries_deleted,
    );
    // retention audit: nothing older than the cutoff is readable any more
    assert!(db.scan_by_delete_key(0, DAYS - RETAIN_DAYS)?.is_empty());
    Ok(())
}

fn run_baseline() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Baseline::new(BaselineKind::RocksDbLike, config())?;
    ingest(|k, d, v| db.put(k, d, v).unwrap());
    db.persist()?;
    let before = db.tree().io_snapshot();
    let stats = db.delete_where_delete_key_in(0, DAYS - RETAIN_DAYS)?;
    let delta = db.tree().io_snapshot().since(&before);
    report(
        "state of the art (full tree)",
        delta.pages_read,
        delta.pages_written,
        stats.full_page_drops,
        stats.entries_deleted,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "retention purge: drop the oldest {} of {DAYS} days from {DOCS} documents\n",
        DAYS - RETAIN_DAYS
    );
    run_baseline()?;
    for h in [1, 4, 16] {
        run_lethe(h)?;
    }
    println!("\nlarger delete tiles turn the daily purge from a full-tree rewrite into");
    println!("mostly whole-page drops; lookups pay for it, so pick h with the tuner");
    println!("(see the tuning_advisor example).");
    Ok(())
}
