//! Tuning advisor: pick the delete-tile granularity `h` and see the predicted
//! cost trade-off of Equation (1)/(3) for your workload, then verify the
//! choice empirically on a scaled-down engine.
//!
//! Run with `cargo run --example tuning_advisor --release`.

use lethe::workload::{DeleteKeyCorrelation, WorkloadSpec};
use lethe::{
    best_delete_tile_pages_numeric, optimal_delete_tile_pages, workload_cost, LetheBuilder,
    TreeShape, WorkloadProfile,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Describe the production workload: how many of each operation run
    // between two secondary range deletes.
    let profile = WorkloadProfile {
        empty_point_lookups: 2.0e6,
        point_lookups: 8.0e6,
        short_range_lookups: 5.0e3,
        long_range_lookups: 100.0,
        long_range_selectivity: 1.0e-3,
        secondary_range_deletes: 1.0,
        inserts: 1.0e6,
    };
    // Describe the tree the workload runs against.
    let shape = TreeShape {
        entries: 2.0e9,
        entries_per_page: 4.0,
        levels: 6.0,
        false_positive_rate: 0.02,
        size_ratio: 10.0,
    };

    let h_bound = optimal_delete_tile_pages(&profile, &shape);
    let h_best = best_delete_tile_pages_numeric(&profile, &shape, 4096);
    println!("=== analytic tuning (paper §4.2.6) ===");
    println!("equation (3) bound on h : {h_bound}");
    println!("numeric optimum (Eq. 1) : {h_best}");
    println!("\n   h    weighted cost (page I/Os, lower is better)");
    for h in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let cost = workload_cost(&profile, &shape, h);
        let marker = if h == h_best { "  <- chosen" } else { "" };
        println!("{h:>5}    {cost:>18.0}{marker}");
    }

    // Build an engine with the chosen granularity and sanity-check it on a
    // scaled-down version of the same workload.
    println!("\n=== empirical spot check (scaled down) ===");
    let spec = WorkloadSpec {
        operations: 30_000,
        key_space: 30_000,
        value_size: 64,
        correlation: DeleteKeyCorrelation::Uncorrelated,
        ..WorkloadSpec::secondary_delete_mix(30_000, 0.0005, 0.2)
    };
    spec.validate().map_err(std::io::Error::other)?;

    for h in [1usize, 8, h_best.min(64)] {
        let mut db = LetheBuilder::new()
            .size_ratio(4)
            .buffer(64, 4, 64)
            .delete_persistence_threshold_secs(5.0)
            .delete_tile_pages(h)
            .build()?;
        let mut gen = lethe::workload::WorkloadGenerator::new(spec.clone());
        let before = db.io_snapshot();
        let mut ops_run = 0u64;
        for op in gen.operations() {
            use lethe::workload::Operation::*;
            match op {
                Put { key, delete_key } => db.put(key, delete_key, vec![0u8; 64])?,
                Get { key } | GetEmpty { key } => {
                    db.get(key)?;
                }
                Delete { key } => {
                    db.delete(key)?;
                }
                DeleteRange { start, end } => db.delete_range(start, end)?,
                RangeLookup { start, end } => {
                    db.range(start, end)?;
                }
                RangeStream { start, end, limit } => {
                    for item in db.iter_range(start, end)?.take(limit as usize) {
                        item?;
                    }
                }
                SecondaryRangeDelete { start, end } => {
                    db.delete_where_delete_key_in(start, end)?;
                }
                WriteBatch { ops } => {
                    let mut batch = lethe::WriteBatch::new();
                    for op in ops {
                        match op {
                            lethe::workload::BatchWriteOp::Put { key, delete_key } => {
                                batch.put(key, delete_key, vec![0u8; 64]);
                            }
                            lethe::workload::BatchWriteOp::Delete { key } => {
                                batch.delete(key);
                            }
                        }
                    }
                    db.write_batch(batch)?;
                }
                SnapshotRead { key } => {
                    db.capture_snapshot().get(key)?;
                }
                TimeSeriesAppend { series, start_tick, samples } => {
                    let block = lethe::workload::timeseries::encode_block(start_tick, &samples);
                    let key = lethe::workload::timeseries::encode_key(start_tick, series);
                    db.put(key, start_tick, block)?;
                }
            }
            ops_run += 1;
        }
        db.persist()?;
        let io = db.io_snapshot().since(&before);
        println!(
            "h = {h:>3}: {} page reads, {} page writes over {ops_run} ops",
            io.pages_read, io.pages_written
        );
    }
    println!("\npick the h whose measured I/O matches your read/delete balance;");
    println!("LetheBuilder::tune_delete_tiles_for() applies equation (3) automatically.");
    Ok(())
}
