//! Scenario 1 of the paper (EComp): an e-commerce company stores order
//! details sorted by `order_id` and must delete a user's order history — a
//! set of point and range deletes on the sort key — while honouring a
//! right-to-be-forgotten SLA (the delete persistence threshold `D_th`).
//!
//! The example drives a Lethe engine and a RocksDB-like baseline through the
//! same workload and compares how quickly the logical deletes become
//! persistent, and what that does to space amplification.
//!
//! Run with `cargo run --example order_history_purge --release`.

use lethe::workload::{Operation, WorkloadGenerator, WorkloadSpec};
use lethe::{Baseline, BaselineKind, LetheBuilder, LsmConfig};

const TOTAL_ORDERS: u64 = 40_000;
const USERS: u64 = 400;

fn config() -> LsmConfig {
    LsmConfig {
        size_ratio: 4,
        buffer_pages: 64,
        entries_per_page: 4,
        entry_size: 128,
        max_pages_per_file: 16,
        ingestion_rate: 20_000,
        key_domain: TOTAL_ORDERS * 2,
        ..LsmConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Lethe: deletes must persist within 2 seconds of logical time
    // (a stand-in for the "30 days" of a real retention SLA).
    let mut lethe = LetheBuilder::new()
        .with_config(config())
        .delete_persistence_threshold_secs(2.0)
        .delete_tile_pages(1) // primary deletes only: the classic layout is optimal
        .build()?;
    let mut baseline = Baseline::new(BaselineKind::RocksDbLike, config())?;

    // Phase 1 — ingest the order history. Order ids are grouped by user:
    // user `u` owns orders [u*100, u*100+100).
    println!("ingesting {TOTAL_ORDERS} orders for {USERS} users…");
    let spec = WorkloadSpec {
        preload_keys: TOTAL_ORDERS,
        key_space: TOTAL_ORDERS,
        value_size: 100,
        ..Default::default()
    };
    let mut gen = WorkloadGenerator::new(spec);
    for op in gen.preload() {
        if let Operation::Put { key, delete_key } = op {
            let payload = format!("order {key}");
            lethe.put(key, delete_key, payload.clone())?;
            baseline.put(key, delete_key, payload)?;
        }
    }

    // Phase 2 — a user exercises the right to be forgotten: delete all of
    // their orders (a range delete on the sort key) plus a handful of point
    // deletes for orders that were migrated elsewhere.
    let forgotten_user = 123u64;
    let start = forgotten_user * (TOTAL_ORDERS / USERS);
    let end = start + TOTAL_ORDERS / USERS;
    println!("deleting order history of user {forgotten_user} (orders {start}..{end})…");
    lethe.delete_range(start, end)?;
    baseline.delete_range(start, end)?;
    for order in (0..TOTAL_ORDERS).step_by(1000) {
        lethe.delete(order)?;
        baseline.delete(order)?;
    }

    // Phase 3 — the workload keeps running (other users keep ordering);
    // logical time advances past the SLA threshold.
    for key in TOTAL_ORDERS..TOTAL_ORDERS + 60_000 {
        let payload = format!("order {key}");
        lethe.put(key, key % 365, payload.clone())?;
        baseline.put(key, key % 365, payload)?;
    }
    lethe.persist()?;
    baseline.persist()?;

    // Phase 4 — audit: has the deletion actually been persisted?
    let dth = lethe.config().delete_persistence_threshold.unwrap();
    let lethe_snap = lethe.snapshot_contents()?;
    let base_snap = baseline.tree().snapshot_contents()?;

    println!("\n=== audit ===");
    println!("delete persistence threshold (logical): {} s", dth / 1_000_000);
    let lethe_overdue: u64 = lethe_snap
        .tombstone_file_ages
        .iter()
        .filter(|(age, _)| *age > dth)
        .map(|(_, n)| *n)
        .sum();
    let base_overdue: u64 = base_snap
        .tombstone_file_ages
        .iter()
        .filter(|(age, _)| *age > dth)
        .map(|(_, n)| *n)
        .sum();
    println!(
        "lethe   : {:>6} tombstones still in the tree, {:>6} older than the SLA, space amp {:.4}",
        lethe_snap.tombstones,
        lethe_overdue,
        lethe_snap.space_amplification()
    );
    println!(
        "baseline: {:>6} tombstones still in the tree, {:>6} older than the SLA, space amp {:.4}",
        base_snap.tombstones,
        base_overdue,
        base_snap.space_amplification()
    );
    assert_eq!(lethe_overdue, 0, "Lethe must persist every delete within the SLA");

    // The user's data is gone from both engines' query interface either way —
    // the difference is whether the *bytes* are still on disk.
    assert!(lethe.get(start + 5)?.is_none());
    assert!(baseline.get(start + 5)?.is_none());
    println!("\nuser {forgotten_user}'s orders are unreadable in both engines;");
    println!("only Lethe guarantees the physical copies were purged within the SLA.");
    Ok(())
}
