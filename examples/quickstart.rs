//! Quickstart: build a Lethe engine, write, read, delete, and watch deletes
//! persist within the configured threshold.
//!
//! Run with `cargo run --example quickstart --release`.

use lethe::{Lethe, LetheBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small engine on the in-memory simulated device:
    //  - size ratio T = 4
    //  - buffer of 32 pages × 4 entries
    //  - deletes must persist within 5 seconds of (logical) time
    //  - delete tiles of 4 pages for cheap secondary range deletes
    let mut db: Lethe = LetheBuilder::new()
        .size_ratio(4)
        .buffer(32, 4, 128)
        .delete_persistence_threshold_secs(5.0)
        .delete_tile_pages(4)
        .ingestion_rate(10_000)
        .build()?;

    // Ingest 20k orders: the sort key is the order id, the delete key is the
    // day the order was created.
    println!("ingesting 20,000 entries…");
    for order_id in 0..20_000u64 {
        let creation_day = order_id % 365;
        db.put(order_id, creation_day, format!("order payload #{order_id}"))?;
    }

    // Point lookups.
    println!("order 4242 -> {:?}", db.get(4242)?.map(|v| v.len()));
    assert!(db.get(4242)?.is_some());

    // Point delete: the key disappears immediately from the application's
    // point of view; FADE guarantees the physical tombstone reaches the last
    // level within the 5-second threshold.
    db.delete(4242)?;
    assert!(db.get(4242)?.is_none());

    // Range delete on the sort key.
    db.delete_range(100, 200)?;
    assert!(db.get(150)?.is_none());

    // Secondary range delete: purge everything created before day 30 without
    // a full-tree compaction — KiWi drops whole pages instead.
    let drops = db.delete_where_delete_key_in(0, 30)?;
    println!(
        "secondary range delete: {} entries removed, {} pages dropped whole, {} rewritten",
        drops.entries_deleted, drops.full_page_drops, drops.partial_page_drops
    );

    // Flush and let FADE run any TTL-driven compactions that are due.
    db.persist()?;

    let snapshot = db.snapshot_contents()?;
    println!(
        "tree: {} live keys, {} total entries, space amplification {:.4}, {} tombstones",
        snapshot.unique_entries,
        snapshot.total_entries,
        snapshot.space_amplification(),
        snapshot.tombstones
    );
    println!(
        "write amplification so far: {:.2}, I/O: {:?}",
        db.write_amplification(),
        db.io_snapshot()
    );
    let dth = db.config().delete_persistence_threshold.unwrap();
    for (age, count) in &snapshot.tombstone_file_ages {
        assert!(age <= &dth, "tombstone-bearing file older than the threshold");
        println!("  file with {count} tombstones is {age} µs old (Dth = {dth} µs)");
    }
    println!("all tombstone-bearing files are younger than Dth — deletes are on schedule");
    Ok(())
}
