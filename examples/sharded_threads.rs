//! Multi-threaded quick start for the sharded front-end.
//!
//! Eight writer/reader threads share one [`ShardedLethe`] by reference — no
//! external lock — while the store keeps Lethe's delete-aware guarantees per
//! shard. The run finishes with a retention-style secondary range delete
//! ("purge everything older than day 100") fanned out across all shards.
//!
//! ```text
//! cargo run --example sharded_threads
//! ```

use lethe::{ShardedLethe, ShardedLetheBuilder};
use std::time::Instant;

const THREADS: u64 = 8;
const KEYS_PER_THREAD: u64 = 25_000;

fn main() {
    let db: ShardedLethe = ShardedLetheBuilder::new()
        .shards(4)
        .buffer(32, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(4)
        .delete_persistence_threshold_secs(60.0)
        .build()
        .expect("engine construction cannot fail on the in-memory device");

    // Phase 1: concurrent ingest. Every thread writes its own key slice with
    // a "creation day" delete key, then reads a few of its keys back.
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            s.spawn(move || {
                let base = t * KEYS_PER_THREAD;
                for k in base..base + KEYS_PER_THREAD {
                    let creation_day = k % 365;
                    db.put(k, creation_day, format!("payload-{k}")).unwrap();
                }
                for k in (base..base + KEYS_PER_THREAD).step_by(1000) {
                    assert!(db.get(k).unwrap().is_some());
                }
            });
        }
    });
    let ingest = start.elapsed();
    db.persist().unwrap();

    let total = THREADS * KEYS_PER_THREAD;
    println!(
        "ingested {total} entries from {THREADS} threads across {} shards in {ingest:.2?} \
         ({:.0} puts/s wall-clock)",
        db.shard_count(),
        total as f64 / ingest.as_secs_f64(),
    );

    // Phase 2: retention delete on the secondary (delete) key — the paper's
    // headline operation, here fanned out across every shard.
    let start = Instant::now();
    let stats = db.delete_where_delete_key_in(0, 100).unwrap();
    println!(
        "purged days [0, 100): {} entries via {} full page drops + {} partial drops in {:.2?}",
        stats.entries_deleted,
        stats.full_page_drops,
        stats.partial_page_drops,
        start.elapsed(),
    );
    assert!(db.scan_by_delete_key(0, 100).unwrap().is_empty());

    // Phase 3: aggregated observability across shards.
    let tree = db.stats();
    let io = db.io_snapshot();
    println!(
        "aggregate: {} flushes, {} compactions, {} pages written, {} pages dropped unread, \
         write amplification {:.2}",
        tree.flushes,
        tree.compactions,
        io.pages_written,
        io.pages_dropped,
        db.write_amplification(),
    );
}
