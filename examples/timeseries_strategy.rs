//! Time-series ingest under the date-tiered compaction strategy: retention
//! ("keep only the freshest ticks") is handled by the *compaction layout*,
//! not by deletes — wholly-expired time windows are retired as whole files
//! without reading a page of them.
//!
//! The values are gorilla-encoded blocks (delta-of-delta timestamps + XOR'd
//! doubles), the workload is the seeded monotone append stream from
//! `lethe_workload::timeseries`, and the logical clock is driven in
//! lock-step with the data's tick timeline so windows age out as ingest
//! runs.
//!
//! Run with `cargo run --example timeseries_strategy --release`.

use lethe::workload::timeseries::{
    decode_block, decode_key, encode_block, encode_key, TimeSeriesGenerator, TimeSeriesSpec,
};
use lethe::workload::Operation;
use lethe::{CompactionStrategy, LetheBuilder};

const APPENDS: u64 = 2_000;
const SAMPLES: u64 = 32;
const MAX_TICK: u64 = APPENDS * SAMPLES;
/// Keep roughly the last quarter of the timeline.
const TTL: u64 = 16_384;
const BASE_WINDOW: u64 = 4_096;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = LetheBuilder::new()
        .buffer(32, 8, 64)
        .size_ratio(4)
        // 1 µs of auto-advanced time per ingest: this example moves the
        // clock itself, in lock-step with the data's ticks
        .ingestion_rate(1_000_000)
        .delete_persistence_threshold_secs(1.0)
        .compaction_strategy(CompactionStrategy::DateTiered {
            base_window_micros: BASE_WINDOW,
            fan_in: 4,
            ttl_micros: Some(TTL),
        })
        .build()?;

    let mut generator = TimeSeriesGenerator::new(TimeSeriesSpec {
        appends: APPENDS,
        samples_per_append: SAMPLES,
        scan_every: 0, // this example runs its own scans below
        ..TimeSeriesSpec::default()
    });
    let mut appends = 0u64;
    for op in generator.operations() {
        if let Operation::TimeSeriesAppend { series, start_tick, samples } = op {
            let block = encode_block(start_tick, &samples);
            db.put(encode_key(start_tick, series), start_tick, block)?;
            db.clock().advance_to(start_tick + samples.len() as u64);
            appends += 1;
            if appends.is_multiple_of(64) {
                db.persist()?;
            }
            if appends.is_multiple_of(256) {
                db.maintain()?;
            }
        }
    }
    db.persist()?;
    db.maintain()?;

    let stats = db.stats();
    println!("ingested {appends} appends of {SAMPLES} samples across 8 series");
    println!(
        "write amp {:.2}, {} whole-file drops (expired windows retired unread)",
        stats.write_amp(),
        stats.whole_file_drops
    );
    assert!(stats.whole_file_drops >= 1, "the expired windows should have been dropped");

    // the expired prefix is gone — retention by retirement, not by deletes
    let expired = db.range(encode_key(0, 0), encode_key(MAX_TICK - TTL - BASE_WINDOW, 0))?;
    assert!(expired.is_empty(), "expired windows still readable");
    println!("ticks [0, {}) retired by the TTL", MAX_TICK - TTL - BASE_WINDOW);

    // a windowed scan over the freshest ticks, decoded back to doubles
    let window = db.range(encode_key(MAX_TICK - 1_024, 0), encode_key(MAX_TICK, 0))?;
    println!("last 1024 ticks: {} blocks retained", window.len());
    let (key, bytes) = window.last().expect("the freshest window must be readable");
    let (start_tick, series) = decode_key(*key);
    let samples = decode_block(bytes)?;
    let newest = f64::from_bits(*samples.last().unwrap());
    println!(
        "newest block: series {series}, ticks {start_tick}..{}, last value {newest:.3}",
        start_tick + samples.len() as u64
    );
    Ok(())
}
