//! Shared infrastructure for the Lethe benchmark harness.
//!
//! The `experiments` binary (one subcommand per figure/table of the paper's
//! evaluation) is built from the helpers in this crate: engine construction
//! for every compared design, a uniform driver that applies generated
//! workload operations to an engine, and small formatting utilities for the
//! printed series.

#![forbid(unsafe_code)]

pub mod figures;

use lethe_core::baseline::{Baseline, BaselineKind};
use lethe_core::engine::{Lethe, LetheBuilder};
use lethe_lsm::config::{LsmConfig, SecondaryDeleteMode};
use lethe_lsm::tree::LsmTree;
use lethe_storage::{CostModel, IoSnapshot, Result, Timestamp};
use lethe_workload::{BatchWriteOp, Operation};

/// Which engine design an experiment instantiates.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// A state-of-the-art baseline.
    Baseline(BaselineKind),
    /// Lethe with a delete persistence threshold (µs of logical time) and a
    /// delete-tile granularity.
    Lethe {
        /// Delete persistence threshold in logical microseconds.
        dth_micros: Timestamp,
        /// Pages per delete tile (`h`).
        h: usize,
    },
}

impl EngineSpec {
    /// Label used in printed tables.
    pub fn label(&self) -> String {
        match self {
            EngineSpec::Baseline(kind) => kind.label().to_string(),
            EngineSpec::Lethe { dth_micros, h } => {
                format!("lethe(dth={:.2}s,h={h})", *dth_micros as f64 / 1_000_000.0)
            }
        }
    }

    /// Builds the engine on the in-memory simulated device.
    pub fn build(&self, base: LsmConfig) -> Result<AnyEngine> {
        match self {
            EngineSpec::Baseline(kind) => {
                Ok(AnyEngine::Baseline(Box::new(Baseline::new(*kind, base)?)))
            }
            EngineSpec::Lethe { dth_micros, h } => {
                let mut cfg = base;
                cfg.pages_per_delete_tile = *h;
                if !cfg.max_pages_per_file.is_multiple_of(*h) {
                    cfg.max_pages_per_file = cfg.max_pages_per_file.div_ceil(*h) * *h;
                }
                cfg.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
                cfg.suppress_blind_deletes = true;
                cfg.delete_persistence_threshold = Some(*dth_micros);
                let engine = LetheBuilder::new()
                    .with_config(cfg)
                    .delete_persistence_threshold_micros(*dth_micros)
                    .build()?;
                Ok(AnyEngine::Lethe(Box::new(engine)))
            }
        }
    }
}

/// An instantiated engine of either design, driven uniformly through the
/// underlying [`LsmTree`].
pub enum AnyEngine {
    /// A Lethe engine (FADE + KiWi).
    Lethe(Box<Lethe>),
    /// A state-of-the-art baseline.
    Baseline(Box<Baseline>),
}

impl AnyEngine {
    /// Mutable access to the underlying tree.
    pub fn tree_mut(&mut self) -> &mut LsmTree {
        match self {
            AnyEngine::Lethe(e) => e.tree_mut(),
            AnyEngine::Baseline(b) => b.tree_mut(),
        }
    }

    /// Shared access to the underlying tree.
    pub fn tree(&self) -> &LsmTree {
        match self {
            AnyEngine::Lethe(e) => e.tree(),
            AnyEngine::Baseline(b) => b.tree(),
        }
    }

    /// Flush + compaction loop.
    pub fn persist(&mut self) -> Result<()> {
        self.tree_mut().flush()?;
        self.tree_mut().maintain()
    }
}

/// Applies one generated operation to an engine. The value payload is
/// `value_size` bytes embedding the key.
pub fn apply_operation(tree: &mut LsmTree, op: &Operation, value_size: usize) -> Result<()> {
    match op {
        Operation::Put { key, delete_key } => {
            let mut v = vec![0u8; value_size.max(8)];
            v[..8].copy_from_slice(&key.to_le_bytes());
            tree.put(*key, *delete_key, v.into())
        }
        Operation::Get { key } | Operation::GetEmpty { key } => tree.get(*key).map(|_| ()),
        Operation::Delete { key } => tree.delete(*key).map(|_| ()),
        Operation::DeleteRange { start, end } => tree.delete_range(*start, *end),
        Operation::RangeLookup { start, end } => tree.range(*start, *end).map(|_| ()),
        Operation::RangeStream { start, end, limit } => {
            // consume one page of a streaming scan through the reader
            let mut n = 0u64;
            for item in tree.reader().iter_range(*start, *end)? {
                item?;
                n += 1;
                if n >= *limit {
                    break;
                }
            }
            Ok(())
        }
        Operation::SecondaryRangeDelete { start, end } => {
            tree.secondary_range_delete(*start, *end).map(|_| ())
        }
        Operation::WriteBatch { ops } => {
            let mut batch = lethe_lsm::batch::WriteBatch::new();
            for op in ops {
                match op {
                    BatchWriteOp::Put { key, delete_key } => {
                        let mut v = vec![0u8; value_size.max(8)];
                        v[..8].copy_from_slice(&key.to_le_bytes());
                        batch.put(*key, *delete_key, v);
                    }
                    BatchWriteOp::Delete { key } => {
                        batch.delete(*key);
                    }
                }
            }
            tree.write_batch(batch)
        }
        Operation::SnapshotRead { key } => {
            // open a point-in-time view, serve the lookup through it, drop it
            let snapshot = tree.capture_snapshot();
            snapshot.get(*key).map(|_| ())
        }
        Operation::TimeSeriesAppend { series, start_tick, samples } => {
            // Gorilla-compress the block; the start tick doubles as the
            // delete key so TTL retention can purge by age
            let block = lethe_workload::timeseries::encode_block(*start_tick, samples);
            let key = lethe_workload::timeseries::encode_key(*start_tick, *series);
            tree.put(key, *start_tick, block.into())
        }
    }
}

/// Applies a whole operation stream.
pub fn apply_all(tree: &mut LsmTree, ops: &[Operation], value_size: usize) -> Result<()> {
    for op in ops {
        apply_operation(tree, op, value_size)?;
    }
    Ok(())
}

/// The scaled-down base configuration every experiment starts from. The
/// paper runs on a 240 GB SSD with 1 KB entries; the harness keeps the same
/// structural parameters (T, B, bits/key) but shrinks the buffer and entry
/// size so a full figure regenerates in seconds on a laptop. Use the
/// `--ops`/`--scale` flags of the `experiments` binary to scale up.
pub fn experiment_config() -> LsmConfig {
    LsmConfig {
        size_ratio: 10,
        buffer_pages: 64,
        entries_per_page: 4,
        entry_size: 128,
        bits_per_key: 10.0,
        max_pages_per_file: 16,
        ingestion_rate: 4096,
        key_domain: 1 << 24,
        ..LsmConfig::default()
    }
}

/// Modeled time (µs) of an I/O snapshot under the paper's latency constants.
pub fn modeled_time_us(io: &IoSnapshot) -> f64 {
    CostModel::default().total_time_us(io)
}

/// Formats a floating point cell with a sensible width for printed tables.
pub fn cell(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints a header row followed by data rows, space-aligned.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lethe_workload::{WorkloadGenerator, WorkloadSpec};

    #[test]
    fn engine_specs_build_and_label() {
        let specs = [
            EngineSpec::Baseline(BaselineKind::RocksDbLike),
            EngineSpec::Baseline(BaselineKind::TombstoneSelection),
            EngineSpec::Lethe { dth_micros: 2_000_000, h: 4 },
        ];
        for spec in specs {
            let mut cfg = experiment_config();
            cfg.buffer_pages = 8;
            let mut engine = spec.build(cfg).unwrap();
            assert!(!spec.label().is_empty());
            engine.tree_mut().put(1, 1, vec![0u8; 16].into()).unwrap();
            assert!(engine.tree_mut().get(1).unwrap().is_some());
            engine.persist().unwrap();
            assert!(engine.tree().disk_entries() > 0);
        }
    }

    #[test]
    fn lethe_spec_enables_kiwi_and_fade() {
        let engine = EngineSpec::Lethe { dth_micros: 5_000_000, h: 8 }
            .build(experiment_config())
            .unwrap();
        let cfg = engine.tree().config();
        assert_eq!(cfg.pages_per_delete_tile, 8);
        assert_eq!(cfg.secondary_delete_mode, SecondaryDeleteMode::KiwiPageDrops);
        assert_eq!(cfg.delete_persistence_threshold, Some(5_000_000));
        assert_eq!(cfg.max_pages_per_file % 8, 0);
    }

    #[test]
    fn drivers_execute_every_operation_kind() {
        let mut cfg = experiment_config();
        cfg.buffer_pages = 8;
        let mut engine = EngineSpec::Lethe { dth_micros: 1_000_000, h: 2 }.build(cfg).unwrap();
        let spec = WorkloadSpec {
            operations: 2_000,
            key_space: 10_000,
            value_size: 32,
            update_fraction: 0.55,
            point_lookup_fraction: 0.25,
            empty_lookup_fraction: 0.05,
            point_delete_fraction: 0.05,
            range_delete_fraction: 0.02,
            range_lookup_fraction: 0.05,
            secondary_delete_fraction: 0.03,
            secondary_delete_selectivity: 0.01,
            ..Default::default()
        };
        let mut gen = WorkloadGenerator::new(spec);
        let ops = gen.operations();
        apply_all(engine.tree_mut(), &ops, 32).unwrap();
        engine.persist().unwrap();
        assert!(engine.tree().stats().entries_ingested > 0);
        assert!(engine.tree().stats().point_lookups > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(cell(0.0), "0");
        assert_eq!(cell(12345.6), "12346");
        assert_eq!(cell(42.0), "42.0");
        assert_eq!(cell(0.1234), "0.1234");
        assert!(modeled_time_us(&IoSnapshot::default()) == 0.0);
        // print_table must not panic on ragged rows
        print_table(
            "smoke",
            &["a".into(), "b".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
