//! Figures 6(A)–(G): the primary-delete experiments.
//!
//! The paper ingests a YCSB-A-style stream (updates + point deletes) into an
//! initially empty store, then measures space amplification, compaction
//! counts, total bytes written, read throughput, the tombstone-age
//! distribution, the amortisation of write amplification over time, and
//! scalability with data size — for a RocksDB-like baseline and Lethe at
//! three delete-persistence thresholds (16%, 25%, 50% of the experiment's
//! run-time).

use crate::{apply_all, cell, experiment_config, print_table, EngineSpec};
use lethe_core::baseline::BaselineKind;
use lethe_storage::{CostModel, Timestamp};
use lethe_workload::{Operation, WorkloadGenerator, WorkloadSpec};

/// Metrics captured from one (engine, delete-percentage) run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Engine label.
    pub engine: String,
    /// Percentage of the ingestion that was point deletes.
    pub delete_pct: f64,
    /// Space amplification at the end of the run (Figure 6A).
    pub space_amplification: f64,
    /// Number of compactions performed (Figure 6B).
    pub compactions: u64,
    /// Total bytes written to the device (Figure 6C).
    pub bytes_written: u64,
    /// Modeled read throughput in lookups/s (Figure 6D).
    pub read_throughput: f64,
    /// `(file age µs, tombstone count)` for every file still holding
    /// tombstones (Figure 6E).
    pub tombstone_file_ages: Vec<(Timestamp, u64)>,
    /// The delete persistence threshold used (µs of logical time), if any.
    pub dth_micros: Option<Timestamp>,
    /// Total logical duration of the ingestion phase in µs.
    pub duration_micros: Timestamp,
}

/// The ingestion phase of the sweep: `ops` ingestion operations of which
/// `delete_pct`% are point deletes on previously inserted keys, followed by a
/// read phase of `lookups` point lookups on inserted keys.
pub fn run_one(
    spec: &EngineSpec,
    ops: u64,
    delete_pct: f64,
    lookups: u64,
) -> RunMetrics {
    let cfg = experiment_config();
    let mut engine = spec.build(cfg.clone()).expect("engine builds");
    let value_size = cfg.entry_size - 32;

    let workload = WorkloadSpec {
        operations: ops,
        // the key space matches the ingestion volume so most puts are unique
        // inserts and a minority are updates, as in the paper's setup
        key_space: ops.max(1024),
        value_size,
        update_fraction: 1.0 - delete_pct / 100.0,
        point_lookup_fraction: 0.0,
        point_delete_fraction: delete_pct / 100.0,
        ..Default::default()
    };
    let mut gen = WorkloadGenerator::new(workload);
    let ops_stream = gen.operations();
    apply_all(engine.tree_mut(), &ops_stream, value_size).expect("ingest");
    engine.persist().expect("persist");

    let duration_micros = engine.tree().clock().now();
    let io_after_ingest = engine.tree().io_snapshot();
    let stats = engine.tree().stats().clone();
    let snapshot = engine.tree().snapshot_contents().expect("snapshot");

    // read phase: point lookups on keys that were inserted (some of which
    // have since been deleted), measured with the paper's latency constants
    let inserted: Vec<u64> = ops_stream
        .iter()
        .filter_map(|op| match op {
            Operation::Put { key, .. } => Some(*key),
            _ => None,
        })
        .collect();
    let before_reads = engine.tree().io_snapshot();
    let mut issued = 0u64;
    if !inserted.is_empty() {
        for i in 0..lookups {
            let key = inserted[(i as usize * 7919) % inserted.len()];
            let _ = engine.tree_mut().get(key);
            issued += 1;
        }
    }
    let read_delta = engine.tree().io_snapshot().since(&before_reads);
    let read_throughput = CostModel::default().throughput_ops_per_sec(issued, &read_delta);

    let dth_micros = match spec {
        EngineSpec::Lethe { dth_micros, .. } => Some(*dth_micros),
        EngineSpec::Baseline(_) => None,
    };
    RunMetrics {
        engine: spec.label(),
        delete_pct,
        space_amplification: snapshot.space_amplification(),
        compactions: stats.compactions,
        bytes_written: io_after_ingest.bytes_written,
        read_throughput,
        tombstone_file_ages: snapshot.tombstone_file_ages,
        dth_micros,
        duration_micros,
    }
}

/// The engines compared in Figures 6(A)–(E): the RocksDB-like baseline and
/// Lethe with `D_th` at 16%, 25% and 50% of the run-time.
pub fn sweep_engines(ops: u64) -> Vec<EngineSpec> {
    let cfg = experiment_config();
    let duration = ops * cfg.micros_per_ingest();
    vec![
        EngineSpec::Baseline(BaselineKind::RocksDbLike),
        EngineSpec::Lethe { dth_micros: (duration as f64 * 0.1667) as u64, h: 1 },
        EngineSpec::Lethe { dth_micros: (duration as f64 * 0.25) as u64, h: 1 },
        EngineSpec::Lethe { dth_micros: (duration as f64 * 0.50) as u64, h: 1 },
    ]
}

/// Runs the full sweep used by Figures 6(A)–(D).
pub fn run_sweep(ops: u64, lookups: u64, delete_pcts: &[f64]) -> Vec<RunMetrics> {
    let mut out = Vec::new();
    for spec in sweep_engines(ops) {
        for &pct in delete_pcts {
            out.push(run_one(&spec, ops, pct, lookups));
        }
    }
    out
}

fn print_metric<F: Fn(&RunMetrics) -> f64>(
    title: &str,
    metric_name: &str,
    results: &[RunMetrics],
    delete_pcts: &[f64],
    f: F,
) {
    let mut header = vec![format!("engine \\ deletes%  ({metric_name})")];
    header.extend(delete_pcts.iter().map(|p| format!("{p}%")));
    let mut rows = Vec::new();
    let mut engines: Vec<String> = Vec::new();
    for r in results {
        if !engines.contains(&r.engine) {
            engines.push(r.engine.clone());
        }
    }
    for engine in engines {
        let mut row = vec![engine.clone()];
        for &pct in delete_pcts {
            let v = results
                .iter()
                .find(|r| r.engine == engine && (r.delete_pct - pct).abs() < 1e-9)
                .map(&f)
                .unwrap_or(f64::NAN);
            row.push(cell(v));
        }
        rows.push(row);
    }
    print_table(title, &header, &rows);
}

/// Figure 6(A): space amplification vs % deletes.
pub fn fig6a(ops: u64, lookups: u64) {
    let pcts = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let results = run_sweep(ops, lookups, &pcts);
    print_metric(
        "Figure 6(A) — space amplification vs %deletes",
        "space amp",
        &results,
        &pcts,
        |r| r.space_amplification,
    );
}

/// Figure 6(B): number of compactions vs % deletes.
pub fn fig6b(ops: u64, lookups: u64) {
    let pcts = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let results = run_sweep(ops, lookups, &pcts);
    print_metric(
        "Figure 6(B) — #compactions vs %deletes",
        "compactions",
        &results,
        &pcts,
        |r| r.compactions as f64,
    );
}

/// Figure 6(C): total data written vs % deletes.
pub fn fig6c(ops: u64, lookups: u64) {
    let pcts = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let results = run_sweep(ops, lookups, &pcts);
    print_metric(
        "Figure 6(C) — total data written (MB) vs %deletes",
        "MB written",
        &results,
        &pcts,
        |r| r.bytes_written as f64 / 1.0e6,
    );
}

/// Figure 6(D): read throughput vs % deletes.
pub fn fig6d(ops: u64, lookups: u64) {
    let pcts = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let results = run_sweep(ops, lookups, &pcts);
    print_metric(
        "Figure 6(D) — modeled read throughput (lookups/s) vs %deletes",
        "ops/s",
        &results,
        &pcts,
        |r| r.read_throughput,
    );
}

/// Figure 6(E): cumulative tombstones by tombstone-file age, at 10% deletes.
pub fn fig6e(ops: u64) {
    let pcts = [10.0];
    let results = run_sweep(ops, 0, &pcts);
    let duration = results.first().map(|r| r.duration_micros).unwrap_or(1).max(1);
    // age buckets as fractions of the experiment duration
    let fractions = [0.05, 0.1, 0.1667, 0.25, 0.5, 0.75, 1.0];
    let mut header = vec!["engine \\ file age (fraction of run-time)".to_string()];
    header.extend(fractions.iter().map(|f| format!("≤{f}")));
    header.push("older than Dth".into());
    let mut rows = Vec::new();
    for r in &results {
        let thresholds: Vec<Timestamp> =
            fractions.iter().map(|f| (duration as f64 * f) as Timestamp).collect();
        let mut row = vec![r.engine.clone()];
        let snapshot = lethe_lsm::stats::ContentSnapshot {
            tombstone_file_ages: r.tombstone_file_ages.clone(),
            ..Default::default()
        };
        for (_, count) in snapshot.cumulative_tombstones_by_age(&thresholds) {
            row.push(count.to_string());
        }
        let overdue: u64 = match r.dth_micros {
            Some(dth) => r
                .tombstone_file_ages
                .iter()
                .filter(|(age, _)| *age > dth)
                .map(|(_, n)| *n)
                .sum(),
            None => 0,
        };
        row.push(if r.dth_micros.is_some() { overdue.to_string() } else { "n/a".into() });
        rows.push(row);
    }
    print_table(
        "Figure 6(E) — cumulative #tombstones by age of the file containing them (10% deletes)",
        &header,
        &rows,
    );
}

/// Figure 6(F): normalized bytes written over time (write-amplification
/// amortisation). `D_th` is set to 1/15 of the run, as in the paper's
/// worst-case setup.
pub fn fig6f(ops: u64) {
    let cfg = experiment_config();
    let value_size = cfg.entry_size - 32;
    let duration = ops * cfg.micros_per_ingest();
    let snapshots = 10usize;
    let specs = [
        EngineSpec::Baseline(BaselineKind::RocksDbLike),
        EngineSpec::Lethe { dth_micros: duration / 15, h: 1 },
    ];
    // generate one shared stream with 5% deletes
    let workload = WorkloadSpec {
        operations: ops,
        key_space: (ops / 2).max(1024),
        value_size,
        update_fraction: 0.95,
        point_lookup_fraction: 0.0,
        point_delete_fraction: 0.05,
        ..Default::default()
    };
    let stream = WorkloadGenerator::new(workload).operations();
    let chunk = (stream.len() / snapshots).max(1);

    let mut series: Vec<(String, Vec<u64>)> = Vec::new();
    for spec in &specs {
        let mut engine = spec.build(cfg.clone()).expect("engine builds");
        let mut bytes = Vec::new();
        for ops_chunk in stream.chunks(chunk) {
            apply_all(engine.tree_mut(), ops_chunk, value_size).expect("ingest");
            engine.tree_mut().flush().expect("flush");
            engine.tree_mut().maintain().expect("maintain");
            bytes.push(engine.tree().io_snapshot().bytes_written);
        }
        series.push((spec.label(), bytes));
    }

    let baseline = series[0].1.clone();
    let mut header = vec!["snapshot (time)".to_string()];
    header.extend(series.iter().map(|(label, _)| label.clone()));
    header.push("lethe / rocksdb".into());
    let mut rows = Vec::new();
    for i in 0..baseline.len() {
        let mut row = vec![format!("t{}", i + 1)];
        for (_, bytes) in &series {
            row.push(cell(bytes.get(i).copied().unwrap_or(0) as f64 / 1.0e6));
        }
        let ratio = series[1].1.get(i).copied().unwrap_or(0) as f64
            / baseline.get(i).copied().unwrap_or(1).max(1) as f64;
        row.push(cell(ratio));
        rows.push(row);
    }
    print_table(
        "Figure 6(F) — cumulative MB written over time and Lethe/RocksDB ratio (Dth = run/15)",
        &header,
        &rows,
    );
}

/// Figure 6(G): average modeled latency vs data size, for a write-only and a
/// mixed (YCSB-A) workload.
pub fn fig6g(max_ops: u64) {
    let cfg = experiment_config();
    let value_size = cfg.entry_size - 32;
    let sizes: Vec<u64> = (0..4).map(|i| (max_ops / 8) << i).filter(|&n| n >= 512).collect();
    let mut rows = Vec::new();
    for &n in &sizes {
        let duration = n * cfg.micros_per_ingest();
        let engines = [
            ("write/rocksdb", EngineSpec::Baseline(BaselineKind::RocksDbLike), true),
            ("write/lethe", EngineSpec::Lethe { dth_micros: duration / 4, h: 1 }, true),
            ("mixed/rocksdb", EngineSpec::Baseline(BaselineKind::RocksDbLike), false),
            ("mixed/lethe", EngineSpec::Lethe { dth_micros: duration / 4, h: 1 }, false),
        ];
        let mut row = vec![format!("{n}")];
        for (_, spec, write_only) in &engines {
            let workload = if *write_only {
                WorkloadSpec { operations: n, key_space: (n / 2).max(1024), value_size, ..WorkloadSpec::write_only(n) }
            } else {
                WorkloadSpec {
                    operations: n,
                    key_space: (n / 2).max(1024),
                    value_size,
                    ..WorkloadSpec::ycsb_a_with_deletes(n, 5.0)
                }
            };
            let mut engine = spec.build(cfg.clone()).expect("engine builds");
            let stream = WorkloadGenerator::new(workload).operations();
            apply_all(engine.tree_mut(), &stream, value_size).expect("run");
            engine.persist().expect("persist");
            let io = engine.tree().io_snapshot();
            let avg_latency_ms =
                crate::modeled_time_us(&io) / 1000.0 / stream.len().max(1) as f64;
            row.push(cell(avg_latency_ms));
        }
        rows.push(row);
    }
    let header = vec![
        "data size (ops)".to_string(),
        "write-only rocksdb (ms/op)".to_string(),
        "write-only lethe (ms/op)".to_string(),
        "mixed rocksdb (ms/op)".to_string(),
        "mixed lethe (ms/op)".to_string(),
    ];
    print_table(
        "Figure 6(G) — average modeled latency vs data size (write-only and mixed workloads)",
        &header,
        &rows,
    );
}
