//! One module per group of evaluation figures.
//!
//! * [`delete_sweep`] — Figures 6(A)–(G): the primary-delete experiments
//!   (space amplification, compaction counts, bytes written, read
//!   throughput, tombstone-age distribution, write-amplification
//!   amortisation, scalability).
//! * [`kiwi`] — Figures 6(H)–(L): the secondary-range-delete experiments
//!   (full page drops, lookup cost vs `h`, optimal layout, CPU/I-O
//!   trade-off, sort/delete-key correlation).
//! * [`summary`] — Figure 1 and Table 2 (qualitative comparison and the
//!   analytical model).

pub mod delete_sweep;
pub mod kiwi;
pub mod summary;
