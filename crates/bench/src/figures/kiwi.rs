//! Figures 6(H)–(L): the secondary-range-delete experiments.
//!
//! These figures explore the KiWi layout continuum: how the delete-tile
//! granularity `h` trades the cost of secondary range deletes (full page
//! drops) against point/range lookup cost, the CPU/I-O balance, and the
//! influence of sort-key/delete-key correlation.

use crate::{apply_all, cell, experiment_config, print_table, EngineSpec};
use lethe_core::kiwi::plan_secondary_delete;
use lethe_storage::CostModel;
use lethe_workload::{WorkloadGenerator, WorkloadSpec};

/// Builds a Lethe engine preloaded with `entries` keys whose delete keys are
/// either uncorrelated with (pseudo-random permutation) or equal to the sort
/// key.
fn preloaded_engine(h: usize, entries: u64, correlated: bool) -> crate::AnyEngine {
    let cfg = experiment_config();
    let value_size = cfg.entry_size - 32;
    let spec = EngineSpec::Lethe { dth_micros: u64::MAX / 4, h };
    let mut engine = spec.build(cfg).expect("engine builds");
    for k in 0..entries {
        let d = if correlated { k } else { (k.wrapping_mul(2_654_435_761)) % entries };
        let mut v = vec![0u8; value_size];
        v[..8].copy_from_slice(&k.to_le_bytes());
        engine.tree_mut().put(k, d, v.into()).expect("put");
    }
    engine.persist().expect("persist");
    engine
}

/// Figure 6(H): percentage of affected pages that can be fully dropped, as a
/// function of the fraction of the database deleted, for several `h`.
pub fn fig6h(entries: u64) {
    let hs = [1usize, 4, 8, 16, 32, 64];
    let selectivities = [0.01, 0.02, 0.03, 0.04, 0.05];
    let mut header = vec!["h \\ deleted fraction".to_string()];
    header.extend(selectivities.iter().map(|s| format!("{}%", s * 100.0)));
    let mut rows = Vec::new();
    for &h in &hs {
        let engine = preloaded_engine(h, entries, false);
        let mut row = vec![format!("h={h}")];
        for &sel in &selectivities {
            let hi = (entries as f64 * sel) as u64;
            let plan = plan_secondary_delete(engine.tree(), 0, hi.max(1));
            row.push(cell(plan.full_drop_fraction() * 100.0));
        }
        rows.push(row);
    }
    print_table(
        "Figure 6(H) — % of affected pages dropped whole vs fraction of DB deleted",
        &header,
        &rows,
    );
}

/// Figure 6(I): average lookup cost in page I/Os vs delete-tile granularity,
/// for zero-result and existing-key lookups.
pub fn fig6i(entries: u64, lookups: u64) {
    let hs = [1usize, 2, 4, 8, 16, 32, 64];
    let cfg = experiment_config();
    let value_size = cfg.entry_size - 32;
    let mut rows = Vec::new();
    for &h in &hs {
        // only even keys are inserted so that zero-result lookups (odd keys)
        // fall inside the tree's key range and exercise the Bloom filters
        let spec = EngineSpec::Lethe { dth_micros: u64::MAX / 4, h };
        let mut engine = spec.build(cfg.clone()).expect("engine builds");
        for k in 0..entries {
            let d = (k.wrapping_mul(2_654_435_761)) % entries;
            let mut v = vec![0u8; value_size];
            v[..8].copy_from_slice(&k.to_le_bytes());
            engine.tree_mut().put(k * 2, d, v.into()).expect("put");
        }
        engine.persist().expect("persist");
        // existing keys
        let before = engine.tree().io_snapshot();
        for i in 0..lookups {
            let key = ((i * 7919) % entries) * 2;
            let _ = engine.tree_mut().get(key);
        }
        let existing = engine.tree().io_snapshot().since(&before);
        // missing keys inside the key range
        let before = engine.tree().io_snapshot();
        for i in 0..lookups {
            let key = ((i * 7919) % entries) * 2 + 1;
            let _ = engine.tree_mut().get(key);
        }
        let missing = engine.tree().io_snapshot().since(&before);
        rows.push(vec![
            format!("h={h}"),
            cell(existing.pages_read as f64 / lookups.max(1) as f64),
            cell(missing.pages_read as f64 / lookups.max(1) as f64),
            cell(existing.bloom_probes as f64 / lookups.max(1) as f64),
            cell(missing.bloom_probes as f64 / lookups.max(1) as f64),
        ]);
    }
    let header = vec![
        "delete-tile granularity".to_string(),
        "non-zero lookup (I/Os)".to_string(),
        "zero-result lookup (I/Os)".to_string(),
        "non-zero bloom probes".to_string(),
        "zero-result bloom probes".to_string(),
    ];
    print_table("Figure 6(I) — average lookup cost vs delete-tile granularity", &header, &rows);
}

/// Figure 6(J): average I/Os per operation for a mixed lookup + secondary
/// range delete workload, as the delete selectivity grows, for several `h`.
/// The lookup : secondary-delete ratio is scaled down from the paper's 10⁵:1
/// to keep the harness fast; the crossover structure is preserved.
pub fn fig6j(entries: u64, lookups_per_delete: u64) {
    let hs = [1usize, 2, 4, 8, 16];
    let selectivities = [0.01, 0.02, 0.03, 0.04, 0.05];
    let mut header = vec![format!("h \\ selectivity ({lookups_per_delete} lookups per SRD)")];
    header.extend(selectivities.iter().map(|s| format!("{}%", s * 100.0)));
    let mut rows = Vec::new();
    for &h in &hs {
        let mut row = vec![format!("h={h}")];
        for &sel in &selectivities {
            let mut engine = preloaded_engine(h, entries, false);
            let before = engine.tree().io_snapshot();
            for i in 0..lookups_per_delete {
                let key = (i * 104_729) % entries;
                let _ = engine.tree_mut().get(key);
            }
            let hi = ((entries as f64) * sel) as u64;
            let _ = engine.tree_mut().secondary_range_delete(0, hi.max(1));
            let delta = engine.tree().io_snapshot().since(&before);
            let ops = lookups_per_delete + 1;
            row.push(cell(delta.page_ios() as f64 / ops as f64));
        }
        rows.push(row);
    }
    print_table(
        "Figure 6(J) — average I/Os per operation vs secondary-delete selectivity",
        &header,
        &rows,
    );
}

/// Figure 6(K): CPU (hashing) time vs I/O time as the delete-tile
/// granularity grows, for the §5.2 workload: 50% point queries, 1% range
/// queries, 49% inserts, plus one secondary range delete of 1/7 of the
/// database.
pub fn fig6k(entries: u64, ops: u64) {
    let cfg = experiment_config();
    let value_size = cfg.entry_size - 32;
    let hs = [1usize, 2, 4, 8, 16, 32, 64];
    let model = CostModel::default();
    let mut rows = Vec::new();
    for &h in &hs {
        let mut engine = preloaded_engine(h, entries, false);
        let spec = WorkloadSpec {
            operations: ops,
            key_space: entries,
            value_size,
            update_fraction: 0.49,
            point_lookup_fraction: 0.50,
            range_lookup_fraction: 0.01,
            range_lookup_selectivity: 1.0e-5,
            ..Default::default()
        };
        let stream = WorkloadGenerator::new(spec).operations();
        let before = engine.tree().io_snapshot();
        apply_all(engine.tree_mut(), &stream, value_size).expect("mixed phase");
        // one secondary range delete covering 1/7 of the delete-key domain
        let _ = engine.tree_mut().secondary_range_delete(0, entries / 7);
        let delta = engine.tree().io_snapshot().since(&before);
        let hash_ms = model.cpu_time_us(&delta) / 1000.0;
        let io_ms = model.io_time_us(&delta) / 1000.0;
        rows.push(vec![
            format!("h={h}"),
            cell(hash_ms),
            cell(io_ms),
            cell(hash_ms + io_ms),
            delta.bloom_probes.to_string(),
            delta.page_ios().to_string(),
        ]);
    }
    let header = vec![
        "delete-tile granularity".to_string(),
        "hashing time (ms)".to_string(),
        "I/O time (ms)".to_string(),
        "total (ms)".to_string(),
        "bloom probes".to_string(),
        "page I/Os".to_string(),
    ];
    print_table(
        "Figure 6(K) — CPU (hashing) vs I/O time for the mixed workload + 1/7-DB secondary delete",
        &header,
        &rows,
    );
}

/// Figure 6(L): the effect of sort-key/delete-key correlation. For an
/// uncorrelated and a perfectly correlated workload, reports the cost of a
/// short range query and the fraction of pages a secondary range delete can
/// drop whole, across delete-tile sizes.
pub fn fig6l(entries: u64, range_queries: u64) {
    let hs = [1usize, 2, 4, 8, 16, 32, 64];
    let span = (entries / 200).max(4); // short range queries (~0.5% of the keys)
    let mut rows = Vec::new();
    for (label, correlated) in [("uncorrelated", false), ("correlated (≈1)", true)] {
        for &h in &hs {
            let mut engine = preloaded_engine(h, entries, correlated);
            // range query cost
            let before = engine.tree().io_snapshot();
            for i in 0..range_queries {
                let start = (i * 49_999) % (entries - span);
                let _ = engine.tree_mut().range(start, start + span);
            }
            let rq = engine.tree().io_snapshot().since(&before);
            // secondary range delete: drop 1/7 of the delete-key domain
            let plan = plan_secondary_delete(engine.tree(), 0, entries / 7);
            let before = engine.tree().io_snapshot();
            let stats = engine.tree_mut().secondary_range_delete(0, entries / 7).expect("srd");
            let srd = engine.tree().io_snapshot().since(&before);
            rows.push(vec![
                label.to_string(),
                format!("h={h}"),
                cell(rq.pages_read as f64 / range_queries.max(1) as f64),
                cell(plan.full_drop_fraction() * 100.0),
                cell(srd.page_ios() as f64),
                stats.full_page_drops.to_string(),
            ]);
        }
    }
    let header = vec![
        "workload".to_string(),
        "tile size".to_string(),
        "range query cost (I/Os)".to_string(),
        "% pages dropped whole".to_string(),
        "secondary delete I/Os".to_string(),
        "full page drops".to_string(),
    ];
    print_table(
        "Figure 6(L) — effect of sort/delete key correlation on range queries and secondary deletes",
        &header,
        &rows,
    );
}

/// Drives one full secondary-range-delete on engines with and without KiWi to
/// print a compact comparison (used by Figure 1's narrative).
pub fn secondary_delete_comparison(entries: u64) -> Vec<(String, u64, u64)> {
    let mut out = Vec::new();
    for (label, h) in [("classic layout (h=1)", 1usize), ("kiwi (h=16)", 16)] {
        let mut engine = preloaded_engine(h, entries, false);
        let before = engine.tree().io_snapshot();
        let _ = engine.tree_mut().secondary_range_delete(0, entries / 7);
        let delta = engine.tree().io_snapshot().since(&before);
        out.push((label.to_string(), delta.page_ios(), delta.pages_dropped));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preloaded_engine_answers_queries() {
        let mut e = preloaded_engine(4, 2_000, false);
        assert!(e.tree_mut().get(100).unwrap().is_some());
        assert!(e.tree_mut().get(5_000).unwrap().is_none());
        assert!(e.tree().disk_entries() > 0);
    }

    #[test]
    fn correlation_changes_full_drop_fraction() {
        let uncorrelated = preloaded_engine(1, 4_000, false);
        let correlated = preloaded_engine(1, 4_000, true);
        let pu = plan_secondary_delete(uncorrelated.tree(), 0, 1_000);
        let pc = plan_secondary_delete(correlated.tree(), 0, 1_000);
        assert!(
            pc.full_drop_fraction() > pu.full_drop_fraction(),
            "correlated {pc:?} vs uncorrelated {pu:?}"
        );
    }

    #[test]
    fn comparison_shows_kiwi_saves_io() {
        let results = secondary_delete_comparison(4_000);
        assert_eq!(results.len(), 2);
        let classic = results[0].1;
        let kiwi = results[1].1;
        assert!(kiwi < classic, "kiwi {kiwi} I/Os should be below classic {classic}");
    }
}
