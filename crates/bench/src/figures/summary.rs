//! Figure 1 (qualitative comparison) and Table 2 (analytical model).

use crate::{apply_all, cell, experiment_config, print_table, EngineSpec};
use lethe_core::baseline::BaselineKind;
use lethe_core::model::{table2, Design, MergeStyle, ModelParams};
use lethe_storage::CostModel;
use lethe_workload::{WorkloadGenerator, WorkloadSpec};

/// Figure 1: a quantitative version of the paper's radar chart — for the
/// state of the art, the state of the art with periodic full compactions,
/// and Lethe, measure lookup cost, delete persistence, space amplification,
/// write amplification and memory footprint on the same delete-heavy
/// workload.
pub fn fig1(ops: u64, lookups: u64) {
    let cfg = experiment_config();
    let value_size = cfg.entry_size - 32;
    let duration = ops * cfg.micros_per_ingest();
    let engines = vec![
        EngineSpec::Baseline(BaselineKind::RocksDbLike),
        EngineSpec::Baseline(BaselineKind::PeriodicFullCompaction { period: duration / 4 }),
        EngineSpec::Lethe { dth_micros: duration / 4, h: 4 },
    ];
    let workload = WorkloadSpec {
        operations: ops,
        key_space: (ops / 2).max(1024),
        value_size,
        update_fraction: 0.90,
        point_lookup_fraction: 0.0,
        point_delete_fraction: 0.10,
        ..Default::default()
    };
    let stream = WorkloadGenerator::new(workload).operations();

    let mut rows = Vec::new();
    for spec in &engines {
        let mut engine = spec.build(cfg.clone()).expect("engine builds");
        apply_all(engine.tree_mut(), &stream, value_size).expect("ingest");
        engine.persist().expect("persist");
        let stats = engine.tree().stats().clone();
        let io = engine.tree().io_snapshot();
        let snapshot = engine.tree().snapshot_contents().expect("snapshot");
        // read phase
        let before = engine.tree().io_snapshot();
        for i in 0..lookups {
            let _ = engine.tree_mut().get((i * 7919) % (ops / 2).max(1024));
        }
        let reads = engine.tree().io_snapshot().since(&before);
        let lookup_cost = reads.pages_read as f64 / lookups.max(1) as f64;
        let throughput = CostModel::default().throughput_ops_per_sec(lookups, &reads);
        let max_tombstone_age_s = snapshot
            .oldest_tombstone_file_age()
            .map(|a| a as f64 / 1.0e6)
            .unwrap_or(0.0);
        rows.push(vec![
            spec.label(),
            cell(lookup_cost),
            cell(throughput),
            cell(max_tombstone_age_s),
            cell(snapshot.space_amplification()),
            cell(stats.write_amplification(io.bytes_written)),
            cell(snapshot.metadata_bytes as f64 / 1024.0),
            stats.compactions.to_string(),
            stats.full_tree_compactions.to_string(),
        ]);
    }
    let header = vec![
        "engine".to_string(),
        "lookup cost (I/Os)".to_string(),
        "read throughput (ops/s)".to_string(),
        "max tombstone age (s)".to_string(),
        "space amp".to_string(),
        "write amp".to_string(),
        "metadata (KiB)".to_string(),
        "compactions".to_string(),
        "full-tree compactions".to_string(),
    ];
    print_table(
        "Figure 1 — state of the art vs state of the art + full compaction vs Lethe (10% deletes)",
        &header,
        &rows,
    );
    println!(
        "\n(read the row pattern against Figure 1: Lethe should match or beat the baseline on lookups,\n\
         bound the max tombstone age by Dth, shrink space amplification, and avoid full-tree compactions\n\
         at the cost of some extra compaction work.)"
    );
}

/// Table 2: the analytical cost model evaluated at the Table 1 reference
/// point, for leveling and tiering.
pub fn print_table2() {
    let params = ModelParams::default();
    for (style, name) in [(MergeStyle::Leveling, "leveling"), (MergeStyle::Tiering, "tiering")] {
        let rows = table2(&params, style);
        let header = vec![
            format!("metric ({name})"),
            "state of the art".to_string(),
            "FADE".to_string(),
            "KiWi".to_string(),
            "Lethe".to_string(),
        ];
        let printable: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut row = vec![r.metric.to_string()];
                row.extend(r.values.iter().map(|v| cell(*v)));
                row
            })
            .collect();
        print_table(
            &format!("Table 2 — analytical comparison at the Table 1 reference point ({name})"),
            &header,
            &printable,
        );
    }
    println!(
        "\ndesign columns: {:?} (FADE bounds delete persistence and shrinks the tree; KiWi\n\
         multiplies lookup cost by h but divides secondary-range-delete cost by h; Lethe combines both)",
        Design::ALL
    );
}
