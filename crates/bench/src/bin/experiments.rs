//! The Lethe experiment harness: one subcommand per figure/table of the
//! paper's evaluation (SIGMOD 2020, §5).
//!
//! ```text
//! cargo run -p lethe-bench --release --bin experiments -- <experiment> [--ops N] [--entries N] [--lookups N]
//!
//! experiments:
//!   fig6a   space amplification vs %deletes
//!   fig6b   #compactions vs %deletes
//!   fig6c   total data written vs %deletes
//!   fig6d   read throughput vs %deletes
//!   fig6e   tombstone age distribution
//!   fig6f   normalized bytes written over time
//!   fig6g   latency vs data size
//!   fig6h   % full page drops vs delete selectivity
//!   fig6i   lookup cost vs delete-tile granularity
//!   fig6j   avg I/Os per operation vs selectivity
//!   fig6k   CPU vs I/O time trade-off
//!   fig6l   sort/delete key correlation
//!   fig1    qualitative comparison (radar chart, quantified)
//!   table2  analytical cost model
//!   all     run everything at the default scale
//! ```
//!
//! All experiments run on the in-memory simulated device with the paper's
//! latency constants (100 µs/page I/O, 80 ns/hash), so they regenerate the
//! *shape* of every figure in seconds; pass larger `--ops`/`--entries` to
//! scale up.

use lethe_bench::figures::{delete_sweep, kiwi, summary};

struct Args {
    experiment: String,
    ops: u64,
    entries: u64,
    lookups: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        ops: 60_000,
        entries: 40_000,
        lookups: 3_000,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--ops" => args.ops = iter.next().and_then(|v| v.parse().ok()).unwrap_or(args.ops),
            "--entries" => {
                args.entries = iter.next().and_then(|v| v.parse().ok()).unwrap_or(args.entries)
            }
            "--lookups" => {
                args.lookups = iter.next().and_then(|v| v.parse().ok()).unwrap_or(args.lookups)
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if args.experiment.is_empty() => args.experiment = other.to_string(),
            other => {
                eprintln!("unrecognised argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    if args.experiment.is_empty() {
        args.experiment = "all".to_string();
    }
    args
}

fn print_usage() {
    eprintln!(
        "usage: experiments <fig6a|fig6b|fig6c|fig6d|fig6e|fig6f|fig6g|fig6h|fig6i|fig6j|fig6k|fig6l|fig1|table2|all> \
         [--ops N] [--entries N] [--lookups N]"
    );
}

fn run(experiment: &str, args: &Args) -> bool {
    match experiment {
        "fig6a" => delete_sweep::fig6a(args.ops, args.lookups),
        "fig6b" => delete_sweep::fig6b(args.ops, args.lookups),
        "fig6c" => delete_sweep::fig6c(args.ops, args.lookups),
        "fig6d" => delete_sweep::fig6d(args.ops, args.lookups),
        "fig6e" => delete_sweep::fig6e(args.ops),
        "fig6f" => delete_sweep::fig6f(args.ops),
        "fig6g" => delete_sweep::fig6g(args.ops),
        "fig6h" => kiwi::fig6h(args.entries),
        "fig6i" => kiwi::fig6i(args.entries, args.lookups),
        "fig6j" => kiwi::fig6j(args.entries / 2, args.lookups.min(2_000)),
        "fig6k" => kiwi::fig6k(args.entries, args.ops.min(30_000)),
        "fig6l" => kiwi::fig6l(args.entries / 2, 200),
        "fig1" => summary::fig1(args.ops, args.lookups),
        "table2" => summary::print_table2(),
        _ => return false,
    }
    true
}

fn main() {
    let args = parse_args();
    let start = std::time::Instant::now();
    if args.experiment == "all" {
        for exp in [
            "table2", "fig1", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g",
            "fig6h", "fig6i", "fig6j", "fig6k", "fig6l",
        ] {
            eprintln!("\n=== running {exp} ===");
            run(exp, &args);
        }
    } else if !run(&args.experiment, &args) {
        eprintln!("unknown experiment: {}", args.experiment);
        print_usage();
        std::process::exit(2);
    }
    eprintln!("\n(completed in {:.1?})", start.elapsed());
}
