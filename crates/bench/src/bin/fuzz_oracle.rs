//! Randomised oracle fuzzer: replays random operation sequences against a
//! `BTreeMap` oracle on a tiered Lethe engine, and greedily shrinks any
//! failing sequence to a minimal reproducer. This complements the proptest
//! suite with an unbounded, long-running search that can be left running:
//!
//! ```text
//! cargo run -p lethe-bench --release --bin fuzz_oracle
//! ```
use lethe_core::LetheBuilder;
use lethe_lsm::config::{LsmConfig, MergePolicy, SecondaryDeleteMode};
use rand::{Rng, SeedableRng};
use rand::rngs::StdRng;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op { Put(u64, u8), Del(u64), DelRange(u64, u64), SecDel(u64, u64), Flush }

fn dk(k: u64, ks: u64) -> u64 { k.wrapping_mul(31) % ks }

fn run(ops: &[Op], ks: u64, verbose: bool) -> Option<u64> {
    let mut cfg = LsmConfig::small_for_test();
    cfg.merge_policy = MergePolicy::Tiering;
    cfg.pages_per_delete_tile = 1;
    cfg.max_pages_per_file = 8;
    cfg.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
    cfg.key_domain = 1 << 16;
    let mut db = LetheBuilder::new().with_config(cfg).delete_persistence_threshold_secs(1.0).build().unwrap();
    let mut oracle: BTreeMap<u64, u8> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Put(k, v) => { db.put(*k, dk(*k, ks), vec![*v; 9]).unwrap(); oracle.insert(*k, *v); }
            Op::Del(k) => { db.delete(*k).unwrap(); oracle.remove(k); }
            Op::DelRange(s, e) => { db.delete_range(*s, *e).unwrap(); let v: Vec<u64> = oracle.range(*s..*e).map(|(k,_)| *k).collect(); for k in v { oracle.remove(&k); } }
            Op::SecDel(s, e) => { db.delete_where_delete_key_in(*s, *e).unwrap(); let v: Vec<u64> = oracle.iter().filter(|(k, _)| dk(**k, ks) >= *s && dk(**k, ks) < *e).map(|(k,_)| *k).collect(); for k in v { oracle.remove(&k); } }
            Op::Flush => { db.persist().unwrap(); }
        }
    }
    db.persist().unwrap();
    for k in 0..ks {
        let exp = oracle.get(&k).map(|v| vec![*v; 9]);
        let got = db.get(k).unwrap().map(|b| b.to_vec());
        if got != exp {
            if verbose {
                println!("MISMATCH key {k}: got {:?} expected {:?}", got.as_ref().map(|v| v[0]), exp.as_ref().map(|v| v[0]));
                println!("files/level: {:?} levels {}", db.tree().files_per_level(), db.tree().level_count());
            }
            return Some(k);
        }
    }
    None
}

fn main() {
    let ks = 64u64;
    for seed in 0..2000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(5..60);
        let ops: Vec<Op> = (0..n).map(|_| {
            match rng.gen_range(0..11) {
                0..=5 => Op::Put(rng.gen_range(0..ks), rng.gen()),
                6..=7 => Op::Del(rng.gen_range(0..ks)),
                8 => { let s = rng.gen_range(0..ks); Op::DelRange(s, s + rng.gen_range(1..16)) }
                9 => { let s = rng.gen_range(0..ks); Op::SecDel(s, s + rng.gen_range(1..16)) }
                _ => Op::Flush,
            }
        }).collect();
        if run(&ops, ks, false).is_some() {
            println!("seed {seed} fails with {} ops; shrinking...", ops.len());
            // greedy shrink
            let mut cur = ops.clone();
            loop {
                let mut improved = false;
                for i in 0..cur.len() {
                    let mut cand = cur.clone();
                    cand.remove(i);
                    if run(&cand, ks, false).is_some() { cur = cand; improved = true; break; }
                }
                if !improved { break; }
            }
            println!("minimal ({} ops): {:?}", cur.len(), cur);
            run(&cur, ks, true);
            return;
        }
    }
    println!("no failure found in 2000 seeds");
}
