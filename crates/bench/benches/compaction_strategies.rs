//! Benchmark: pluggable compaction strategies on the same time-series history.
//!
//! One seeded append-only time-series stream (monotone ticks, gorilla-encoded
//! blocks, interleaved windowed scans) is replayed into three engines that
//! differ only in their compaction strategy:
//!
//! * **leveled** — the default Lethe layout, one run per level;
//! * **size-tiered** — runs accumulate per level and merge `fan_in` at a time;
//! * **date-tiered** — runs merge only within aligned time windows, and
//!   wholly-expired windows are retired as whole files (zero pages read).
//!
//! Reported per engine: write amplification (from the deterministic
//! `TreeStats` byte counters), whole-file drops, ingest rate, and windowed
//! scan throughput over the recent (universally retained) region.
//!
//! Asserted gates (set `LETHE_BENCH_NO_ASSERT=1` to demote to warnings):
//!
//! * always: tiered and date-tiered write amplification strictly below the
//!   leveled baseline on this append-heavy history; the date-tiered engine
//!   retires at least one expired window by whole-file drop while the other
//!   two drop nothing; the expired prefix is unreadable on the date-tiered
//!   engine but intact on the baseline; and all three engines return
//!   byte-identical results for the same recent scan window. These are
//!   counted outcomes, stable on shared runners.
//! * with `LETHE_BENCH_STRICT=1` (reference hardware): each tiered engine's
//!   windowed-scan throughput stays within 5x of the leveled baseline —
//!   extra runs per level must not cost an extra I/O tier. Wall-clock ratios
//!   flake on shared runners, so this only gates strict runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lethe_core::{CompactionStrategy, Lethe, LetheBuilder};
use lethe_workload::timeseries::{encode_block, encode_key, TimeSeriesGenerator, TimeSeriesSpec};
use lethe_workload::Operation;
use std::time::Instant;

/// Appends in the shared history; ticks span `APPENDS * SAMPLES` µs.
const APPENDS: u64 = 3_000;
const SAMPLES: u64 = 32;
/// Aligned window width for the date-tiered ladder, in µs of delete key.
const BASE_WINDOW: u64 = 8_192;
/// Retention horizon for the date-tiered engine. With the logical clock kept
/// in lock-step with the data timeline, every window ending before
/// `MAX_TICK - TTL` is wholly expired by the end of the run.
const TTL: u64 = 32_768;
const MAX_TICK: u64 = APPENDS * SAMPLES;
/// Timed windowed scans over the recent region after ingest.
const SCAN_ROUNDS: u64 = 400;
const SCAN_WINDOW: u64 = 1_024;

fn history() -> Vec<Operation> {
    TimeSeriesGenerator::new(TimeSeriesSpec {
        appends: APPENDS,
        samples_per_append: SAMPLES,
        scan_every: 16,
        window_ticks: SCAN_WINDOW,
        // retention is the engine's job in this bench: the date-tiered
        // strategy retires old windows itself, without workload deletes
        ttl_ticks: None,
        ..TimeSeriesSpec::default()
    })
    .operations()
}

struct Outcome {
    tag: &'static str,
    db: Lethe,
    write_amp: f64,
    whole_file_drops: u64,
    appends_per_sec: f64,
    scans_per_sec: f64,
    /// Full result of one canonical recent-window scan, for the
    /// observational-equivalence gate.
    recent: Vec<(u64, Vec<u8>)>,
}

fn build(strategy: Option<CompactionStrategy>) -> Lethe {
    let mut builder = LetheBuilder::new()
        .buffer(32, 8, 64)
        .size_ratio(4)
        // 1 µs of auto-advanced logical time per ingest: the bench drives
        // the clock itself, in lock-step with the data's tick timeline
        .ingestion_rate(1_000_000)
        .delete_persistence_threshold_secs(1.0);
    if let Some(strategy) = strategy {
        builder = builder.compaction_strategy(strategy);
    }
    builder.build().unwrap()
}

fn run(tag: &'static str, strategy: Option<CompactionStrategy>, history: &[Operation]) -> Outcome {
    let mut db = build(strategy);
    let t0 = Instant::now();
    let mut appends = 0u64;
    for op in history {
        match op {
            Operation::TimeSeriesAppend { series, start_tick, samples } => {
                let block = encode_block(*start_tick, samples);
                db.put(encode_key(*start_tick, *series), *start_tick, block).unwrap();
                // keep logical time in lock-step with the data's timeline so
                // the date-tiered TTL sees windows age out *during* the run
                db.clock().advance_to(start_tick + samples.len() as u64);
                appends += 1;
                if appends.is_multiple_of(64) {
                    db.persist().unwrap();
                }
                if appends.is_multiple_of(256) {
                    db.maintain().unwrap();
                }
            }
            Operation::RangeLookup { start, end } => {
                db.range(*start, *end).unwrap();
            }
            other => unreachable!("the bench history is appends + scans only, got {other:?}"),
        }
    }
    db.persist().unwrap();
    db.maintain().unwrap();
    let appends_per_sec = APPENDS as f64 / t0.elapsed().as_secs_f64();

    // timed windowed scans, sliding over the last ~8.7k ticks — comfortably
    // inside the date-tiered retention horizon, so all engines serve them
    let t0 = Instant::now();
    let mut entries = 0usize;
    for i in 0..SCAN_ROUNDS {
        let end = MAX_TICK - (i % 16) * 512;
        let start = end - SCAN_WINDOW;
        entries += db.range(encode_key(start, 0), encode_key(end, 0)).unwrap().len();
    }
    let scans_per_sec = SCAN_ROUNDS as f64 / t0.elapsed().as_secs_f64();
    assert!(entries > 0, "{tag}: windowed scans returned nothing");

    let recent = db
        .range(encode_key(MAX_TICK - 12_288, 0), encode_key(MAX_TICK, 0))
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, v.to_vec()))
        .collect();
    let stats = db.stats();
    Outcome {
        tag,
        db,
        write_amp: stats.write_amp(),
        whole_file_drops: stats.whole_file_drops,
        appends_per_sec,
        scans_per_sec,
        recent,
    }
}

fn bench_compaction_strategies(c: &mut Criterion) {
    let no_assert = std::env::var_os("LETHE_BENCH_NO_ASSERT").is_some();
    let strict = std::env::var_os("LETHE_BENCH_STRICT").is_some();
    let history = history();

    let leveled = run("leveled", None, &history);
    let tiered =
        run("size-tiered", Some(CompactionStrategy::SizeTiered { fan_in: 4 }), &history);
    let dated = run(
        "date-tiered",
        Some(CompactionStrategy::DateTiered {
            base_window_micros: BASE_WINDOW,
            fan_in: 4,
            ttl_micros: Some(TTL),
        }),
        &history,
    );

    for o in [&leveled, &tiered, &dated] {
        println!(
            "compaction_strategies: {:<11} write amp {:>5.2}, {:>2} whole-file drops, \
             ingest {:>7.0} appends/s, windowed scans {:>6.0}/s",
            o.tag, o.write_amp, o.whole_file_drops, o.appends_per_sec, o.scans_per_sec
        );
    }

    // ---------------------------------------------- deterministic gates
    let gate = |ok: bool, msg: String| {
        if no_assert {
            if !ok {
                println!("WARN: {msg}");
            }
        } else {
            assert!(ok, "{msg}");
        }
    };
    gate(
        tiered.write_amp < leveled.write_amp,
        format!(
            "size-tiered write amp must be strictly below leveled on an append-heavy \
             history: {:.2} vs {:.2}",
            tiered.write_amp, leveled.write_amp
        ),
    );
    gate(
        dated.write_amp < leveled.write_amp,
        format!(
            "date-tiered write amp must be strictly below leveled: {:.2} vs {:.2}",
            dated.write_amp, leveled.write_amp
        ),
    );
    gate(
        dated.whole_file_drops >= 1,
        format!("date-tiered must retire >= 1 expired window, got {}", dated.whole_file_drops),
    );
    gate(
        leveled.whole_file_drops == 0 && tiered.whole_file_drops == 0,
        format!(
            "only the date-tiered engine has a TTL, yet leveled dropped {} and \
             size-tiered {}",
            leveled.whole_file_drops, tiered.whole_file_drops
        ),
    );
    // the expired prefix is gone on the date-tiered engine, intact on the
    // baseline: retention by retirement, not by deletes
    let expired = dated.db.range(encode_key(0, 0), encode_key(BASE_WINDOW / 2, 0)).unwrap();
    gate(
        expired.is_empty(),
        format!("date-tiered must have retired the first window, found {} entries", expired.len()),
    );
    let kept = leveled.db.range(encode_key(0, 0), encode_key(BASE_WINDOW / 2, 0)).unwrap();
    gate(!kept.is_empty(), "the leveled baseline must still hold the whole history".into());
    // same recent window, byte-identical answers on all three engines
    gate(
        leveled.recent == tiered.recent && leveled.recent == dated.recent,
        format!(
            "recent-window scans diverged: leveled {} entries, size-tiered {}, \
             date-tiered {}",
            leveled.recent.len(),
            tiered.recent.len(),
            dated.recent.len()
        ),
    );

    // -------------------------------- wall-clock bars, strict runs only
    for o in [&tiered, &dated] {
        let ratio = leveled.scans_per_sec / o.scans_per_sec;
        if strict && !no_assert {
            assert!(
                ratio <= 5.0,
                "{} windowed scans must stay within 5x of leveled, got {ratio:.2}x \
                 ({:.0} vs {:.0} scans/s)",
                o.tag,
                o.scans_per_sec,
                leveled.scans_per_sec
            );
        } else if ratio > 5.0 {
            println!(
                "WARN: {} windowed-scan throughput {ratio:.2}x below leveled \
                 (gated only under LETHE_BENCH_STRICT=1)",
                o.tag
            );
        }
    }

    // criterion smoke: one recent windowed scan per strategy
    let mut group = c.benchmark_group("compaction_strategies");
    group.sample_size(20);
    let mut dbs = [("leveled", leveled.db), ("size_tiered", tiered.db)];
    for (name, db) in &mut dbs {
        group.bench_function(format!("windowed_scan_{name}"), |b| {
            b.iter(|| db.range(encode_key(MAX_TICK - SCAN_WINDOW, 0), encode_key(MAX_TICK, 0)))
        });
    }
    group.bench_function("windowed_scan_date_tiered", |b| {
        b.iter(|| dated.db.range(encode_key(MAX_TICK - SCAN_WINDOW, 0), encode_key(MAX_TICK, 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_compaction_strategies);
criterion_main!(benches);
