//! Benchmark: MVCC snapshot read overhead and online checkpoint throughput.
//!
//! Three measurements around the snapshot subsystem:
//!
//! * **plain vs snapshot reads** — the same seeded point-lookup stream served
//!   by the live store, by one long-lived [`Snapshot`] handle, and by a fresh
//!   open-read-drop snapshot per lookup. The long-lived handle prices the
//!   MVCC read path itself (pinned versions + frozen buffers); the churn run
//!   prices `snapshot()`'s all-shard lock sweep on top.
//! * **checkpoint under live writers** — `checkpoint()` streams a pinned
//!   point-in-time image to disk while writer threads keep mutating the
//!   store; reported as entries/s of checkpoint throughput.
//!
//! Asserted gates (set `LETHE_BENCH_NO_ASSERT=1` to demote to warnings):
//!
//! * always: the checkpoint taken under churn restores to *exactly* the
//!   fence image — every preloaded key at its preload version, none of the
//!   concurrent overwrites. This is a counted outcome, stable on shared
//!   runners.
//! * with `LETHE_BENCH_STRICT=1` (reference hardware): reads through a held
//!   snapshot stay within 3x of plain reads — the MVCC path adds a pointer
//!   hop, not an extra I/O tier. Wall-clock ratios flake on shared runners,
//!   so this only gates strict runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lethe_core::{Lethe, ShardedLethe, ShardedLetheBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

const KEYS: u64 = 40_000;
const LOOKUPS: u64 = 60_000;
const CHURN_OPENS: u64 = 2_000;

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lethe-snap-bench-{tag}-{}-{n}", std::process::id()))
}

fn preloaded() -> ShardedLethe {
    let db = ShardedLetheBuilder::new()
        .shards(4)
        .buffer(64, 8, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(3600.0)
        .build()
        .unwrap();
    for k in 0..KEYS {
        db.put(k, k % 365, value(k, 1)).unwrap();
    }
    db.persist().unwrap();
    db
}

fn value(key: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 64];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

/// Same seeded lookup stream through `read`; returns lookups per second.
fn timed_lookups(mut read: impl FnMut(u64)) -> f64 {
    let mut rng = StdRng::seed_from_u64(0x54A9);
    let t0 = Instant::now();
    for _ in 0..LOOKUPS {
        read(rng.gen_range(0..KEYS));
    }
    LOOKUPS as f64 / t0.elapsed().as_secs_f64()
}

fn bench_snapshot(c: &mut Criterion) {
    let no_assert = std::env::var_os("LETHE_BENCH_NO_ASSERT").is_some();
    let strict = std::env::var_os("LETHE_BENCH_STRICT").is_some();
    let db = preloaded();

    // -------------------------------------------- read-path overhead
    let plain = timed_lookups(|k| {
        db.get(k).unwrap().expect("preloaded key");
    });
    let held = db.snapshot();
    let snapped = timed_lookups(|k| {
        held.get(k).unwrap().expect("preloaded key");
    });
    drop(held);
    // open-read-drop: prices the all-shard lock sweep of snapshot()
    let mut rng = StdRng::seed_from_u64(0x54AA);
    let t0 = Instant::now();
    for _ in 0..CHURN_OPENS {
        let snap = db.snapshot();
        snap.get(rng.gen_range(0..KEYS)).unwrap().expect("preloaded key");
    }
    let churn = CHURN_OPENS as f64 / t0.elapsed().as_secs_f64();
    let overhead = plain / snapped;
    println!(
        "snapshot: plain {plain:>9.0} reads/s, held snapshot {snapped:>9.0} reads/s \
         ({overhead:.2}x overhead), open-read-drop {churn:>7.0} snapshots/s"
    );
    if strict && !no_assert {
        assert!(
            overhead <= 3.0,
            "reads through a held snapshot must stay within 3x of plain reads, \
             got {overhead:.2}x ({snapped:.0} vs {plain:.0} reads/s)"
        );
    } else if overhead > 3.0 {
        println!(
            "WARN: held-snapshot read overhead {overhead:.2}x above the 3x reference bar \
             (gated only under LETHE_BENCH_STRICT=1)"
        );
    }

    // -------------------------------- checkpoint throughput, writers live
    let fence = db.snapshot();
    let dir = unique_dir("ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let stop = AtomicBool::new(false);
    let (marker, elapsed) = std::thread::scope(|s| {
        let db = &db;
        let stop = &stop;
        for t in 0..4u64 {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC4A7 ^ t);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..KEYS);
                    db.put(k, k % 365, value(k, 2)).unwrap();
                }
            });
        }
        let t0 = Instant::now();
        let marker = db.checkpoint_at(&fence, &dir).unwrap();
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        (marker, elapsed)
    });
    println!(
        "snapshot: checkpoint of {KEYS} keys under 4 live writers in {:.2}s \
         ({:.0} entries/s, fence seqnum {})",
        elapsed.as_secs_f64(),
        KEYS as f64 / elapsed.as_secs_f64(),
        marker.fence,
    );

    // the always-on gate: the image is the fence, not the churn
    let restored = Lethe::restore(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(0x9E57);
    let mut torn = 0u64;
    for _ in 0..2_000 {
        let k = rng.gen_range(0..KEYS);
        let got = restored.get(k).unwrap().expect("restored checkpoint lost a key");
        if got.as_ref() != value(k, 1).as_slice() {
            torn += 1;
        }
    }
    if !no_assert {
        assert_eq!(
            torn, 0,
            "a checkpoint under churn must restore the fence image exactly \
             ({torn}/2000 sampled keys showed post-fence writes)"
        );
    } else if torn > 0 {
        println!("WARN: {torn}/2000 restored keys showed post-fence writes");
    }
    drop(restored);
    drop(fence);
    let _ = std::fs::remove_dir_all(&dir);

    // criterion smoke: the three read paths, one lookup at a time
    let mut group = c.benchmark_group("snapshot");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    group.bench_function("plain_get", |b| {
        b.iter(|| db.get(rng.gen_range(0..KEYS)).unwrap())
    });
    let held = db.snapshot();
    group.bench_function("held_snapshot_get", |b| {
        b.iter(|| held.get(rng.gen_range(0..KEYS)).unwrap())
    });
    group.bench_function("open_read_drop", |b| {
        b.iter(|| db.snapshot().get(rng.gen_range(0..KEYS)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
