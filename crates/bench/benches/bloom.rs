//! Micro-benchmark: Bloom filter construction and probing (the CPU side of
//! the Figure 6(K) trade-off — one hash digest per probe).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lethe_storage::BloomFilter;

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    let n = 10_000usize;

    group.bench_function("insert_10k_keys", |b| {
        b.iter(|| {
            let mut bf = BloomFilter::new(n, 10.0);
            for k in 0..n as u64 {
                bf.insert(black_box(k));
            }
            bf
        })
    });

    let mut bf = BloomFilter::new(n, 10.0);
    for k in 0..n as u64 {
        bf.insert(k);
    }
    group.bench_function("probe_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % n as u64;
            black_box(bf.may_contain(black_box(k)))
        })
    });
    group.bench_function("probe_miss", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(bf.may_contain(black_box(n as u64 * 10 + k)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bloom);
criterion_main!(benches);
