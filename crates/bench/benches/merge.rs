//! Micro-benchmark: sort-merge with tombstone semantics (the inner loop of
//! every flush and compaction).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lethe_lsm::merge::merge_entries;
use lethe_storage::Entry;

fn runs(num_runs: usize, per_run: usize, delete_every: u64) -> Vec<Vec<Entry>> {
    (0..num_runs)
        .map(|r| {
            (0..per_run as u64)
                .map(|k| {
                    let key = k * 2 + r as u64;
                    let seq = (r * per_run) as u64 + k;
                    if delete_every > 0 && key.is_multiple_of(delete_every) {
                        Entry::point_tombstone(key, seq)
                    } else {
                        Entry::put(key, key, seq, Bytes::from(vec![0u8; 64]))
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for &(num_runs, per_run) in &[(2usize, 2_000usize), (8, 1_000)] {
        group.bench_function(format!("{num_runs}_runs_x_{per_run}"), |b| {
            b.iter(|| {
                black_box(merge_entries(black_box(runs(num_runs, per_run, 10)), vec![], false))
            })
        });
        group.bench_function(format!("{num_runs}_runs_x_{per_run}_last_level"), |b| {
            b.iter(|| {
                black_box(merge_entries(black_box(runs(num_runs, per_run, 10)), vec![], true))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
