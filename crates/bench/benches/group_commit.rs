//! Benchmark: durable write throughput under group commit.
//!
//! The acceptance metric of the group-commit work. A durable store under
//! `SyncPolicy::Always` ("logged before acknowledged" holds against power
//! failures) is hammered by 1, 8 and 64 writer threads. The **baseline** is
//! a single writer issuing plain puts: writes arrive one at a time and each
//! pays its own fsync — exactly the pre-group-commit write path. The
//! concurrent runs use a mixed workload (puts plus small atomic
//! `WriteBatch`es); their writers pile up on the shard's commit queue while
//! the leader fsyncs, so whole convoys of records share one durability
//! barrier.
//!
//! Asserted gates (set `LETHE_BENCH_NO_ASSERT=1` to demote to warnings):
//!
//! * the measured fsync count at 8 threads is sublinear in the record
//!   count (≤ half the acknowledged writes — each fsync covers ≥ 2 records
//!   on average, where the baseline pays ~1 per record). Fsync counts are
//!   a counted outcome of convoy formation, not a wall-clock measurement,
//!   so this gate is stable on shared CI runners;
//! * with `LETHE_BENCH_STRICT=1` (reference hardware), additionally that
//!   durable throughput at 8 threads is ≥ 3× the 1-thread per-record-fsync
//!   baseline. The speedup is always measured and reported, but wall-clock
//!   thread-timing thresholds flake on shared runners, so it only gates
//!   strict runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lethe_core::{ShardedLethe, ShardedLetheBuilder, WriteBatch};
use lethe_storage::SyncPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Total acknowledged write *records* per timed run, split across the
/// writer threads (batches count every operation they carry).
const RECORDS: u64 = 6_400;
const KEY_SPACE: u64 = 50_000;
/// One in `BATCH_EVERY` submissions is a 4-op atomic batch.
const BATCH_EVERY: u64 = 10;
const BATCH_OPS: u64 = 4;

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lethe-gc-bench-{tag}-{}-{n}", std::process::id()))
}

fn open_durable(dir: &PathBuf) -> ShardedLethe {
    // one shard: coalescing across writer threads, not shard parallelism,
    // must carry the speedup
    // the buffer holds the whole run so flushes/compactions (which fsync
    // and compete for CPU) stay out of the timed window — this bench
    // isolates WAL group commit, not the flush pipeline
    ShardedLetheBuilder::new()
        .shards(1)
        .buffer(512, 16, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(3600.0)
        .wal_sync_policy(SyncPolicy::Always)
        .open(dir)
        .unwrap()
}

/// Runs the durable write workload on `threads` writers and returns
/// `(throughput records/s, fsyncs, records)`. The single-writer baseline
/// issues plain puts only (true per-record fsync); concurrent runs mix in
/// atomic batches.
fn durable_run(threads: u64) -> (f64, u64, u64) {
    let with_batches = threads > 1;
    let dir = unique_dir("run");
    let _ = std::fs::remove_dir_all(&dir);
    let db = open_durable(&dir);
    let before = db.io_snapshot();
    let per_thread = RECORDS / threads;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x6C0_FFEE ^ t);
                let mut written = 0u64;
                while written < per_thread {
                    if with_batches
                        && rng.gen_range(0..BATCH_EVERY) == 0
                        && written + BATCH_OPS <= per_thread
                    {
                        let mut batch = WriteBatch::new();
                        for _ in 0..BATCH_OPS {
                            let k = rng.gen_range(0..KEY_SPACE);
                            batch.put(k, k % 365, vec![0u8; 64]);
                        }
                        db.write(batch).unwrap();
                        written += BATCH_OPS;
                    } else {
                        let k = rng.gen_range(0..KEY_SPACE);
                        db.put(k, k % 365, vec![0u8; 64]).unwrap();
                        written += 1;
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let records = threads * (RECORDS / threads);
    let fsyncs = db.io_snapshot().since(&before).fsyncs;
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (records as f64 / elapsed.as_secs_f64(), fsyncs, records)
}

fn bench_group_commit(c: &mut Criterion) {
    let mut results = Vec::new();
    for threads in [1u64, 8, 64] {
        // best-of-two: convoy formation is deterministic (fsync counts
        // repeat run to run), so the spread is wall-clock noise — take the
        // cleaner run for the gate
        let (tput, fsyncs, records) =
            std::cmp::max_by(durable_run(threads), durable_run(threads), |a, b| {
                a.0.total_cmp(&b.0)
            });
        println!(
            "group_commit: {threads:>2} writer(s): {tput:>9.0} records/s, \
             {fsyncs} fsyncs for {records} records ({:.2} records/fsync)",
            records as f64 / fsyncs.max(1) as f64
        );
        results.push((threads, tput, fsyncs, records));
    }
    let (_, base_tput, base_fsyncs, base_records) = results[0];
    let (_, tput8, fsyncs8, records8) = results[1];
    let speedup = tput8 / base_tput;
    println!(
        "group_commit: 8-thread speedup {speedup:.1}x over the per-record-fsync baseline \
         (baseline {:.2} records/fsync, 8 threads {:.2} records/fsync)",
        base_records as f64 / base_fsyncs.max(1) as f64,
        records8 as f64 / fsyncs8.max(1) as f64,
    );
    // the acceptance gates (measured ~4.5-5x and ~5 records/fsync at 8
    // threads on the single-core reference machine; the 3x and
    // 2-records-per-fsync bars leave headroom). The fsync-coalescing gate
    // is a deterministic count and always asserts; the throughput gate is
    // wall-clock and only asserts under LETHE_BENCH_STRICT=1 (reference
    // hardware) — on shared CI runners it is informational
    let no_assert = std::env::var_os("LETHE_BENCH_NO_ASSERT").is_some();
    let strict = std::env::var_os("LETHE_BENCH_STRICT").is_some();
    if !no_assert {
        assert!(
            fsyncs8 * 2 <= records8,
            "group commit must coalesce fsyncs sublinearly in the record count: \
             {fsyncs8} fsyncs for {records8} records"
        );
    } else if fsyncs8 * 2 > records8 {
        println!("WARN: {fsyncs8} fsyncs for {records8} records is not sublinear");
    }
    if strict && !no_assert {
        assert!(
            speedup >= 3.0,
            "durable throughput at 8 threads must be >= 3x the per-record-fsync \
             baseline, got {speedup:.1}x ({tput8:.0} vs {base_tput:.0} records/s)"
        );
    } else if speedup < 3.0 {
        println!(
            "WARN: 8-thread speedup {speedup:.1}x below the 3x reference bar \
             (gated only under LETHE_BENCH_STRICT=1)"
        );
    }

    // criterion smoke: one durable group-committed put at a time
    let dir = unique_dir("criterion");
    let _ = std::fs::remove_dir_all(&dir);
    let db = open_durable(&dir);
    let mut group = c.benchmark_group("group_commit");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    group.bench_function("durable_put_always", |b| {
        b.iter(|| db.put(rng.gen_range(0..KEY_SPACE), 1, vec![0u8; 64]).unwrap())
    });
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
