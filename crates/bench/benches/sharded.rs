//! Benchmark: throughput scaling of the sharded concurrent front-end.
//!
//! A fixed mixed workload (60% puts / 30% point lookups / 10% point deletes)
//! is driven from 4 client threads against `ShardedLethe` configured with 1,
//! 2, 4 and 8 shards. With one shard every operation serialises on a single
//! lock; with more shards, operations on different shards proceed in
//! parallel, so wall-clock time per run should drop as the shard count grows
//! toward the thread count.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lethe_core::{ShardedLethe, ShardedLetheBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 4_000;
const KEY_SPACE: u64 = 40_000;

fn build(shards: usize) -> ShardedLethe {
    let db = ShardedLetheBuilder::new()
        .shards(shards)
        .buffer(32, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(30.0)
        .build()
        .unwrap();
    // preload so lookups hit data
    for k in 0..KEY_SPACE / 4 {
        db.put(k * 4, k % 365, vec![0u8; 64]).unwrap();
    }
    db.persist().unwrap();
    db
}

fn mixed_run(db: &ShardedLethe) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF ^ t);
                for _ in 0..OPS_PER_THREAD {
                    let k = rng.gen_range(0..KEY_SPACE);
                    match rng.gen_range(0..10u32) {
                        0..=5 => db.put(k, k % 365, vec![0u8; 64]).map(|_| ()).unwrap(),
                        6..=8 => db.get(k).map(|_| ()).unwrap(),
                        _ => db.delete(k).map(|_| ()).unwrap(),
                    }
                }
            });
        }
    });
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_mixed_4threads");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter_batched(|| build(shards), |db| mixed_run(&db), BatchSize::PerIteration)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
