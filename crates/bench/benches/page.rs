//! Micro-benchmark: page construction, in-page binary search, and
//! partitioning by delete key (the unit of work of KiWi partial page drops).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lethe_storage::{Entry, Page};

fn make_page(entries: usize) -> Page {
    Page::new(
        (0..entries as u64)
            .map(|k| Entry::put(k * 3, (k * 37) % 1000, k + 1, Bytes::from(vec![0u8; 64])))
            .collect(),
    )
}

fn bench_page(c: &mut Criterion) {
    let mut group = c.benchmark_group("page");
    group.bench_function("build_64_entries", |b| b.iter(|| make_page(black_box(64))));

    let page = make_page(64);
    group.bench_function("point_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 3) % (64 * 3);
            black_box(page.get(black_box(k)))
        })
    });
    group.bench_function("range_scan", |b| {
        b.iter(|| black_box(page.range(black_box(30), black_box(120))).len())
    });
    group.bench_function("partition_by_delete_key", |b| {
        b.iter(|| black_box(page.partition_by_delete_key(black_box(100), black_box(600))))
    });
    group.bench_function("encode_decode", |b| {
        b.iter(|| Page::decode(black_box(page.encode())).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_page);
criterion_main!(benches);
