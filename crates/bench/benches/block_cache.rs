//! Benchmark: the block cache on the durable read path.
//!
//! Three measurements against file-backed (durable) stores:
//!
//! 1. **Cold vs warm point reads** — uncached baseline throughput (every
//!    `get` pays a positional device read plus a page decode) against a
//!    cache-enabled store after a warming pass (every `get` is a hash lookup
//!    plus an `Arc` clone). CI asserts the headline claim: **warm reads are
//!    ≥ 3× the uncached baseline**.
//! 2. **Multi-threaded read scaling** — aggregate `get` throughput at 1 vs 4
//!    reader threads on the *uncached* store, i.e. the pure miss path. Before
//!    the positional-read rework every reader serialised behind one
//!    `Mutex<File>` seek+read; with `pread` there is no shared lock to queue
//!    on, so aggregate throughput must grow with reader count (asserted only
//!    when the machine actually has ≥ 4 CPUs).
//! 3. A criterion smoke sample of the warm hit path.
//!
//! Set `LETHE_BENCH_NO_ASSERT=1` to demote the wall-clock gates to warnings.

use criterion::{criterion_group, criterion_main, Criterion};
use lethe_core::{ShardedLethe, ShardedLetheBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const KEYS: u64 = 4_000;
/// Point reads per single-threaded measurement pass.
const READS: u64 = 2 * KEYS;
/// Point reads issued by every thread of the scaling measurement.
const READS_PER_THREAD: u64 = KEYS;

fn open_store(dir: &std::path::Path, cache_bytes: usize) -> ShardedLethe {
    // realistic page geometry (8 × 128 B entries per page): a miss pays the
    // pread *and* a full page decode, which is exactly the cost a hit skips
    let db = ShardedLetheBuilder::new()
        .shards(2)
        .buffer(32, 8, 128)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(3600.0)
        .wal_sync_policy(lethe_storage::SyncPolicy::OnFlush)
        .block_cache_bytes(cache_bytes)
        .open(dir)
        .unwrap();
    for k in 0..KEYS {
        db.put(k, k % 365, vec![0u8; 128]).unwrap();
    }
    db.persist().unwrap();
    db
}

/// Sequential random point reads, returning ops/second.
fn read_throughput(db: &ShardedLethe, seed: u64, reads: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    for _ in 0..reads {
        let k = rng.gen_range(0..KEYS);
        assert!(db.get(k).unwrap().is_some(), "preloaded key {k} missing");
    }
    reads as f64 / t0.elapsed().as_secs_f64()
}

/// Aggregate ops/second of `threads` concurrent readers.
fn concurrent_read_throughput(db: &ShardedLethe, threads: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5CA1E + t as u64);
                for _ in 0..READS_PER_THREAD {
                    let k = rng.gen_range(0..KEYS);
                    assert!(db.get(k).unwrap().is_some(), "preloaded key {k} missing");
                }
            });
        }
    });
    (threads as u64 * READS_PER_THREAD) as f64 / t0.elapsed().as_secs_f64()
}

fn gate(ok: bool, msg: String) {
    if std::env::var_os("LETHE_BENCH_NO_ASSERT").is_none() {
        assert!(ok, "{msg}");
    } else if !ok {
        println!("WARN: {msg}");
    }
}

fn bench_block_cache(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("lethe-bcache-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let uncached = open_store(&base.join("uncached"), 0);
    let cached = open_store(&base.join("cached"), 64 << 20);

    // 1. cold (uncached baseline) vs warm (cache-resident working set)
    let cold_tput = read_throughput(&uncached, 0xC01D, READS);
    read_throughput(&cached, 0x3A97, READS); // warming pass
    let before = cached.io_snapshot();
    let warm_tput = read_throughput(&cached, 0x3A98, READS);
    let hits = cached.io_snapshot().since(&before);
    let speedup = warm_tput / cold_tput;
    let snap = cached.cache_snapshot().expect("cached store must expose its cache");
    println!(
        "block_cache: uncached {cold_tput:.0} gets/s | warm {warm_tput:.0} gets/s | \
         speedup {speedup:.1}x | measured-pass hit rate {:.1}% | resident {} pages / {} bytes \
         (evictions {})",
        hits.cache_hit_rate() * 100.0,
        snap.pages_resident,
        snap.bytes_resident,
        snap.evictions,
    );
    gate(
        speedup >= 3.0,
        format!("warm point reads must be >= 3x the uncached baseline, got {speedup:.1}x"),
    );
    gate(
        hits.cache_hit_rate() > 0.99,
        format!(
            "a 64 MiB cache must hold the whole working set, hit rate {:.3}",
            hits.cache_hit_rate()
        ),
    );

    // 2. multi-threaded scaling on the uncached (pure miss) path: with
    // positional reads there is no file mutex for readers to queue on
    let solo = concurrent_read_throughput(&uncached, 1);
    let four = concurrent_read_throughput(&uncached, 4);
    let scaling = four / solo;
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "block_cache: uncached read scaling 1->4 threads: {solo:.0} -> {four:.0} gets/s \
         ({scaling:.2}x, {cpus} CPUs)"
    );
    if cpus >= 4 {
        gate(
            scaling >= 1.4,
            format!("durable reads must scale with reader count, got {scaling:.2}x on {cpus} CPUs"),
        );
    }

    // 3. criterion smoke: the warm hit path
    let mut group = c.benchmark_group("block_cache");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(11);
    group.bench_function("get_warm_hit", |b| {
        b.iter(|| cached.get(rng.gen_range(0..KEYS)).unwrap())
    });
    group.finish();

    drop(uncached);
    drop(cached);
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench_block_cache);
criterion_main!(benches);
