//! Benchmark: the streaming range-scan path.
//!
//! Four measurements:
//!
//! 1. **Long scan, streaming vs seed path** — a full scan of the store
//!    through the cursor stack (`TreeReader::range`, which drains the heap
//!    merge) against a faithful reconstruction of the seed's
//!    materialise-and-resort path (every overlapping table's entries
//!    collected into vectors, concatenated, re-sorted and deduplicated via
//!    `merge_entries`). Reported, with a no-regression floor gate.
//! 2. **Paged long scan** — a paging client opens a scan over the whole key
//!    space but consumes only the first page (`iter_range().take(k)`). The
//!    seed path must materialise everything regardless; the cursor stack
//!    stops decoding after the first tiles. CI asserts a large multiple.
//! 3. **Warm vs cold block cache** — the same long scan against a durable
//!    store, first with an empty cache (every page is a device read), then
//!    warm (reported; device-speed dependent, so not gated).
//! 4. **1 vs 4 shards** — `ShardedLethe::iter_range` draining the k-way
//!    shard merge (criterion samples; short and long scans).
//!
//! Set `LETHE_BENCH_NO_ASSERT=1` to demote the wall-clock gates to warnings.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use lethe_core::{Lethe, LetheBuilder, ShardedLethe, ShardedLetheBuilder};
use lethe_lsm::merge::merge_entries;
use lethe_storage::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const KEYS: u64 = 100_000;
const PAGE: usize = 1_024;
const VALUE: usize = 64;

fn builder() -> LetheBuilder {
    LetheBuilder::new()
        .buffer(64, 8, VALUE)
        .size_ratio(6)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(3600.0)
}

fn populate(db: &mut Lethe) {
    for k in 0..KEYS {
        db.put(k, k % 4096, vec![0u8; VALUE]).unwrap();
    }
    db.persist().unwrap();
}

/// The seed read path, reconstructed faithfully: materialise every
/// overlapping table's in-range entries, concatenate, re-sort, deduplicate
/// and tombstone-resolve via the materialising merge. (The write buffer is
/// empty in this bench — the store is persisted — so the disk tables are
/// the entire seed input set, exactly as they were for the seed's `range`.)
fn seed_path_range(db: &Lethe, lo: u64, hi: u64) -> Vec<(u64, Bytes)> {
    let backend = db.tree().backend().clone();
    let mut inputs: Vec<Vec<Entry>> = Vec::new();
    let mut rts: Vec<Entry> = Vec::new();
    for level in db.tree().levels() {
        for run in &level.runs {
            for table in run.overlapping_range(lo, hi) {
                inputs.push(table.range_scan(lo, hi, backend.as_ref()).unwrap());
                rts.extend(table.range_tombstones.iter().cloned());
            }
        }
    }
    let merged = merge_entries(inputs, rts, true);
    merged
        .entries
        .into_iter()
        .filter(|e| e.sort_key >= lo && e.sort_key < hi)
        .map(|e| (e.sort_key, e.value))
        .collect()
}

fn gate(ok: bool, msg: String) {
    if std::env::var_os("LETHE_BENCH_NO_ASSERT").is_none() {
        assert!(ok, "{msg}");
    } else if !ok {
        println!("WARN: {msg}");
    }
}

/// Best-of-n wall-clock of `f`, in seconds.
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_range_scan(c: &mut Criterion) {
    let mut db = builder().build().unwrap();
    populate(&mut db);

    // 1. long scan: streaming heap merge vs materialise-and-resort
    let streamed = db.range(0, KEYS).unwrap();
    let seeded = seed_path_range(&db, 0, KEYS);
    assert_eq!(streamed, seeded, "the two paths must agree before being timed");
    assert_eq!(streamed.len(), KEYS as usize);
    let t_stream = best_of(5, || db.range(0, KEYS).unwrap());
    let t_seed = best_of(5, || seed_path_range(&db, 0, KEYS));
    let long_speedup = t_seed / t_stream;
    println!(
        "range_scan: long scan ({KEYS} keys) streaming {:.1} ms | seed path {:.1} ms | {long_speedup:.2}x",
        t_stream * 1e3,
        t_seed * 1e3,
    );
    // the full-drain ratio is reported (typically ~1.1-1.3x: same page
    // reads, cheaper merge) but only floor-gated — a hard >1x assertion on
    // two ~20 ms wall-clock samples would flake on noisy shared runners.
    // The enforceable streaming win is the paged gate below, where the
    // seed path's obligatory materialisation costs real work.
    gate(
        long_speedup >= 0.9,
        format!(
            "streaming long scans regressed below the materialise-and-resort path: {long_speedup:.2}x"
        ),
    );

    // 2. paged long scan: open [0, KEYS) but consume one page
    let t_paged = best_of(5, || {
        let iter = db.iter_range(0, KEYS).unwrap();
        let page: Vec<(u64, Bytes)> = iter.take(PAGE).map(|r| r.unwrap()).collect();
        assert_eq!(page.len(), PAGE);
        page
    });
    let paged_speedup = t_seed / t_paged;
    println!(
        "range_scan: paged long scan (first {PAGE} of {KEYS}) streaming {:.2} ms | \
         seed path must materialise all: {paged_speedup:.1}x",
        t_paged * 1e3,
    );
    gate(
        paged_speedup >= 5.0,
        format!("a paged long scan must be >= 5x the materialising path, got {paged_speedup:.1}x"),
    );

    // 3. warm vs cold block cache on a durable store (reported, not gated:
    // device-speed dependent)
    let dir = std::env::temp_dir().join(format!("lethe-rscan-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut durable = builder()
            .wal_sync_policy(lethe_storage::SyncPolicy::OnFlush)
            .block_cache_bytes(256 << 20)
            .open(&dir)
            .unwrap();
        populate(&mut durable);
        let t_cold = best_of(1, || durable.range(0, KEYS).unwrap());
        let t_warm = best_of(3, || durable.range(0, KEYS).unwrap());
        let snap = durable.cache_snapshot().expect("cache configured");
        println!(
            "range_scan: durable long scan cold {:.1} ms | warm {:.1} ms ({:.2}x; {} pages resident)",
            t_cold * 1e3,
            t_warm * 1e3,
            t_cold / t_warm,
            snap.pages_resident,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // 4. criterion samples: short scans + sharded 1 vs 4
    let mut group = c.benchmark_group("range_scan");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0x5CA7);
    group.bench_function("short_scan_256", |b| {
        b.iter(|| {
            let lo = rng.gen_range(0..KEYS - 256);
            db.range(lo, lo + 256).unwrap()
        })
    });
    group.bench_function("paged_stream_1k_of_all", |b| {
        b.iter(|| {
            db.iter_range(0, KEYS)
                .unwrap()
                .take(PAGE)
                .map(|r| r.unwrap())
                .collect::<Vec<_>>()
        })
    });
    for shards in [1usize, 4] {
        let sharded: ShardedLethe = ShardedLetheBuilder::from_builder(builder())
            .shards(shards)
            .build()
            .unwrap();
        for k in 0..KEYS {
            sharded.put(k, k % 4096, vec![0u8; VALUE]).unwrap();
        }
        sharded.persist().unwrap();
        assert_eq!(sharded.iter_range(0, KEYS).count(), KEYS as usize);
        group.bench_function(format!("sharded_{shards}_long_stream"), |b| {
            b.iter(|| {
                let mut n = 0u64;
                for item in sharded.iter_range(0, KEYS) {
                    item.unwrap();
                    n += 1;
                }
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_scan);
criterion_main!(benches);
