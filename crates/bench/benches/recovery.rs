//! Benchmark: crash-recovery (reopen) time as a function of data volume.
//!
//! A durable store is populated once per size and then repeatedly reopened.
//! Each reopen performs the full recovery path: scan the data file to
//! rebuild the page index, fold the manifest's edit log, rebuild every
//! file's Bloom filters and fence pointers from its pages, release
//! unreferenced pages, and replay the (empty) WAL. Reopen time should scale
//! roughly linearly with the volume of live data; a regression here means
//! restarts of a production-sized store got slower.

use criterion::{criterion_group, criterion_main, Criterion};
use lethe_core::LetheBuilder;
use std::path::PathBuf;

const SIZES: [u64; 3] = [2_000, 8_000, 32_000];

fn builder() -> LetheBuilder {
    LetheBuilder::new()
        .buffer(32, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(30.0)
}

/// Populates (once) a durable store with `entries` puts plus a sprinkle of
/// deletes, fully flushed, and returns its directory.
fn populated_dir(entries: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lethe-bench-recovery-{}-{entries}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = builder().open(&dir).expect("populate open");
    for k in 0..entries {
        db.put(k, k % 365, vec![0u8; 64]).expect("populate put");
    }
    for k in (0..entries).step_by(13) {
        db.delete(k).expect("populate delete");
    }
    db.persist().expect("populate persist");
    dir
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_reopen");
    group.sample_size(10);
    for entries in SIZES {
        let dir = populated_dir(entries);
        group.bench_function(format!("entries_{entries}"), |b| {
            b.iter(|| {
                let db = builder().open(&dir).expect("reopen");
                // one point read proves the recovered tree is serviceable
                let _ = db.get(1).expect("get after recovery");
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
