//! End-to-end engine benchmarks: ingestion and point lookups for the
//! RocksDB-like baseline and Lethe on the simulated device.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use lethe_bench::{experiment_config, EngineSpec};
use lethe_core::baseline::BaselineKind;

const PRELOAD: u64 = 20_000;

fn preloaded(spec: &EngineSpec) -> lethe_bench::AnyEngine {
    let mut cfg = experiment_config();
    cfg.buffer_pages = 32;
    let mut engine = spec.build(cfg).unwrap();
    for k in 0..PRELOAD {
        engine
            .tree_mut()
            .put(k, (k * 7919) % PRELOAD, vec![0u8; 64].into())
            .unwrap();
    }
    engine.persist().unwrap();
    engine
}

fn bench_engine(c: &mut Criterion) {
    let specs = [
        ("rocksdb", EngineSpec::Baseline(BaselineKind::RocksDbLike)),
        ("lethe_h4", EngineSpec::Lethe { dth_micros: 10_000_000, h: 4 }),
    ];

    let mut group = c.benchmark_group("engine_ingest");
    for (name, spec) in &specs {
        group.bench_function(*name, |b| {
            b.iter_batched(
                || {
                    let mut cfg = experiment_config();
                    cfg.buffer_pages = 16;
                    spec.build(cfg).unwrap()
                },
                |mut engine| {
                    for k in 0..5_000u64 {
                        engine.tree_mut().put(k, k % 100, vec![0u8; 64].into()).unwrap();
                    }
                    engine
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("engine_point_lookup");
    for (name, spec) in &specs {
        let mut engine = preloaded(spec);
        group.bench_function(*name, |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7919) % PRELOAD;
                black_box(engine.tree_mut().get(black_box(k)).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
