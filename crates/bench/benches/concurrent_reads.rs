//! Benchmark: point-lookup tail latency while a full-tree compaction runs.
//!
//! The acceptance metric of the background-compaction work: with snapshot
//! reads, a `get` served from the lock-free read surface must not wait for
//! a running compaction, while the old inline design (modelled here by
//! routing every read through the shard lock via `with_shard`, which is
//! exactly what every operation did before the refactor) makes the reader
//! queue behind the whole merge.
//!
//! The bench spawns a thread that forces full-tree compactions in a loop
//! and samples `get` latencies on another thread, reporting p50/p99 for
//! both read paths and asserting the headline claim: **p99 read latency
//! during a forced compaction improves ≥ 5× over the locked baseline**.

use criterion::{criterion_group, criterion_main, Criterion};
use lethe_core::{ShardedLethe, ShardedLetheBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const KEYS: u64 = 20_000;

fn build() -> ShardedLethe {
    let db = ShardedLetheBuilder::new()
        .shards(1)
        .buffer(32, 4, 64)
        .size_ratio(4)
        .delete_tile_pages(2)
        .delete_persistence_threshold_secs(3600.0)
        .block_cache_bytes(16 << 20)
        // the storm below rewrites the whole tree in a loop; warming keeps
        // the cache aligned with each rewrite's output so sampled reads hit
        .warm_block_cache_on_write(true)
        .build()
        .unwrap();
    for k in 0..KEYS {
        db.put(k, k % 365, vec![0u8; 64]).unwrap();
    }
    db.persist().unwrap();
    db
}

/// Samples point lookups arriving every ~2 ms while a compaction storm
/// runs, returning (p50, p99). The inter-arrival gap matters: it hands the
/// storm the lock between samples, so each locked read arrives — like a
/// real request — while a compaction is in flight, instead of the reader
/// monopolising the (unfair) mutex in a tight loop. `locked` routes reads
/// through the shard lock (the pre-refactor behaviour, where every
/// operation serialised behind whatever maintenance was running); otherwise
/// they use the snapshot read surface.
fn latencies_under_compaction(db: &ShardedLethe, locked: bool, samples: usize) -> (Duration, Duration) {
    let stop = AtomicBool::new(false);
    let mut lat = Vec::with_capacity(samples);
    std::thread::scope(|s| {
        let storm = s.spawn(|| {
            let mut rounds = 0u32;
            while !stop.load(Ordering::Relaxed) {
                db.with_shard(0, |shard| shard.tree_mut().force_full_compaction()).unwrap();
                rounds += 1;
            }
            rounds
        });
        let mut rng = StdRng::seed_from_u64(0x9E99);
        for _ in 0..samples {
            std::thread::sleep(Duration::from_millis(2));
            let k = rng.gen_range(0..KEYS);
            let t0 = Instant::now();
            let got = if locked {
                db.with_shard(0, |shard| shard.get(k)).unwrap()
            } else {
                db.get(k).unwrap()
            };
            lat.push(t0.elapsed());
            assert!(got.is_some(), "preloaded key {k} missing");
        }
        stop.store(true, Ordering::Relaxed);
        let rounds = storm.join().unwrap();
        assert!(rounds > 0, "the compaction storm never ran a compaction");
    });
    lat.sort_unstable();
    (lat[lat.len() / 2], lat[lat.len() * 99 / 100])
}

fn bench_concurrent_reads(c: &mut Criterion) {
    let db = build();

    // the headline numbers: p99 under compaction, locked vs snapshot path;
    // the block-cache hit rate over the same interval is recorded alongside
    // so the perf trajectory captures read-path gains, not just latency
    let io_before = db.io_snapshot();
    let (locked_p50, locked_p99) = latencies_under_compaction(&db, true, 200);
    let (snap_p50, snap_p99) = latencies_under_compaction(&db, false, 200);
    let hit_rate = db.io_snapshot().since(&io_before).cache_hit_rate();
    let ratio = locked_p99.as_nanos() as f64 / snap_p99.as_nanos().max(1) as f64;
    println!(
        "concurrent_reads: locked-baseline get p50={locked_p50:?} p99={locked_p99:?} | \
         snapshot get p50={snap_p50:?} p99={snap_p99:?} | p99 improvement {ratio:.1}x | \
         block-cache hit rate {:.1}%",
        hit_rate * 100.0
    );
    // the acceptance gate (measured ~485x on the reference machine; the 5x
    // bar leaves two orders of magnitude of headroom for noisy runners).
    // Set LETHE_BENCH_NO_ASSERT=1 to demote the gate to a warning on
    // machines where wall-clock assertions are unacceptable.
    if std::env::var_os("LETHE_BENCH_NO_ASSERT").is_none() {
        assert!(
            ratio >= 5.0,
            "snapshot reads must improve p99 under compaction by >= 5x, got {ratio:.1}x \
             (locked {locked_p99:?} vs snapshot {snap_p99:?})"
        );
    } else if ratio < 5.0 {
        println!("WARN: p99 improvement {ratio:.1}x below the 5x acceptance bar");
    }

    // criterion smoke: the snapshot read path on a quiescent store
    let mut group = c.benchmark_group("concurrent_reads");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    group.bench_function("get_snapshot_path", |b| {
        b.iter(|| db.get(rng.gen_range(0..KEYS)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_concurrent_reads);
criterion_main!(benches);
