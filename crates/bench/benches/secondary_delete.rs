//! Benchmark: the cost of a secondary range delete under the classic layout
//! (full-tree compaction), KiWi with `h = 1` and KiWi with larger tiles —
//! the headline win of the paper.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lethe_bench::{experiment_config, AnyEngine, EngineSpec};
use lethe_core::baseline::BaselineKind;

const ENTRIES: u64 = 20_000;

fn build(spec: &EngineSpec) -> AnyEngine {
    let mut cfg = experiment_config();
    cfg.buffer_pages = 32;
    let mut engine = spec.build(cfg).unwrap();
    for k in 0..ENTRIES {
        engine
            .tree_mut()
            .put(k, (k.wrapping_mul(2_654_435_761)) % ENTRIES, vec![0u8; 64].into())
            .unwrap();
    }
    engine.persist().unwrap();
    engine
}

fn bench_secondary_delete(c: &mut Criterion) {
    let specs = [
        ("full_tree_compaction", EngineSpec::Baseline(BaselineKind::RocksDbLike)),
        ("kiwi_h1", EngineSpec::Lethe { dth_micros: u64::MAX / 4, h: 1 }),
        ("kiwi_h8", EngineSpec::Lethe { dth_micros: u64::MAX / 4, h: 8 }),
        ("kiwi_h32", EngineSpec::Lethe { dth_micros: u64::MAX / 4, h: 32 }),
    ];
    let mut group = c.benchmark_group("secondary_range_delete_one_seventh");
    group.sample_size(10);
    for (name, spec) in &specs {
        group.bench_function(*name, |b| {
            b.iter_batched(
                || build(spec),
                |mut engine| {
                    engine.tree_mut().secondary_range_delete(0, ENTRIES / 7).unwrap();
                    engine
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_secondary_delete);
criterion_main!(benches);
