//! Multi-threaded workload driving.
//!
//! [`run_concurrent`] fans one [`WorkloadSpec`] out over `M` client threads,
//! each with its own deterministically re-seeded [`WorkloadGenerator`], and
//! applies every generated operation through a caller-supplied `&self`-style
//! closure. It is the driver used to exercise the sharded concurrent
//! front-end (`ShardedLethe` in `lethe-core`) from many threads at once —
//! the generic closure keeps this crate free of a dependency on the engine
//! crates (the dependency points the other way around).
//!
//! Determinism: thread `t` runs the spec with seed `spec.seed + t` and its
//! slice of the operation count (slices sum to exactly `spec.operations`),
//! so a concurrent run issues a reproducible *set* of operations; only the
//! interleaving across threads is scheduler-dependent.

use crate::generator::{Operation, WorkloadGenerator};
use crate::spec::WorkloadSpec;
use std::time::{Duration, Instant};

/// Outcome of one concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Number of client threads that ran.
    pub threads: usize,
    /// Total operations applied across all threads.
    pub operations: u64,
    /// Wall-clock duration of the run (spawn to last join).
    pub elapsed: Duration,
}

impl ConcurrentReport {
    /// Wall-clock throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.operations as f64 / secs
    }
}

/// Operation count for thread `t` of `threads`: the total divided evenly,
/// with the remainder spread over the first `operations % threads` threads,
/// so the per-thread counts always sum to exactly `operations`.
fn ops_for_thread(operations: u64, t: usize, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    operations / threads + u64::from((t as u64) < operations % threads)
}

/// Derives the spec thread `t` of `threads` runs: same mix, re-seeded, with
/// its slice of the operation count (slices sum to exactly
/// `base.operations`).
pub fn thread_spec(base: &WorkloadSpec, t: usize, threads: usize) -> WorkloadSpec {
    let mut spec = base.clone();
    spec.seed = base.seed.wrapping_add(t as u64);
    spec.operations = ops_for_thread(base.operations, t, threads);
    // preload is a whole-store concern; only thread 0 issues it
    if t != 0 {
        spec.preload_keys = 0;
    }
    spec
}

/// Runs `spec` from `threads` client threads against `apply`.
///
/// `apply` receives `(thread_index, operation)` for every generated
/// operation and must be callable from any thread through a shared reference
/// — exactly the contract of a sharded `&self` engine. Thread 0 issues the
/// spec's preload phase (if any) before the measured phase starts on the
/// other threads; the measured phase of every thread runs concurrently.
///
/// # Panics
/// Propagates panics from `apply` (a panicking worker fails the run).
pub fn run_concurrent<F>(spec: &WorkloadSpec, threads: usize, apply: F) -> ConcurrentReport
where
    F: Fn(usize, &Operation) + Sync,
{
    let threads = threads.max(1);
    // preload first, single-threaded, so the measured phase of every thread
    // sees the same starting store
    let preload_spec = thread_spec(spec, 0, threads);
    let mut preload_gen = WorkloadGenerator::new(preload_spec.clone());
    for op in preload_gen.preload() {
        apply(0, &op);
    }

    let start = Instant::now();
    let mut total_ops = 0u64;
    std::thread::scope(|s| {
        let apply = &apply;
        let mut handles = Vec::with_capacity(threads);
        // disjoint arrival bases keep uncorrelated delete keys globally
        // unique across threads (the preload consumed the first block), so
        // "purge the oldest" secondary deletes keep their meaning
        let mut arrival_base = spec.preload_keys;
        for t in 0..threads {
            let mut spec_t = thread_spec(spec, t, threads);
            spec_t.preload_keys = 0; // already issued above
            let base = arrival_base;
            arrival_base += spec_t.operations; // at most one arrival per op
            handles.push(s.spawn(move || {
                let mut generator = WorkloadGenerator::new(spec_t).start_arrival_at(base);
                let ops = generator.operations();
                for op in &ops {
                    apply(t, op);
                }
                ops.len() as u64
            }));
        }
        for handle in handles {
            total_ops += handle.join().expect("workload thread panicked");
        }
    });

    ConcurrentReport { threads, operations: total_ops, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    fn tiny_spec(ops: u64) -> WorkloadSpec {
        WorkloadSpec { operations: ops, key_space: 1000, ..Default::default() }
    }

    #[test]
    fn every_thread_contributes_its_slice() {
        let counts = Mutex::new(HashMap::<usize, u64>::new());
        let report = run_concurrent(&tiny_spec(400), 4, |t, _op| {
            *counts.lock().unwrap().entry(t).or_insert(0) += 1;
        });
        assert_eq!(report.threads, 4);
        assert_eq!(report.operations, 400);
        let counts = counts.lock().unwrap();
        assert_eq!(counts.len(), 4);
        for t in 0..4 {
            assert_eq!(counts[&t], 100);
        }
        assert!(report.ops_per_sec() > 0.0);
    }

    #[test]
    fn op_slices_sum_exactly_even_when_not_divisible() {
        for (ops, threads) in [(1000u64, 3usize), (2, 4), (7, 7), (5, 8), (0, 3)] {
            let applied = Mutex::new(0u64);
            let report = run_concurrent(&tiny_spec(ops), threads, |_t, _op| {
                *applied.lock().unwrap() += 1;
            });
            assert_eq!(report.operations, ops, "{ops} ops over {threads} threads");
            assert_eq!(*applied.lock().unwrap(), ops);
        }
    }

    #[test]
    fn thread_specs_are_reseeded_slices() {
        let base = tiny_spec(100);
        let a = thread_spec(&base, 0, 4);
        let b = thread_spec(&base, 1, 4);
        assert_eq!(a.operations, 25);
        assert_eq!(b.operations, 25);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.preload_keys, base.preload_keys);
        assert_eq!(b.preload_keys, 0);
    }

    #[test]
    fn uncorrelated_delete_keys_are_globally_unique_across_threads() {
        use crate::spec::DeleteKeyCorrelation;
        let spec = WorkloadSpec {
            operations: 400,
            key_space: 10_000,
            preload_keys: 50,
            correlation: DeleteKeyCorrelation::Uncorrelated,
            update_fraction: 1.0,
            point_lookup_fraction: 0.0,
            ..Default::default()
        };
        let seen = Mutex::new(Vec::<u64>::new());
        run_concurrent(&spec, 4, |_t, op| {
            if let crate::generator::Operation::Put { delete_key, .. } = op {
                seen.lock().unwrap().push(*delete_key);
            }
        });
        let mut dks = seen.into_inner().unwrap();
        let n = dks.len();
        dks.sort_unstable();
        dks.dedup();
        assert_eq!(dks.len(), n, "arrival delete keys collided across threads");
    }

    #[test]
    fn preload_runs_once_on_thread_zero() {
        let mut spec = tiny_spec(40);
        spec.preload_keys = 50;
        let puts = Mutex::new(0u64);
        let report = run_concurrent(&spec, 4, |_t, op| {
            if matches!(op, crate::generator::Operation::Put { .. }) {
                *puts.lock().unwrap() += 1;
            }
        });
        // measured ops exclude the preload in the report…
        assert_eq!(report.operations, 40);
        // …but the preload puts were applied exactly once
        assert!(*puts.lock().unwrap() >= 50);
    }
}
