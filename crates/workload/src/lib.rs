//! # lethe-workload
//!
//! Deterministic workload generation for the Lethe reproduction: the paper's
//! YCSB-A variant (50% updates / 50% point lookups) with tunable delete
//! fractions, range deletes of a given selectivity, secondary range deletes
//! on the delete key, uniform/Zipfian key popularity, and a knob for the
//! correlation between sort and delete keys (Figure 6(L)).
//!
//! Everything is seeded: the same [`WorkloadSpec`] always produces the same
//! operation stream, which keeps every figure of the benchmark harness
//! reproducible.

#![forbid(unsafe_code)]

pub mod concurrent;
pub mod generator;
pub mod gorilla;
pub mod spec;
pub mod timeseries;
pub mod zipf;

pub use concurrent::{run_concurrent, thread_spec, ConcurrentReport};
pub use generator::{BatchWriteOp, Operation, WorkloadGenerator};
pub use spec::{DeleteKeyCorrelation, KeyDistribution, WorkloadSpec};
pub use timeseries::{TimeSeriesGenerator, TimeSeriesSpec};
pub use zipf::Zipf;
