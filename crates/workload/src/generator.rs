//! Deterministic operation-stream generation.
//!
//! [`WorkloadGenerator`] turns a [`WorkloadSpec`] into a reproducible stream
//! of [`Operation`]s. The generator tracks which keys have been inserted so
//! that point deletes and point lookups target existing keys (as in the
//! paper's setup: "deletes are issued only on keys that have been inserted
//! in the database") while empty lookups target keys that were never written.

use crate::spec::{DeleteKeyCorrelation, KeyDistribution, WorkloadSpec};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of a generated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Insert or update `key` with the given delete key and a value of the
    /// spec's `value_size`.
    Put {
        /// Sort key.
        key: u64,
        /// Delete key (secondary attribute, e.g. creation time).
        delete_key: u64,
    },
    /// Point lookup expected to find a value.
    Get {
        /// Sort key to look up.
        key: u64,
    },
    /// Point lookup on a key that was never inserted.
    GetEmpty {
        /// Sort key to look up.
        key: u64,
    },
    /// Point delete.
    Delete {
        /// Sort key to delete.
        key: u64,
    },
    /// Range delete on the sort key over `[start, end)`.
    DeleteRange {
        /// Inclusive start of the deleted sort-key range.
        start: u64,
        /// Exclusive end of the deleted sort-key range.
        end: u64,
    },
    /// Range lookup on the sort key over `[start, end)`.
    RangeLookup {
        /// Inclusive start of the scanned range.
        start: u64,
        /// Exclusive end of the scanned range.
        end: u64,
    },
    /// Streaming (paged) range scan on the sort key over `[start, end)` that
    /// stops after consuming at most `limit` results — the paging-API
    /// pattern `iter_range` exists for: the store must only pay for the
    /// prefix actually read.
    RangeStream {
        /// Inclusive start of the scanned range.
        start: u64,
        /// Exclusive end of the scanned range.
        end: u64,
        /// Maximum number of results the client consumes.
        limit: u64,
    },
    /// Secondary range delete on the delete key over `[start, end)`.
    SecondaryRangeDelete {
        /// Inclusive start of the deleted delete-key range.
        start: u64,
        /// Exclusive end of the deleted delete-key range.
        end: u64,
    },
    /// An atomic multi-op write batch: every contained write commits (and,
    /// across a crash, recovers) together or not at all. Drivers map this to
    /// `ShardedLethe::write` / `LsmTree::write_batch`.
    WriteBatch {
        /// The writes inside the batch, in application order.
        ops: Vec<BatchWriteOp>,
    },
    /// Point lookup served through a point-in-time snapshot
    /// (`ShardedLethe::snapshot`) instead of the live store. Drivers open a
    /// snapshot (or reuse a recent one), read `key` through it, and drop it —
    /// measuring the MVCC read path and the cost of pinning versions.
    SnapshotRead {
        /// Sort key to look up through the snapshot.
        key: u64,
    },
    /// A time-series append: `samples` consecutive values (f64 bit
    /// patterns, so the op stays `Eq`) for one series starting at
    /// `start_tick`. Drivers Gorilla-compress the block with
    /// [`crate::timeseries::encode_block`] and store it under the
    /// time-major sort key [`crate::timeseries::encode_key`]`(start_tick,
    /// series)` with delete key `start_tick`, so TTL retention is a
    /// secondary range delete on the tick domain.
    TimeSeriesAppend {
        /// Series the samples belong to.
        series: u64,
        /// Tick of the first sample; sample `i` is at `start_tick + i`.
        start_tick: u64,
        /// Sample values as `f64::to_bits` patterns.
        samples: Vec<u64>,
    },
}

/// One write inside an [`Operation::WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchWriteOp {
    /// Insert or update `key` with the given delete key.
    Put {
        /// Sort key.
        key: u64,
        /// Delete key (secondary attribute, e.g. creation time).
        delete_key: u64,
    },
    /// Point delete of `key`.
    Delete {
        /// Sort key to delete.
        key: u64,
    },
}

/// A seeded generator of operation streams.
#[derive(Debug)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Option<Zipf>,
    /// Keys known to have been inserted (targets for lookups and deletes).
    inserted: Vec<u64>,
    /// Monotonically increasing counter used as the "arrival time" delete key
    /// for uncorrelated workloads.
    arrival: u64,
    /// Next free tick of the time-series timeline; advances by the block
    /// size per append so timestamps stay strictly monotone.
    ts_tick: u64,
    /// Per-series random-walk state for time-series values.
    ts_walk: Vec<f64>,
}

/// Distinct series the mixed generator spreads time-series appends over.
const TIMESERIES_SERIES: u64 = 16;

impl WorkloadGenerator {
    /// Creates a generator for `spec`.
    ///
    /// # Panics
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn new(spec: WorkloadSpec) -> Self {
        spec.validate().expect("invalid workload spec");
        let zipf = match spec.distribution {
            KeyDistribution::Uniform => None,
            KeyDistribution::Zipfian { theta } => {
                Some(Zipf::new(spec.key_space.min(1 << 22) as usize, theta))
            }
        };
        let rng = StdRng::seed_from_u64(spec.seed);
        let ts_walk = (0..TIMESERIES_SERIES).map(|s| 100.0 + s as f64).collect();
        WorkloadGenerator { spec, rng, zipf, inserted: Vec::new(), arrival: 0, ts_tick: 0, ts_walk }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Starts the uncorrelated delete-key "arrival" counter at `base`
    /// instead of zero. Multi-generator drivers (see
    /// [`crate::concurrent::run_concurrent`]) give each generator a disjoint
    /// base so delete keys stay globally unique — without it, every
    /// generator would restart the arrival timeline at zero and
    /// retention-style secondary deletes ("purge the oldest entries") would
    /// collide across generators.
    pub fn start_arrival_at(mut self, base: u64) -> Self {
        self.arrival = base;
        self
    }

    /// Value payload matching the spec's `value_size`, derived from the key
    /// so that values are distinguishable in tests.
    pub fn value_for(&self, key: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.spec.value_size.max(8)];
        v[..8].copy_from_slice(&key.to_le_bytes());
        v
    }

    fn pick_key(&mut self) -> u64 {
        match &self.zipf {
            Some(z) => {
                let rank = z.sample(&mut self.rng) as u64;
                // spread ranks over the key space deterministically
                (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.spec.key_space
            }
            None => self.rng.gen_range(0..self.spec.key_space),
        }
    }

    fn pick_existing_key(&mut self) -> Option<u64> {
        if self.inserted.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.inserted.len());
        Some(self.inserted[idx])
    }

    fn delete_key_for(&mut self, sort_key: u64) -> u64 {
        match self.spec.correlation {
            DeleteKeyCorrelation::Correlated => sort_key,
            DeleteKeyCorrelation::Uncorrelated => {
                self.arrival += 1;
                self.arrival
            }
        }
    }

    fn make_put(&mut self) -> Operation {
        let key = self.pick_key();
        let delete_key = self.delete_key_for(key);
        self.inserted.push(key);
        Operation::Put { key, delete_key }
    }

    /// Builds one atomic write batch of `batch_size` ops: mostly puts, with
    /// roughly one in eight a point delete of an already-inserted key (so
    /// batches exercise mixed put/delete atomicity, not just group inserts).
    fn make_batch(&mut self) -> Operation {
        let n = self.spec.batch_size.max(1);
        let mut ops = Vec::with_capacity(n as usize);
        for _ in 0..n {
            if self.rng.gen_range(0..8u32) == 0 {
                if let Some(key) = self.pick_existing_key() {
                    ops.push(BatchWriteOp::Delete { key });
                    continue;
                }
            }
            let key = self.pick_key();
            let delete_key = self.delete_key_for(key);
            self.inserted.push(key);
            ops.push(BatchWriteOp::Put { key, delete_key });
        }
        Operation::WriteBatch { ops }
    }

    /// Builds one time-series append: the next block of the global monotone
    /// timeline, assigned to a random series whose value random-walks.
    fn make_timeseries(&mut self) -> Operation {
        let n = self.spec.timeseries_samples.max(1);
        let series = self.rng.gen_range(0..TIMESERIES_SERIES);
        let v = &mut self.ts_walk[series as usize];
        let mut samples = Vec::with_capacity(n as usize);
        for _ in 0..n {
            *v += self.rng.gen::<f64>() * 2.0 - 1.0;
            samples.push(v.to_bits());
        }
        let start_tick = self.ts_tick;
        self.ts_tick += n;
        Operation::TimeSeriesAppend { series, start_tick, samples }
    }

    /// Generates the preload phase: `preload_keys` distinct puts covering the
    /// key space evenly (so later range deletes behave predictably).
    pub fn preload(&mut self) -> Vec<Operation> {
        let n = self.spec.preload_keys;
        let mut ops = Vec::with_capacity(n as usize);
        if n == 0 {
            return ops;
        }
        let stride = (self.spec.key_space / n).max(1);
        for i in 0..n {
            let key = (i * stride) % self.spec.key_space;
            let delete_key = self.delete_key_for(key);
            self.inserted.push(key);
            ops.push(Operation::Put { key, delete_key });
        }
        ops
    }

    /// Generates the next operation of the measured phase.
    pub fn next_operation(&mut self) -> Operation {
        let spec = self.spec.clone();
        let mut x: f64 = self.rng.gen();
        let classes = [
            spec.update_fraction,
            spec.point_lookup_fraction,
            spec.empty_lookup_fraction,
            spec.point_delete_fraction,
            spec.range_delete_fraction,
            spec.range_lookup_fraction,
            spec.streaming_range_fraction,
            spec.batch_fraction,
            spec.snapshot_fraction,
            spec.timeseries_fraction,
            spec.secondary_delete_fraction,
        ];
        let mut class = classes.len() - 1;
        for (i, f) in classes.iter().enumerate() {
            if x < *f {
                class = i;
                break;
            }
            x -= f;
        }
        match class {
            0 => self.make_put(),
            1 => match self.pick_existing_key() {
                Some(key) => Operation::Get { key },
                None => self.make_put(),
            },
            2 => Operation::GetEmpty { key: self.spec.key_space + self.rng.gen_range(0..u32::MAX as u64) },
            3 => match self.pick_existing_key() {
                Some(key) => Operation::Delete { key },
                None => self.make_put(),
            },
            4 => {
                let span = ((self.spec.key_space as f64 * spec.range_delete_selectivity) as u64).max(1);
                let start = self.rng.gen_range(0..self.spec.key_space.saturating_sub(span).max(1));
                Operation::DeleteRange { start, end: start + span }
            }
            5 => {
                let span = ((self.spec.key_space as f64 * spec.range_lookup_selectivity) as u64).max(1);
                let start = self.rng.gen_range(0..self.spec.key_space.saturating_sub(span).max(1));
                Operation::RangeLookup { start, end: start + span }
            }
            6 => {
                // a paging client opens a long scan (the rest of the key
                // space) but consumes only one page of it
                let start = self.rng.gen_range(0..self.spec.key_space);
                Operation::RangeStream {
                    start,
                    end: self.spec.key_space,
                    limit: spec.streaming_range_limit.max(1),
                }
            }
            7 => self.make_batch(),
            8 => match self.pick_existing_key() {
                Some(key) => Operation::SnapshotRead { key },
                None => self.make_put(),
            },
            9 => self.make_timeseries(),
            // secondary range deletes stay the final arm: it doubles as the
            // floating-point fallback class, so adding new classes above
            // never changes what a rounding leftover generates
            _ => {
                // the delete-key domain is the arrival counter for
                // uncorrelated workloads and the key space when correlated
                let domain = match self.spec.correlation {
                    DeleteKeyCorrelation::Uncorrelated => self.arrival.max(1),
                    DeleteKeyCorrelation::Correlated => self.spec.key_space,
                };
                // retention-style deletes: purge the oldest `selectivity`
                // fraction of the delete-key domain (the paper's use case —
                // "delete everything older than D days"), which also keeps
                // the delete range covering every older version of a key
                let span = ((domain as f64 * spec.secondary_delete_selectivity) as u64).max(1);
                Operation::SecondaryRangeDelete { start: 0, end: span }
            }
        }
    }

    /// Generates the whole measured phase as a vector.
    pub fn operations(&mut self) -> Vec<Operation> {
        (0..self.spec.operations).map(|_| self.next_operation()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_class(ops: &[Operation]) -> (usize, usize, usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0, 0, 0);
        let mut streams = 0usize;
        for op in ops {
            match op {
                Operation::Put { .. } => c.0 += 1,
                Operation::Get { .. } => c.1 += 1,
                Operation::GetEmpty { .. } => c.2 += 1,
                Operation::Delete { .. } => c.3 += 1,
                Operation::DeleteRange { .. } => c.4 += 1,
                Operation::RangeLookup { .. } => c.5 += 1,
                Operation::RangeStream { .. } => streams += 1,
                Operation::SecondaryRangeDelete { .. } => c.6 += 1,
                Operation::WriteBatch { .. }
                | Operation::SnapshotRead { .. }
                | Operation::TimeSeriesAppend { .. } => {}
            }
        }
        let _ = streams;
        c
    }

    #[test]
    fn streaming_scans_are_generated_when_requested() {
        let spec = WorkloadSpec {
            operations: 5_000,
            key_space: 10_000,
            update_fraction: 0.8,
            point_lookup_fraction: 0.0,
            streaming_range_fraction: 0.2,
            streaming_range_limit: 64,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec.clone()).operations();
        let streams: Vec<_> = ops
            .iter()
            .filter_map(|op| match op {
                Operation::RangeStream { start, end, limit } => Some((*start, *end, *limit)),
                _ => None,
            })
            .collect();
        let share = streams.len() as f64 / ops.len() as f64;
        assert!((share - 0.2).abs() < 0.05, "stream share {share}");
        for (start, end, limit) in streams {
            assert!(start < end && end <= spec.key_space);
            assert_eq!(limit, 64);
        }
        // with the knob off the class is never generated and streams are
        // byte-identical to the pre-knob generator
        let spec_off = WorkloadSpec { operations: 500, ..Default::default() };
        let ops_off = WorkloadGenerator::new(spec_off).operations();
        assert!(ops_off.iter().all(|op| !matches!(op, Operation::RangeStream { .. })));
    }

    #[test]
    fn batches_are_generated_when_requested() {
        let spec = WorkloadSpec {
            operations: 5_000,
            key_space: 10_000,
            update_fraction: 0.7,
            point_lookup_fraction: 0.1,
            batch_fraction: 0.2,
            batch_size: 16,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).operations();
        let batches: Vec<&Vec<BatchWriteOp>> = ops
            .iter()
            .filter_map(|op| match op {
                Operation::WriteBatch { ops } => Some(ops),
                _ => None,
            })
            .collect();
        let share = batches.len() as f64 / ops.len() as f64;
        assert!((share - 0.2).abs() < 0.05, "batch share {share}");
        let mut puts = 0usize;
        let mut deletes = 0usize;
        for batch in &batches {
            assert_eq!(batch.len(), 16);
            for op in batch.iter() {
                match op {
                    BatchWriteOp::Put { .. } => puts += 1,
                    BatchWriteOp::Delete { .. } => deletes += 1,
                }
            }
        }
        assert!(puts > 0 && deletes > 0, "batches must mix puts and deletes ({puts}/{deletes})");
        // with the knob off the class is never generated and the stream is
        // byte-identical to the pre-knob generator
        let ops_off = WorkloadGenerator::new(WorkloadSpec { operations: 500, ..Default::default() })
            .operations();
        assert!(ops_off.iter().all(|op| !matches!(op, Operation::WriteBatch { .. })));
    }

    #[test]
    fn snapshot_reads_are_generated_when_requested() {
        let spec = WorkloadSpec {
            operations: 5_000,
            key_space: 10_000,
            update_fraction: 0.7,
            point_lookup_fraction: 0.1,
            snapshot_fraction: 0.2,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).operations();
        let mut inserted = std::collections::HashSet::new();
        let mut snapshot_reads = 0usize;
        for op in &ops {
            match op {
                Operation::Put { key, .. } => {
                    inserted.insert(*key);
                }
                Operation::SnapshotRead { key } => {
                    snapshot_reads += 1;
                    assert!(inserted.contains(key), "snapshot read targets a key never inserted");
                }
                _ => {}
            }
        }
        let share = snapshot_reads as f64 / ops.len() as f64;
        assert!((share - 0.2).abs() < 0.05, "snapshot-read share {share}");
        // with the knob off the class is never generated and the stream is
        // byte-identical to the pre-knob generator
        let ops_off = WorkloadGenerator::new(WorkloadSpec { operations: 500, ..Default::default() })
            .operations();
        assert!(ops_off.iter().all(|op| !matches!(op, Operation::SnapshotRead { .. })));
    }

    #[test]
    fn timeseries_appends_are_generated_when_requested() {
        let spec = WorkloadSpec {
            operations: 5_000,
            key_space: 10_000,
            update_fraction: 0.7,
            point_lookup_fraction: 0.1,
            timeseries_fraction: 0.2,
            timeseries_samples: 24,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).operations();
        let mut appends = 0usize;
        let mut last_tick: Option<u64> = None;
        for op in &ops {
            if let Operation::TimeSeriesAppend { series, start_tick, samples } = op {
                appends += 1;
                assert!(*series < super::TIMESERIES_SERIES);
                assert_eq!(samples.len(), 24);
                assert!(last_tick.is_none_or(|t| *start_tick == t), "timeline must be gapless");
                last_tick = Some(start_tick + samples.len() as u64);
                // blocks round-trip through the gorilla codec
                let block = crate::timeseries::encode_block(*start_tick, samples);
                assert_eq!(crate::timeseries::decode_block(&block).unwrap(), *samples);
            }
        }
        let share = appends as f64 / ops.len() as f64;
        assert!((share - 0.2).abs() < 0.05, "append share {share}");
        // with the knob off the class is never generated and the stream is
        // byte-identical to the pre-knob generator
        let ops_off = WorkloadGenerator::new(WorkloadSpec { operations: 500, ..Default::default() })
            .operations();
        assert!(ops_off.iter().all(|op| !matches!(op, Operation::TimeSeriesAppend { .. })));
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let spec = WorkloadSpec { operations: 500, ..Default::default() };
        let a = WorkloadGenerator::new(spec.clone()).operations();
        let b = WorkloadGenerator::new(spec).operations();
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(WorkloadSpec { seed: 99, operations: 500, ..Default::default() })
            .operations();
        assert_ne!(a, c);
    }

    #[test]
    fn class_mix_matches_fractions() {
        let spec = WorkloadSpec::ycsb_a_with_deletes(20_000, 10.0);
        let ops = WorkloadGenerator::new(spec).operations();
        let (puts, gets, _, deletes, _, _, _) = count_class(&ops);
        let n = ops.len() as f64;
        assert!((puts as f64 / n - 0.45).abs() < 0.05, "puts {puts}");
        // early lookups fall back to puts while nothing exists yet, so allow slack
        assert!((gets as f64 / n - 0.5).abs() < 0.05, "gets {gets}");
        assert!((deletes as f64 / n - 0.05).abs() < 0.02, "deletes {deletes}");
    }

    #[test]
    fn deletes_and_lookups_target_inserted_keys() {
        let spec = WorkloadSpec::ycsb_a_with_deletes(5_000, 10.0);
        let mut gen = WorkloadGenerator::new(spec);
        let ops = gen.operations();
        let mut inserted = std::collections::HashSet::new();
        for op in &ops {
            match op {
                Operation::Put { key, .. } => {
                    inserted.insert(*key);
                }
                Operation::Get { key } | Operation::Delete { key } => {
                    assert!(inserted.contains(key), "{op:?} targets a key never inserted");
                }
                Operation::GetEmpty { key } => {
                    assert!(*key >= gen.spec().key_space);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn preload_covers_key_space_without_duplicates() {
        let spec = WorkloadSpec { preload_keys: 1000, key_space: 100_000, ..Default::default() };
        let mut gen = WorkloadGenerator::new(spec);
        let ops = gen.preload();
        assert_eq!(ops.len(), 1000);
        let keys: std::collections::HashSet<u64> = ops
            .iter()
            .map(|op| match op {
                Operation::Put { key, .. } => *key,
                _ => panic!("preload must only contain puts"),
            })
            .collect();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn correlation_controls_delete_keys() {
        let correlated = WorkloadSpec {
            preload_keys: 100,
            correlation: DeleteKeyCorrelation::Correlated,
            ..Default::default()
        };
        let mut gen = WorkloadGenerator::new(correlated);
        for op in gen.preload() {
            if let Operation::Put { key, delete_key } = op {
                assert_eq!(key, delete_key);
            }
        }
        let uncorrelated = WorkloadSpec {
            preload_keys: 100,
            correlation: DeleteKeyCorrelation::Uncorrelated,
            ..Default::default()
        };
        let mut gen = WorkloadGenerator::new(uncorrelated);
        let dks: Vec<u64> = gen
            .preload()
            .iter()
            .map(|op| match op {
                Operation::Put { delete_key, .. } => *delete_key,
                _ => unreachable!(),
            })
            .collect();
        // arrival order: strictly increasing
        assert!(dks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn secondary_deletes_generated_when_requested() {
        let spec = WorkloadSpec::secondary_delete_mix(20_000, 0.001, 0.05);
        let ops = WorkloadGenerator::new(spec).operations();
        let (_, _, _, _, _, range_lookups, srds) = count_class(&ops);
        assert!(srds > 0, "expected at least one secondary range delete");
        assert!(range_lookups > 0);
    }

    #[test]
    fn zipfian_workload_produces_hot_keys() {
        let spec = WorkloadSpec {
            operations: 10_000,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            update_fraction: 1.0,
            point_lookup_fraction: 0.0,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).operations();
        let mut counts = std::collections::HashMap::new();
        for op in &ops {
            if let Operation::Put { key, .. } = op {
                *counts.entry(*key).or_insert(0usize) += 1;
            }
        }
        let max = counts.values().max().unwrap();
        assert!(*max > 100, "a hot key should dominate, max = {max}");
    }

    #[test]
    fn value_embeds_key_and_has_requested_size() {
        let spec = WorkloadSpec { value_size: 128, ..Default::default() };
        let gen = WorkloadGenerator::new(spec);
        let v = gen.value_for(42);
        assert_eq!(v.len(), 128);
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 42);
    }
}
