//! Workload specification.
//!
//! The paper evaluates Lethe with "a variation of YCSB Workload A" produced
//! by a custom generator: 50% general updates and 50% point lookups, with a
//! configurable fraction of the ingestion turned into deletes, plus range
//! deletes of a given selectivity and (for the KiWi experiments) secondary
//! range deletes on the delete key. [`WorkloadSpec`] captures those knobs.

use serde::{Deserialize, Serialize};

/// How keys are drawn from the key space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniformly random keys (the paper's default setup).
    Uniform,
    /// Zipfian-skewed keys with the given skew parameter; models the
    /// hot-data-modifying adversarial workloads of §3.1.1.
    Zipfian {
        /// Skew parameter θ (0 = uniform, ~1 = heavily skewed).
        theta: f64,
    },
}

/// How an entry's delete key relates to its sort key.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeleteKeyCorrelation {
    /// Delete key is drawn independently of the sort key (e.g. an arrival
    /// timestamp for randomly-ordered inserts) — the case KiWi is built for.
    Uncorrelated,
    /// Delete key equals the sort key (correlation ≈ 1): the classic layout
    /// already clusters deletes, Figure 6(L)'s second workload.
    Correlated,
}

/// A complete description of a generated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Random seed; every spec with the same seed generates the same stream.
    pub seed: u64,
    /// Number of distinct keys preloaded into the store before the measured
    /// phase (0 to start from an empty store).
    pub preload_keys: u64,
    /// Number of operations in the measured phase.
    pub operations: u64,
    /// Size of the key space keys are drawn from.
    pub key_space: u64,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Fraction of operations that are inserts/updates.
    pub update_fraction: f64,
    /// Fraction of operations that are point lookups on existing keys.
    pub point_lookup_fraction: f64,
    /// Fraction of operations that are point lookups on non-existing keys.
    pub empty_lookup_fraction: f64,
    /// Fraction of operations that are point deletes (issued only on keys
    /// that have been inserted, as in the paper's setup).
    pub point_delete_fraction: f64,
    /// Fraction of operations that are range deletes on the sort key.
    pub range_delete_fraction: f64,
    /// Selectivity σ of each range delete (fraction of the key space).
    pub range_delete_selectivity: f64,
    /// Fraction of operations that are short range lookups.
    pub range_lookup_fraction: f64,
    /// Selectivity of each range lookup (fraction of the key space).
    pub range_lookup_selectivity: f64,
    /// Fraction of operations that are *streaming* range scans: paged
    /// cursor reads that consume at most
    /// [`streaming_range_limit`](Self::streaming_range_limit) results of a
    /// long scan (the `iter_range` paging-API workload). Defaults to 0, so
    /// pre-existing specs keep generating identical operation streams.
    pub streaming_range_fraction: f64,
    /// Maximum results one streaming range scan consumes before stopping
    /// (the page size of a paging API).
    pub streaming_range_limit: u64,
    /// Fraction of operations that are secondary range deletes (on the
    /// delete key).
    pub secondary_delete_fraction: f64,
    /// Selectivity of each secondary range delete (fraction of the delete-key
    /// domain).
    pub secondary_delete_selectivity: f64,
    /// Fraction of operations that are atomic multi-op write batches
    /// (`ShardedLethe::write` / `LsmTree::write_batch`). Defaults to 0, so
    /// pre-existing specs keep generating identical operation streams.
    pub batch_fraction: f64,
    /// Number of write operations inside each generated batch (mostly puts,
    /// with ~1 in 8 a point delete of an existing key).
    pub batch_size: u64,
    /// Fraction of operations that are snapshot reads: the driver opens (or
    /// reuses) a point-in-time `ShardedLethe::snapshot` view and serves a
    /// point lookup through it instead of the live store. Defaults to 0, so
    /// pre-existing specs keep generating identical operation streams.
    pub snapshot_fraction: f64,
    /// Fraction of operations that are time-series appends: a block of
    /// [`timeseries_samples`](Self::timeseries_samples) Gorilla-compressed
    /// samples written under a monotone time-major key (see
    /// [`crate::timeseries`]). Defaults to 0, so pre-existing specs keep
    /// generating identical operation streams.
    pub timeseries_fraction: f64,
    /// Number of samples packed into each time-series append block.
    pub timeseries_samples: u64,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
    /// Relationship between sort and delete keys.
    pub correlation: DeleteKeyCorrelation,
}

fn default_streaming_range_limit() -> u64 {
    100
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 0xC0FFEE,
            preload_keys: 0,
            operations: 10_000,
            key_space: 1 << 20,
            value_size: 1024,
            update_fraction: 0.5,
            point_lookup_fraction: 0.5,
            empty_lookup_fraction: 0.0,
            point_delete_fraction: 0.0,
            range_delete_fraction: 0.0,
            range_delete_selectivity: 5.0e-4,
            range_lookup_fraction: 0.0,
            range_lookup_selectivity: 1.0e-3,
            streaming_range_fraction: 0.0,
            streaming_range_limit: default_streaming_range_limit(),
            secondary_delete_fraction: 0.0,
            secondary_delete_selectivity: 0.0,
            batch_fraction: 0.0,
            batch_size: 8,
            snapshot_fraction: 0.0,
            timeseries_fraction: 0.0,
            timeseries_samples: 32,
            distribution: KeyDistribution::Uniform,
            correlation: DeleteKeyCorrelation::Uncorrelated,
        }
    }
}

impl WorkloadSpec {
    /// The paper's YCSB-A variant: 50% general updates, 50% point lookups,
    /// with `delete_pct` percent of the *ingestion* replaced by point deletes
    /// (the x-axis of Figures 6(A)–(D)).
    pub fn ycsb_a_with_deletes(operations: u64, delete_pct: f64) -> Self {
        let delete_share = 0.5 * (delete_pct / 100.0);
        WorkloadSpec {
            operations,
            update_fraction: 0.5 - delete_share,
            point_delete_fraction: delete_share,
            point_lookup_fraction: 0.5,
            ..Default::default()
        }
    }

    /// A write-only workload (Figure 6(G)'s "write" series).
    pub fn write_only(operations: u64) -> Self {
        WorkloadSpec {
            operations,
            update_fraction: 1.0,
            point_lookup_fraction: 0.0,
            ..Default::default()
        }
    }

    /// The secondary-range-delete workload of §5.2: 50% point queries, 1%
    /// range queries, ~49% inserts and a small fraction of secondary range
    /// deletes of the given selectivity.
    pub fn secondary_delete_mix(
        operations: u64,
        secondary_delete_fraction: f64,
        secondary_delete_selectivity: f64,
    ) -> Self {
        WorkloadSpec {
            operations,
            update_fraction: 0.49 - secondary_delete_fraction,
            point_lookup_fraction: 0.5,
            range_lookup_fraction: 0.01,
            range_lookup_selectivity: 1.0e-5,
            secondary_delete_fraction,
            secondary_delete_selectivity,
            ..Default::default()
        }
    }

    /// Sum of all operation-class fractions (should be ≈ 1).
    pub fn total_fraction(&self) -> f64 {
        self.update_fraction
            + self.point_lookup_fraction
            + self.empty_lookup_fraction
            + self.point_delete_fraction
            + self.range_delete_fraction
            + self.range_lookup_fraction
            + self.streaming_range_fraction
            + self.secondary_delete_fraction
            + self.batch_fraction
            + self.snapshot_fraction
            + self.timeseries_fraction
    }

    /// Checks that fractions are non-negative and sum to ~1, and that
    /// selectivities are in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        let fractions = [
            self.update_fraction,
            self.point_lookup_fraction,
            self.empty_lookup_fraction,
            self.point_delete_fraction,
            self.range_delete_fraction,
            self.range_lookup_fraction,
            self.streaming_range_fraction,
            self.secondary_delete_fraction,
            self.batch_fraction,
            self.snapshot_fraction,
            self.timeseries_fraction,
        ];
        if fractions.iter().any(|f| *f < 0.0) {
            return Err("operation fractions must be non-negative".into());
        }
        if self.batch_fraction > 0.0 && self.batch_size == 0 {
            return Err("batch_size must be at least 1 when batches are generated".into());
        }
        if self.timeseries_fraction > 0.0 && self.timeseries_samples == 0 {
            return Err("timeseries_samples must be at least 1 when appends are generated".into());
        }
        if (self.total_fraction() - 1.0).abs() > 1e-6 {
            return Err(format!("operation fractions sum to {}, expected 1", self.total_fraction()));
        }
        for s in [
            self.range_delete_selectivity,
            self.range_lookup_selectivity,
            self.secondary_delete_selectivity,
        ] {
            if !(0.0..=1.0).contains(&s) {
                return Err(format!("selectivity {s} out of [0, 1]"));
            }
        }
        if self.key_space == 0 {
            return Err("key space must be non-empty".into());
        }
        if let KeyDistribution::Zipfian { theta } = self.distribution {
            if theta < 0.0 {
                return Err("zipfian theta must be non-negative".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid_ycsb_a() {
        let s = WorkloadSpec::default();
        assert!(s.validate().is_ok());
        assert!((s.total_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(s.update_fraction, 0.5);
        assert_eq!(s.point_lookup_fraction, 0.5);
    }

    #[test]
    fn delete_percentage_reduces_updates() {
        let s = WorkloadSpec::ycsb_a_with_deletes(1000, 10.0);
        assert!(s.validate().is_ok());
        assert!((s.point_delete_fraction - 0.05).abs() < 1e-9);
        assert!((s.update_fraction - 0.45).abs() < 1e-9);
        let none = WorkloadSpec::ycsb_a_with_deletes(1000, 0.0);
        assert_eq!(none.point_delete_fraction, 0.0);
        assert_eq!(none.update_fraction, 0.5);
    }

    #[test]
    fn snapshot_fraction_participates_in_the_sum() {
        let s = WorkloadSpec {
            update_fraction: 0.4,
            point_lookup_fraction: 0.5,
            snapshot_fraction: 0.1,
            ..Default::default()
        };
        assert!(s.validate().is_ok());
        // forgetting to carve the fraction out of another class is caught
        let bad = WorkloadSpec { snapshot_fraction: 0.1, ..Default::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn timeseries_fraction_participates_in_the_sum() {
        let s = WorkloadSpec {
            update_fraction: 0.4,
            point_lookup_fraction: 0.5,
            timeseries_fraction: 0.1,
            ..Default::default()
        };
        assert!(s.validate().is_ok());
        let bad = WorkloadSpec { timeseries_fraction: 0.1, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = WorkloadSpec {
            update_fraction: 0.4,
            point_lookup_fraction: 0.5,
            timeseries_fraction: 0.1,
            timeseries_samples: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn presets_are_valid() {
        assert!(WorkloadSpec::write_only(10).validate().is_ok());
        assert!(WorkloadSpec::secondary_delete_mix(10, 0.001, 0.01).validate().is_ok());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // per-field mutation is the point here
    fn validation_rejects_bad_specs() {
        let mut s = WorkloadSpec::default();
        s.update_fraction = 0.9; // sums to 1.4
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::default();
        s.point_lookup_fraction = -0.1;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::default();
        s.range_delete_selectivity = 2.0;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::default();
        s.key_space = 0;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::default();
        s.distribution = KeyDistribution::Zipfian { theta: -1.0 };
        assert!(s.validate().is_err());
    }
}
