//! Zipfian key distribution.
//!
//! A small, dependency-free Zipfian sampler (rejection-inversion would be
//! overkill at the scales of these experiments; we use the classic
//! precomputed-CDF construction with binary-search sampling). Used to model
//! the "mostly modifies hot data" adversarial workloads of §3.1.1.

use rand::Rng;

/// A Zipfian distribution over `0..n` with skew parameter `theta`
/// (`theta = 0` is uniform; larger values are more skewed).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` items with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(theta >= 0.0, "skew must be non-negative");
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            let w = 1.0 / ((i + 1) as f64).powf(theta);
            total += w;
            weights.push(total);
        }
        let cdf = weights.into_iter().map(|w| w / total).collect();
        Zipf { cdf }
    }

    /// Number of items in the distribution's support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "uniform sampling should be balanced: {counts:?}");
    }

    #[test]
    fn skewed_when_theta_large() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // the most popular item should dominate the tail
        assert!(counts[0] > counts[50] * 5, "{} vs {}", counts[0], counts[50]);
        assert!(counts[0] > counts[99] * 10);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(5, 0.99);
        assert_eq!(z.len(), 5);
        assert!(!z.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
