//! Time-series workload: monotone appends, windowed scans, TTL retention.
//!
//! This is the workload the date-tiered compaction strategy
//! (`lethe_lsm::strategy::DateTieredPolicy`) is built for, and the one the
//! paper's FADE machinery is in tension with: data arrives in timestamp
//! order, reads target recent time windows, and deletes are pure
//! *retention* — "drop everything older than the TTL" — expressed as
//! secondary range deletes on the delete key, exactly the §5.2 use case.
//!
//! ## Key layout
//!
//! Sort keys are **time-major**: the append tick occupies the high bits and
//! the series id the low [`SERIES_BITS`] bits, so one time window is one
//! contiguous sort-key range covering every series. That is what makes
//! windowed scans cheap and lets a date-tiered policy retire a whole
//! expired window as whole files. The top bit is always set, placing
//! time-series keys in a region disjoint from both the mixed workload's
//! `key_space` and its never-inserted empty-lookup keys, so the two
//! workloads compose inside one store without colliding.
//!
//! ## Delete keys
//!
//! An append's delete key is its `start_tick` — the creation-timestamp
//! attribute of the paper — so a retention delete is
//! `SecondaryRangeDelete { start: 0, end: now - ttl }`.
//!
//! Values are blocks of samples compressed with the [`crate::gorilla`]
//! codec; [`encode_block`] is the single source of truth every applier uses
//! so that stores driven by different engines stay byte-identical.

use crate::generator::Operation;
use crate::gorilla;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Low bits of a sort key holding the series id; the rest (below the tag
/// bit) hold the append tick.
pub const SERIES_BITS: u32 = 16;

/// High tag bit keeping time-series keys disjoint from mixed-workload keys.
const KEY_TAG: u64 = 1 << 63;

/// Builds the time-major sort key for a sample block: tag bit, then tick,
/// then series.
///
/// # Panics
/// Panics if `series` needs more than [`SERIES_BITS`] bits or `tick` would
/// overflow into the tag bit.
pub fn encode_key(tick: u64, series: u64) -> u64 {
    assert!(series < 1 << SERIES_BITS, "series {series} out of range");
    assert!(tick < 1 << (63 - SERIES_BITS), "tick {tick} out of range");
    KEY_TAG | (tick << SERIES_BITS) | series
}

/// Inverse of [`encode_key`]: `(tick, series)`.
pub fn decode_key(key: u64) -> (u64, u64) {
    ((key & !KEY_TAG) >> SERIES_BITS, key & ((1 << SERIES_BITS) - 1))
}

/// Encodes one append's samples (at ticks `start_tick..start_tick + n`)
/// into the Gorilla-compressed value every applier stores.
pub fn encode_block(start_tick: u64, samples: &[u64]) -> Vec<u8> {
    let points: Vec<(u64, u64)> =
        samples.iter().enumerate().map(|(i, &v)| (start_tick + i as u64, v)).collect();
    gorilla::encode(&points)
}

/// Decodes a value produced by [`encode_block`] back into sample bits.
pub fn decode_block(bytes: &[u8]) -> Result<Vec<u64>, gorilla::GorillaError> {
    Ok(gorilla::decode(bytes)?.into_iter().map(|(_, v)| v).collect())
}

/// Knobs for a pure time-series phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSpec {
    /// Random seed; same seed, same stream.
    pub seed: u64,
    /// Number of distinct series written round-robin.
    pub series: u64,
    /// Samples packed into each append block.
    pub samples_per_append: u64,
    /// Number of append operations in the phase.
    pub appends: u64,
    /// Emit a windowed range scan after every this many appends (0 = never).
    pub scan_every: u64,
    /// Width (in ticks) of each windowed scan, ending at the current tick.
    pub window_ticks: u64,
    /// Retention TTL in ticks; `None` disables retention deletes.
    pub ttl_ticks: Option<u64>,
    /// Emit a retention delete after every this many appends (0 = never).
    pub retention_every: u64,
}

impl Default for TimeSeriesSpec {
    fn default() -> Self {
        TimeSeriesSpec {
            seed: 0xC0FFEE,
            series: 8,
            samples_per_append: 32,
            appends: 1_000,
            scan_every: 16,
            window_ticks: 1_024,
            ttl_ticks: None,
            retention_every: 64,
        }
    }
}

/// A seeded generator of pure time-series operation streams.
///
/// Appends rotate round-robin over the series so every series grows at the
/// same rate; the global tick advances by `samples_per_append` per append,
/// so timestamps are strictly monotone across the whole stream — the
/// monotone-ingest shape date-tiered compaction assumes.
#[derive(Debug)]
pub struct TimeSeriesGenerator {
    spec: TimeSeriesSpec,
    rng: StdRng,
    tick: u64,
    next_series: u64,
    /// Per-series random-walk state, as f64 bits.
    walk: Vec<f64>,
}

impl TimeSeriesGenerator {
    /// Creates a generator for `spec`.
    ///
    /// # Panics
    /// Panics if `spec.series` is zero, doesn't fit [`SERIES_BITS`], or
    /// `samples_per_append` is zero.
    pub fn new(spec: TimeSeriesSpec) -> Self {
        assert!(spec.series > 0 && spec.series < 1 << SERIES_BITS, "bad series count");
        assert!(spec.samples_per_append > 0, "samples_per_append must be >= 1");
        let rng = StdRng::seed_from_u64(spec.seed);
        let walk = (0..spec.series).map(|s| 100.0 + s as f64).collect();
        TimeSeriesGenerator { spec, rng, tick: 0, next_series: 0, walk }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &TimeSeriesSpec {
        &self.spec
    }

    /// The tick the next append will start at.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    fn make_append(&mut self) -> Operation {
        let series = self.next_series;
        self.next_series = (self.next_series + 1) % self.spec.series;
        let n = self.spec.samples_per_append;
        let mut samples = Vec::with_capacity(n as usize);
        let v = &mut self.walk[series as usize];
        for _ in 0..n {
            *v += self.rng.gen::<f64>() * 2.0 - 1.0;
            samples.push(v.to_bits());
        }
        let start_tick = self.tick;
        self.tick += n;
        Operation::TimeSeriesAppend { series, start_tick, samples }
    }

    /// Generates the whole phase: appends interleaved with windowed scans
    /// and retention deletes at the spec's cadences.
    pub fn operations(&mut self) -> Vec<Operation> {
        let mut ops = Vec::new();
        for i in 1..=self.spec.appends {
            ops.push(self.make_append());
            if self.spec.scan_every > 0 && i % self.spec.scan_every == 0 {
                let end = self.tick;
                let start = end.saturating_sub(self.spec.window_ticks);
                ops.push(Operation::RangeLookup {
                    start: encode_key(start, 0),
                    end: encode_key(end, 0),
                });
            }
            if let Some(ttl) = self.spec.ttl_ticks {
                if self.spec.retention_every > 0
                    && i % self.spec.retention_every == 0
                    && self.tick > ttl
                {
                    // "delete everything older than the TTL": start_tick is
                    // the delete key, so this is a secondary range delete
                    ops.push(Operation::SecondaryRangeDelete { start: 0, end: self.tick - ttl });
                }
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_codec_is_time_major_and_invertible() {
        for (tick, series) in [(0u64, 0u64), (1, 7), (1 << 30, (1 << SERIES_BITS) - 1)] {
            assert_eq!(decode_key(encode_key(tick, series)), (tick, series));
        }
        // a whole window is one contiguous key range: any series at tick t
        // sorts below series 0 at tick t+1
        assert!(encode_key(5, (1 << SERIES_BITS) - 1) < encode_key(6, 0));
        // and the region is disjoint from mixed-workload keys (< 2^63)
        assert!(encode_key(0, 0) >= 1 << 63);
    }

    #[test]
    fn block_codec_round_trips() {
        let samples: Vec<u64> = (0..64u64).map(|i| (i as f64).cos().to_bits()).collect();
        let bytes = encode_block(7_000, &samples);
        assert_eq!(decode_block(&bytes).unwrap(), samples);
    }

    #[test]
    fn appends_are_monotone_and_cover_all_series() {
        let spec = TimeSeriesSpec { appends: 100, series: 8, ..Default::default() };
        let ops = TimeSeriesGenerator::new(spec.clone()).operations();
        let mut last_tick = None;
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            if let Operation::TimeSeriesAppend { series, start_tick, samples } = op {
                assert!(last_tick.is_none_or(|t| *start_tick > t), "ticks must be monotone");
                last_tick = Some(*start_tick);
                assert_eq!(samples.len() as u64, spec.samples_per_append);
                seen.insert(*series);
            }
        }
        assert_eq!(seen.len() as u64, spec.series);
    }

    #[test]
    fn scans_cover_the_trailing_window() {
        let spec = TimeSeriesSpec {
            appends: 64,
            scan_every: 8,
            window_ticks: 100,
            samples_per_append: 10,
            ..Default::default()
        };
        let ops = TimeSeriesGenerator::new(spec).operations();
        let mut tick = 0u64;
        let mut scans = 0;
        for op in &ops {
            match op {
                Operation::TimeSeriesAppend { start_tick, samples, .. } => {
                    tick = start_tick + samples.len() as u64;
                }
                Operation::RangeLookup { start, end } => {
                    scans += 1;
                    assert_eq!(*end, encode_key(tick, 0));
                    assert_eq!(*start, encode_key(tick.saturating_sub(100), 0));
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert_eq!(scans, 8);
    }

    #[test]
    fn retention_deletes_trail_the_ttl() {
        let spec = TimeSeriesSpec {
            appends: 200,
            samples_per_append: 10,
            scan_every: 0,
            ttl_ticks: Some(500),
            retention_every: 50,
            ..Default::default()
        };
        let ops = TimeSeriesGenerator::new(spec).operations();
        let mut tick = 0u64;
        let mut purges = 0;
        for op in &ops {
            match op {
                Operation::TimeSeriesAppend { start_tick, samples, .. } => {
                    tick = start_tick + samples.len() as u64;
                }
                Operation::SecondaryRangeDelete { start, end } => {
                    purges += 1;
                    assert_eq!(*start, 0);
                    assert_eq!(*end, tick - 500, "purge must end exactly TTL behind now");
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert!(purges > 0, "TTL retention must fire");
        // no retention fires with the TTL off
        let off = TimeSeriesSpec { appends: 200, ttl_ticks: None, scan_every: 0, ..Default::default() };
        assert!(TimeSeriesGenerator::new(off)
            .operations()
            .iter()
            .all(|op| !matches!(op, Operation::SecondaryRangeDelete { .. })));
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let spec = TimeSeriesSpec { appends: 50, ..Default::default() };
        let a = TimeSeriesGenerator::new(spec.clone()).operations();
        let b = TimeSeriesGenerator::new(spec.clone()).operations();
        assert_eq!(a, b);
        let c = TimeSeriesGenerator::new(TimeSeriesSpec { seed: 1, ..spec }).operations();
        assert_ne!(a, c);
    }
}
