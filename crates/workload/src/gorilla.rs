//! Gorilla-style delta/XOR bitstream compression for time-series blocks.
//!
//! Time-series appends carry a block of `(timestamp, value)` samples per
//! operation. Stored raw, a block of `n` samples costs `16 n` bytes; the
//! Gorilla codec (Facebook's in-memory TSDB, VLDB'15) exploits the two
//! regularities of monitoring data instead:
//!
//! * **Timestamps** arrive at a near-constant cadence, so the
//!   *delta-of-delta* between consecutive timestamps is almost always zero.
//!   A zero delta-of-delta costs a single `0` bit; small jitter costs 9–14
//!   bits; only a genuine gap pays the full 4 + 64 bits.
//! * **Values** drift slowly, so the XOR of consecutive IEEE-754 bit
//!   patterns has long runs of leading and trailing zeros. An unchanged
//!   value costs one bit; a changed one stores only the "meaningful" middle
//!   bits, reusing the previous leading/trailing window when it still fits.
//!
//! Values travel as raw `u64` bit patterns (`f64::to_bits`) so the codec —
//! and every [`Operation`](crate::Operation) that embeds samples — stays
//! `Eq`-comparable and byte-exact across engines; NaN payloads round-trip
//! unchanged. All timestamp arithmetic is wrapping, so *any* `(u64, u64)`
//! sequence round-trips, not just monotone ones — the property tests rely
//! on that.
//!
//! The wire format is self-delimiting: a 32-bit sample count, then the
//! first sample raw (64 + 64 bits), then per-sample {delta-of-delta code,
//! XOR code} pairs, zero-padded to a byte boundary.

use std::fmt;

/// Decoding failed: the byte stream is truncated or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GorillaError {
    /// Which part of the stream was being read when the bits ran out.
    context: &'static str,
}

impl fmt::Display for GorillaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gorilla stream truncated while reading {}", self.context)
    }
}

impl std::error::Error for GorillaError {}

/// MSB-first bit accumulator backing the encoder.
#[derive(Debug, Default)]
struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte of `buf` (0 means "full/none").
    used: u8,
}

impl BitWriter {
    fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
            self.used = 8;
        }
        self.used -= 1;
        if bit {
            *self.buf.last_mut().unwrap() |= 1 << self.used;
        }
    }

    /// Writes the low `n` bits of `value`, most significant first.
    fn push_bits(&mut self, value: u64, n: u8) {
        for i in (0..n).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// MSB-first bit cursor backing the decoder.
#[derive(Debug)]
struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position of the next unread bit.
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    fn read_bit(&mut self, context: &'static str) -> Result<bool, GorillaError> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(GorillaError { context });
        }
        let bit = self.buf[byte] >> (7 - self.pos % 8) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    fn read_bits(&mut self, n: u8, context: &'static str) -> Result<u64, GorillaError> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit(context)? as u64;
        }
        Ok(v)
    }
}

/// Compresses `(timestamp, value_bits)` samples into a Gorilla bitstream.
///
/// Values are IEEE-754 bit patterns (`f64::to_bits`); see [`encode_f64`]
/// for the convenience wrapper. The output decodes back to exactly the
/// input via [`decode`] for *any* input, monotone or not.
pub fn encode(samples: &[(u64, u64)]) -> Vec<u8> {
    let mut w = BitWriter::default();
    w.push_bits(samples.len() as u64, 32);
    let Some(&(first_ts, first_val)) = samples.first() else {
        return w.into_bytes();
    };
    w.push_bits(first_ts, 64);
    w.push_bits(first_val, 64);

    let mut prev_ts = first_ts;
    let mut prev_delta: i64 = 0;
    let mut prev_val = first_val;
    // leading/trailing-zero window of the last explicitly-sized XOR; `None`
    // until one has been written, forcing the first changed value to size
    // its own window
    let mut window: Option<(u32, u32)> = None;

    for &(ts, val) in &samples[1..] {
        // timestamps: delta-of-delta, bucketed by magnitude as in the paper
        let delta = ts.wrapping_sub(prev_ts) as i64;
        let dod = delta.wrapping_sub(prev_delta);
        if dod == 0 {
            w.push_bit(false);
        } else if (-63..=64).contains(&dod) {
            w.push_bits(0b10, 2);
            w.push_bits((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            w.push_bits(0b110, 3);
            w.push_bits((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            w.push_bits(0b1110, 4);
            w.push_bits((dod + 2047) as u64, 12);
        } else {
            w.push_bits(0b1111, 4);
            w.push_bits(dod as u64, 64);
        }
        prev_ts = ts;
        prev_delta = delta;

        // values: XOR against the previous sample
        let xor = val ^ prev_val;
        prev_val = val;
        if xor == 0 {
            w.push_bit(false);
            continue;
        }
        w.push_bit(true);
        let lead = xor.leading_zeros();
        let trail = xor.trailing_zeros();
        match window {
            Some((wl, wt)) if lead >= wl && trail >= wt => {
                // the meaningful bits fit inside the previous window: reuse
                // it and skip re-encoding the window bounds
                w.push_bit(false);
                w.push_bits(xor >> wt, (64 - wl - wt) as u8);
            }
            _ => {
                let len = 64 - lead - trail;
                w.push_bit(true);
                w.push_bits(lead as u64, 6);
                // len is 1..=64, stored biased so 64 fits in 6 bits
                w.push_bits((len - 1) as u64, 6);
                w.push_bits(xor >> trail, len as u8);
                window = Some((lead, trail));
            }
        }
    }
    w.into_bytes()
}

/// Decompresses a bitstream produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<(u64, u64)>, GorillaError> {
    let mut r = BitReader::new(bytes);
    let count = r.read_bits(32, "sample count")? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    if count == 0 {
        return Ok(out);
    }
    let first_ts = r.read_bits(64, "first timestamp")?;
    let first_val = r.read_bits(64, "first value")?;
    out.push((first_ts, first_val));

    let mut prev_ts = first_ts;
    let mut prev_delta: i64 = 0;
    let mut prev_val = first_val;
    let mut window: Option<(u32, u32)> = None;

    while out.len() < count {
        let dod: i64 = if !r.read_bit("timestamp code")? {
            0
        } else if !r.read_bit("timestamp code")? {
            r.read_bits(7, "7-bit delta-of-delta")? as i64 - 63
        } else if !r.read_bit("timestamp code")? {
            r.read_bits(9, "9-bit delta-of-delta")? as i64 - 255
        } else if !r.read_bit("timestamp code")? {
            r.read_bits(12, "12-bit delta-of-delta")? as i64 - 2047
        } else {
            r.read_bits(64, "64-bit delta-of-delta")? as i64
        };
        let delta = prev_delta.wrapping_add(dod);
        let ts = prev_ts.wrapping_add(delta as u64);
        prev_ts = ts;
        prev_delta = delta;

        let val = if !r.read_bit("value code")? {
            prev_val
        } else if !r.read_bit("value code")? {
            let (wl, wt) = window.ok_or(GorillaError { context: "reused window before any window" })?;
            let xor = r.read_bits((64 - wl - wt) as u8, "windowed xor bits")? << wt;
            prev_val ^ xor
        } else {
            let lead = r.read_bits(6, "xor leading zeros")? as u32;
            let len = r.read_bits(6, "xor length")? as u32 + 1;
            if lead + len > 64 {
                return Err(GorillaError { context: "xor window wider than 64 bits" });
            }
            let trail = 64 - lead - len;
            let xor = r.read_bits(len as u8, "xor bits")? << trail;
            window = Some((lead, trail));
            prev_val ^ xor
        };
        prev_val = val;
        out.push((ts, val));
    }
    Ok(out)
}

/// [`encode`] for `f64` values: converts through `f64::to_bits`.
pub fn encode_f64(samples: &[(u64, f64)]) -> Vec<u8> {
    let bits: Vec<(u64, u64)> = samples.iter().map(|&(t, v)| (t, v.to_bits())).collect();
    encode(&bits)
}

/// [`decode`] for `f64` values: converts through `f64::from_bits`.
pub fn decode_f64(bytes: &[u8]) -> Result<Vec<(u64, f64)>, GorillaError> {
    Ok(decode(bytes)?.into_iter().map(|(t, v)| (t, f64::from_bits(v))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_and_single_sample_round_trip() {
        assert_eq!(decode(&encode(&[])).unwrap(), vec![]);
        let one = [(1_000_000u64, 42.5f64.to_bits())];
        assert_eq!(decode(&encode(&one)).unwrap(), one);
    }

    #[test]
    fn regular_cadence_round_trips_and_compresses() {
        // a constant-rate gauge: the codec's sweet spot
        let samples: Vec<(u64, u64)> = (0..1_000u64)
            .map(|i| (1_600_000_000 + i * 60, (20.0 + (i % 5) as f64 * 0.25).to_bits()))
            .collect();
        let bytes = encode(&samples);
        assert_eq!(decode(&bytes).unwrap(), samples);
        let raw = samples.len() * 16;
        assert!(
            bytes.len() * 4 < raw,
            "expected >4x compression on regular data, got {} vs {raw}",
            bytes.len()
        );
    }

    #[test]
    fn constant_values_cost_one_bit_each() {
        let samples: Vec<(u64, u64)> = (0..512u64).map(|i| (i * 10, 7.0f64.to_bits())).collect();
        let bytes = encode(&samples);
        assert_eq!(decode(&bytes).unwrap(), samples);
        // header (4 + 16 bytes) plus ~2 bits per sample
        assert!(bytes.len() < 20 + samples.len() / 2, "got {} bytes", bytes.len());
    }

    #[test]
    fn irregular_timestamps_and_nan_payloads_round_trip() {
        let samples = [
            (u64::MAX, f64::NAN.to_bits() | 0xDEAD),
            (0, f64::INFINITY.to_bits()),
            (1 << 63, (-0.0f64).to_bits()),
            (3, 0),
            (u64::MAX - 1, u64::MAX),
        ];
        assert_eq!(decode(&encode(&samples)).unwrap(), samples);
    }

    #[test]
    fn random_walks_round_trip() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..20 {
            let mut ts = rng.gen_range(0..1u64 << 40);
            let mut v = rng.gen::<f64>() * 2e6 - 1e6;
            let samples: Vec<(u64, u64)> = (0..rng.gen_range(1u32..300))
                .map(|_| {
                    ts += rng.gen_range(1u64..100);
                    v += rng.gen::<f64>() * 20.0 - 10.0;
                    (ts, v.to_bits())
                })
                .collect();
            assert_eq!(decode(&encode(&samples)).unwrap(), samples);
        }
    }

    #[test]
    fn truncated_streams_error_instead_of_panicking() {
        let samples: Vec<(u64, u64)> =
            (0..64u64).map(|i| (i * 60, (i as f64).sin().to_bits())).collect();
        let bytes = encode(&samples);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn f64_wrappers_round_trip() {
        let samples = [(100u64, 1.5f64), (160, 1.5), (220, -3.25), (280, 0.0)];
        let got = decode_f64(&encode_f64(&samples)).unwrap();
        assert_eq!(got, samples);
    }
}
