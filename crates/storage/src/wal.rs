//! Write-ahead log.
//!
//! Every mutation is appended to the WAL before it is acknowledged, so the
//! buffered (not yet flushed) part of the tree survives a crash. How strongly
//! the append is pinned to the platter before the acknowledgement is the
//! [`SyncPolicy`] knob ([`FileWal`] defaults to [`SyncPolicy::Always`], i.e.
//! fsync-per-append); a crash mid-append leaves a torn trailing frame which
//! replay truncates away, recovering the valid prefix. The paper's
//! persistence guarantee (§4.1.5) additionally requires that tombstones do not
//! out-live the delete-persistence threshold `D_th` *inside the WAL*: if the
//! WAL is not rotated faster than `D_th`, a dedicated routine copies live
//! records younger than `D_th` to a fresh log and discards the old one. That
//! routine is [`Wal::purge_older_than`].

use crate::barrier;
use crate::clock::Timestamp;
use crate::entry::{DeleteKey, SortKey};
use crate::error::{Result, StorageError};
use crate::failpoint::FailPoint;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lethe_sync::{LockRank, Mutex, MutexGuard};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// When [`FileWal::append`] forces the log to durable storage.
///
/// The write path promises "logged before acknowledged"; how strong that
/// promise is against an OS or power failure is this knob. In-process crash
/// recovery (the engine being dropped or killed) is unaffected: appends reach
/// the file immediately under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append: an acknowledged write is always durable.
    /// The default for durable stores.
    Always,
    /// `fsync` once every `n` appends: bounds the loss window to at most
    /// `n - 1` acknowledged writes.
    EveryN(u64),
    /// Only `fsync` when the buffer is flushed (or [`Wal::sync`] is called
    /// explicitly): fastest, loses up to one buffer of acknowledged writes on
    /// a power failure.
    OnFlush,
}

/// One operation inside a [`WalRecord::Batch`]. The batch carries the shared
/// logical timestamp; the ops themselves are timestamp-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// A put of `(sort_key, delete_key, value)`.
    Put {
        /// Primary sort key `S`.
        sort_key: SortKey,
        /// Secondary delete key `D`.
        delete_key: DeleteKey,
        /// Opaque value bytes.
        value: Bytes,
    },
    /// A point delete of `sort_key`.
    Delete {
        /// Primary sort key `S`.
        sort_key: SortKey,
    },
    /// A secondary range delete of **delete keys** `[d_lo, d_hi)`.
    SecondaryDelete {
        /// Inclusive lower delete-key bound.
        d_lo: DeleteKey,
        /// Exclusive upper delete-key bound.
        d_hi: DeleteKey,
    },
}

impl BatchOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BatchOp::Put { sort_key, delete_key, value } => {
                buf.put_u8(0);
                buf.put_u64(*sort_key);
                buf.put_u64(*delete_key);
                buf.put_u32(value.len() as u32);
                buf.put_slice(value);
            }
            BatchOp::Delete { sort_key } => {
                buf.put_u8(1);
                buf.put_u64(*sort_key);
            }
            BatchOp::SecondaryDelete { d_lo, d_hi } => {
                buf.put_u8(2);
                buf.put_u64(*d_lo);
                buf.put_u64(*d_hi);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self> {
        if buf.remaining() < 1 {
            return Err(StorageError::Corruption("wal batch op truncated".into()));
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < 20 {
                    return Err(StorageError::Corruption("wal batch put truncated".into()));
                }
                let sort_key = buf.get_u64();
                let delete_key = buf.get_u64();
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(StorageError::Corruption("wal batch put value truncated".into()));
                }
                let value = buf.copy_to_bytes(len);
                Ok(BatchOp::Put { sort_key, delete_key, value })
            }
            1 => {
                if buf.remaining() < 8 {
                    return Err(StorageError::Corruption("wal batch delete truncated".into()));
                }
                Ok(BatchOp::Delete { sort_key: buf.get_u64() })
            }
            2 => {
                if buf.remaining() < 16 {
                    return Err(StorageError::Corruption(
                        "wal batch secondary delete truncated".into(),
                    ));
                }
                Ok(BatchOp::SecondaryDelete { d_lo: buf.get_u64(), d_hi: buf.get_u64() })
            }
            t => Err(StorageError::Corruption(format!("unknown wal batch op tag {t}"))),
        }
    }
}

/// A logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A put of `(sort_key, delete_key, value)` at logical time `ts`.
    Put { sort_key: SortKey, delete_key: DeleteKey, value: Bytes, ts: Timestamp },
    /// A point delete of `sort_key` at logical time `ts`.
    Delete { sort_key: SortKey, ts: Timestamp },
    /// A range delete of sort keys `[start, end)` at logical time `ts`.
    DeleteRange { start: SortKey, end: SortKey, ts: Timestamp },
    /// A secondary range delete of **delete keys** `[d_lo, d_hi)` at logical
    /// time `ts`. Logged so that a crash after the acknowledgement cannot
    /// resurrect buffered entries the delete purged: replaying the log in
    /// order re-purges them.
    SecondaryDelete { d_lo: DeleteKey, d_hi: DeleteKey, ts: Timestamp },
    /// An atomic multi-op batch logged as **one frame**, so the torn-tail
    /// truncation that protects single records extends, for free, to whole
    /// batches: after a crash the batch is either entirely in the recovered
    /// prefix or entirely gone, never split.
    ///
    /// `id` is `None` for a batch confined to one WAL (single shard — the
    /// frame itself is the commit point). A cross-shard batch carries the
    /// store-wide batch id of its per-shard slice; replay must hold such a
    /// slice back until the batch-commit log proves the id committed.
    Batch {
        /// Store-wide batch id for cross-shard batches, `None` when the
        /// frame alone is the commit point.
        id: Option<u64>,
        /// The operations, applied in order under one commit timestamp.
        ops: Vec<BatchOp>,
        /// Shared logical timestamp of every op in the batch.
        ts: Timestamp,
    },
}

impl WalRecord {
    /// Logical timestamp the record was appended at.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            WalRecord::Put { ts, .. }
            | WalRecord::Delete { ts, .. }
            | WalRecord::DeleteRange { ts, .. }
            | WalRecord::SecondaryDelete { ts, .. }
            | WalRecord::Batch { ts, .. } => *ts,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::Put { sort_key, delete_key, value, ts } => {
                buf.put_u8(0);
                buf.put_u64(*sort_key);
                buf.put_u64(*delete_key);
                buf.put_u64(*ts);
                buf.put_u32(value.len() as u32);
                buf.put_slice(value);
            }
            WalRecord::Delete { sort_key, ts } => {
                buf.put_u8(1);
                buf.put_u64(*sort_key);
                buf.put_u64(*ts);
            }
            WalRecord::DeleteRange { start, end, ts } => {
                buf.put_u8(2);
                buf.put_u64(*start);
                buf.put_u64(*end);
                buf.put_u64(*ts);
            }
            WalRecord::SecondaryDelete { d_lo, d_hi, ts } => {
                buf.put_u8(3);
                buf.put_u64(*d_lo);
                buf.put_u64(*d_hi);
                buf.put_u64(*ts);
            }
            WalRecord::Batch { id, ops, ts } => {
                buf.put_u8(4);
                match id {
                    Some(id) => {
                        buf.put_u8(1);
                        buf.put_u64(*id);
                    }
                    None => buf.put_u8(0),
                }
                buf.put_u64(*ts);
                buf.put_u32(ops.len() as u32);
                for op in ops {
                    op.encode(buf);
                }
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self> {
        if buf.remaining() < 1 {
            return Err(StorageError::Corruption("wal record truncated".into()));
        }
        let tag = buf.get_u8();
        match tag {
            0 => {
                if buf.remaining() < 28 {
                    return Err(StorageError::Corruption("wal put truncated".into()));
                }
                let sort_key = buf.get_u64();
                let delete_key = buf.get_u64();
                let ts = buf.get_u64();
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(StorageError::Corruption("wal put value truncated".into()));
                }
                let value = buf.copy_to_bytes(len);
                Ok(WalRecord::Put { sort_key, delete_key, value, ts })
            }
            1 => {
                if buf.remaining() < 16 {
                    return Err(StorageError::Corruption("wal delete truncated".into()));
                }
                Ok(WalRecord::Delete { sort_key: buf.get_u64(), ts: buf.get_u64() })
            }
            2 => {
                if buf.remaining() < 24 {
                    return Err(StorageError::Corruption("wal range delete truncated".into()));
                }
                Ok(WalRecord::DeleteRange { start: buf.get_u64(), end: buf.get_u64(), ts: buf.get_u64() })
            }
            3 => {
                if buf.remaining() < 24 {
                    return Err(StorageError::Corruption("wal secondary delete truncated".into()));
                }
                Ok(WalRecord::SecondaryDelete {
                    d_lo: buf.get_u64(),
                    d_hi: buf.get_u64(),
                    ts: buf.get_u64(),
                })
            }
            4 => {
                if buf.remaining() < 1 {
                    return Err(StorageError::Corruption("wal batch truncated".into()));
                }
                let id = match buf.get_u8() {
                    0 => None,
                    1 => {
                        if buf.remaining() < 8 {
                            return Err(StorageError::Corruption("wal batch id truncated".into()));
                        }
                        Some(buf.get_u64())
                    }
                    t => {
                        return Err(StorageError::Corruption(format!(
                            "unknown wal batch id marker {t}"
                        )))
                    }
                };
                if buf.remaining() < 12 {
                    return Err(StorageError::Corruption("wal batch header truncated".into()));
                }
                let ts = buf.get_u64();
                let n = buf.get_u32() as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(BatchOp::decode(buf)?);
                }
                Ok(WalRecord::Batch { id, ops, ts })
            }
            t => Err(StorageError::Corruption(format!("unknown wal tag {t}"))),
        }
    }
}

/// A write-ahead log.
pub trait Wal: Send + Sync {
    /// Appends a record.
    fn append(&self, record: WalRecord) -> Result<()>;
    /// Appends a record **without** applying the sync policy. A group-commit
    /// leader stages every queued record with this, then makes the combined
    /// tail durable with one [`Wal::commit`] — the whole point of group
    /// commit is that the fsync count scales with commit groups, not records.
    /// The default implementation degrades to a plain [`Wal::append`].
    fn append_nosync(&self, record: WalRecord) -> Result<()> {
        self.append(record)
    }
    /// Makes everything staged by [`Wal::append_nosync`] as durable as the
    /// sync policy demands (under [`SyncPolicy::Always`], one fsync for the
    /// whole staged tail). The default implementation is a no-op because the
    /// default `append_nosync` already syncs per record.
    fn commit(&self) -> Result<()> {
        Ok(())
    }
    /// Number of durability barriers (`fsync`/`fdatasync`) this log has
    /// issued. Benches and tests assert group commit keeps this sublinear in
    /// the record count. Logs without real durability report 0.
    fn fsync_count(&self) -> u64 {
        0
    }
    /// Returns every record currently in the log, oldest first.
    fn replay(&self) -> Result<Vec<WalRecord>>;
    /// Removes every record (after a successful flush of the buffer).
    fn truncate(&self) -> Result<()>;
    /// Forces the log to durable storage.
    fn sync(&self) -> Result<()>;
    /// Retains only records with `timestamp >= cutoff`. This is the paper's
    /// WAL hygiene routine that keeps tombstone persistence bounded by `D_th`
    /// even when the log is rotated slowly.
    fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize>;
    /// Number of records currently in the log. A background flush captures
    /// this position when it freezes the write buffer, so the commit can
    /// later discard exactly the records it covered while concurrent appends
    /// keep extending the tail.
    fn position(&self) -> Result<u64> {
        Ok(self.replay()?.len() as u64)
    }
    /// Removes the first `upto` records (those at positions `< upto`),
    /// keeping any records appended after the position was captured. The
    /// default implementation only supports the degenerate case where the
    /// prefix is the whole log (the single-threaded flush path).
    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        if upto >= self.position()? {
            self.truncate()
        } else {
            Err(StorageError::InvalidOperation(
                "this WAL does not support partial prefix truncation".into(),
            ))
        }
    }
}

/// An in-memory WAL for tests and simulations (durability is out of scope for
/// the simulated device; the record/replay semantics are identical).
#[derive(Debug)]
pub struct MemWal {
    records: Mutex<Vec<WalRecord>>,
}

impl Default for MemWal {
    fn default() -> Self {
        Self::new()
    }
}

impl MemWal {
    /// Creates an empty in-memory WAL.
    pub fn new() -> Self {
        MemWal { records: Mutex::new(LockRank::Wal, Vec::new()) }
    }
}

impl Wal for MemWal {
    fn append(&self, record: WalRecord) -> Result<()> {
        self.records.lock().push(record);
        Ok(())
    }

    fn replay(&self) -> Result<Vec<WalRecord>> {
        Ok(self.records.lock().clone())
    }

    fn truncate(&self) -> Result<()> {
        self.records.lock().clear();
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize> {
        let mut records = self.records.lock();
        let before = records.len();
        records.retain(|r| r.timestamp() >= cutoff);
        Ok(before - records.len())
    }

    fn position(&self) -> Result<u64> {
        Ok(self.records.lock().len() as u64)
    }

    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        let mut records = self.records.lock();
        let n = (upto as usize).min(records.len());
        records.drain(..n);
        Ok(())
    }
}

/// A durable, file-backed WAL with length-prefixed records.
///
/// Crash tolerance: a crash mid-append leaves a *torn* trailing frame (a
/// dangling length prefix, or a frame body shorter than its prefix). Replay
/// recovers the valid prefix of the log, truncates the torn tail away and
/// counts the event in [`FileWal::torn_tails_recovered`] — it is the
/// expected end state after a kill, not corruption. Only damage *before* the
/// last valid frame (an undecodable complete frame) is reported as
/// [`StorageError::Corruption`].
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: Mutex<File>,
    sync_policy: SyncPolicy,
    appends_since_sync: AtomicU64,
    torn_tails_recovered: AtomicU64,
    /// Records currently in the log; `u64::MAX` until first derived by a
    /// scan. Only read or written while `file` is locked.
    record_count: AtomicU64,
    /// Durability barriers issued on behalf of this log (appends, explicit
    /// syncs, rewrites and their directory fsyncs).
    fsyncs: AtomicU64,
    failpoint: FailPoint,
}

/// Sentinel for "record count not derived yet".
const COUNT_UNKNOWN: u64 = u64::MAX;

impl FileWal {
    /// Opens (or creates) the WAL file at `path` with [`SyncPolicy::Always`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).read(true).append(true).open(path.as_ref())?;
        Ok(FileWal {
            path: path.as_ref().to_path_buf(),
            file: Mutex::new(LockRank::Wal, file),
            sync_policy: SyncPolicy::Always,
            appends_since_sync: AtomicU64::new(0),
            torn_tails_recovered: AtomicU64::new(0),
            record_count: AtomicU64::new(COUNT_UNKNOWN),
            fsyncs: AtomicU64::new(0),
            failpoint: FailPoint::new(),
        })
    }

    /// Sets the append durability policy.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Attaches a crash-injection fail point consulted before every append
    /// and rewrite step (testing aid).
    pub fn with_failpoint(mut self, fp: FailPoint) -> Self {
        self.failpoint = fp;
        self
    }

    /// Number of torn trailing frames recovered (truncated away) by replays
    /// so far — normally 0 or 1 right after a crash-reopen.
    pub fn torn_tails_recovered(&self) -> u64 {
        self.torn_tails_recovered.load(Ordering::Relaxed)
    }

    /// Writes one framed record under the file lock without syncing, keeping
    /// the cached record count in step. Shared by the per-record and
    /// group-commit append paths.
    fn write_frame_locked(&self, file: &mut File, record: &WalRecord) -> Result<()> {
        let mut body = BytesMut::new();
        record.encode(&mut body);
        let mut frame = BytesMut::with_capacity(body.len() + 4);
        frame.put_u32(body.len() as u32);
        frame.extend_from_slice(&body);
        file.write_all(&frame)?;
        let count = self.record_count.load(Ordering::Relaxed);
        if count != COUNT_UNKNOWN {
            self.record_count.store(count + 1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// `fdatasync`s the log file through the counted barrier and resets the
    /// pending-append counter.
    fn sync_data_counted(&self, file: &File) -> Result<()> {
        barrier::sync_data_counted(file, &self.fsyncs)?;
        self.appends_since_sync.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<WalRecord>> {
        let mut guard = self.file.lock();
        self.read_all_locked(&mut guard)
    }

    /// Reads every intact record. Requires the file lock (appends from other
    /// threads must not interleave with the scan or the torn-tail truncation).
    fn read_all_locked(&self, guard: &mut MutexGuard<'_, File>) -> Result<Vec<WalRecord>> {
        let mut data = Vec::new();
        {
            let mut file = OpenOptions::new().read(true).open(&self.path)?;
            file.read_to_end(&mut data)?;
        }
        let total = data.len() as u64;
        let mut buf = Bytes::from(data);
        let mut out = Vec::new();
        let mut valid = 0u64; // bytes consumed by complete, decodable frames
        while buf.remaining() >= 4 {
            let len = {
                let mut peek = buf.clone();
                peek.get_u32() as usize
            };
            if buf.remaining() < 4 + len {
                break; // torn tail: length prefix promises more than exists
            }
            buf.advance(4);
            let mut frame = buf.copy_to_bytes(len);
            // a *complete* frame that does not decode is real corruption
            out.push(WalRecord::decode(&mut frame)?);
            valid += 4 + len as u64;
        }
        if valid < total {
            // recover the valid prefix: drop the torn tail (1-3 dangling
            // header bytes, or a frame shorter than its length prefix)
            guard.set_len(valid)?;
            barrier::sync_all_counted(guard, &self.fsyncs)?;
            self.torn_tails_recovered.fetch_add(1, Ordering::Relaxed);
        }
        self.record_count.store(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn rewrite(&self, records: &[WalRecord]) -> Result<()> {
        let mut guard = self.file.lock();
        self.rewrite_locked(&mut guard, records)
    }

    /// Atomically replaces the log contents. Requires the file lock so that
    /// no append can slip in between the snapshot the caller took and the
    /// rename (it would be silently discarded).
    fn rewrite_locked(
        &self,
        guard: &mut MutexGuard<'_, File>,
        records: &[WalRecord],
    ) -> Result<()> {
        self.failpoint.check("wal.rewrite.begin")?;
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            for r in records {
                let mut body = BytesMut::new();
                r.encode(&mut body);
                let mut frame = BytesMut::with_capacity(body.len() + 4);
                frame.put_u32(body.len() as u32);
                frame.extend_from_slice(&body);
                f.write_all(&frame)?;
            }
            barrier::sync_all_counted(&f, &self.fsyncs)?;
        }
        self.failpoint.check("wal.rewrite.rename")?;
        std::fs::rename(&tmp, &self.path)?;
        // the rename itself must survive a power failure before the old log
        // (with records the caller considers flushed) can be considered gone
        barrier::fsync_dir_counted(&self.path, &self.fsyncs)?;
        **guard = OpenOptions::new().read(true).append(true).open(&self.path)?;
        self.record_count.store(records.len() as u64, Ordering::Relaxed);
        self.appends_since_sync.store(0, Ordering::Relaxed);
        Ok(())
    }
}

impl Wal for FileWal {
    fn append(&self, record: WalRecord) -> Result<()> {
        self.failpoint.check("wal.append")?;
        let mut file = self.file.lock();
        self.write_frame_locked(&mut file, &record)?;
        match self.sync_policy {
            SyncPolicy::Always => {
                self.sync_data_counted(&file)?;
            }
            SyncPolicy::EveryN(n) => {
                let pending = self.appends_since_sync.fetch_add(1, Ordering::Relaxed) + 1;
                if pending >= n.max(1) {
                    self.sync_data_counted(&file)?;
                }
            }
            SyncPolicy::OnFlush => {
                self.appends_since_sync.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn append_nosync(&self, record: WalRecord) -> Result<()> {
        self.failpoint.check("wal.append_nosync")?;
        let mut file = self.file.lock();
        self.write_frame_locked(&mut file, &record)?;
        self.appends_since_sync.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn commit(&self) -> Result<()> {
        let file = self.file.lock();
        match self.sync_policy {
            SyncPolicy::Always => {
                if self.appends_since_sync.load(Ordering::Relaxed) > 0 {
                    self.sync_data_counted(&file)?;
                }
            }
            SyncPolicy::EveryN(n) => {
                if self.appends_since_sync.load(Ordering::Relaxed) >= n.max(1) {
                    self.sync_data_counted(&file)?;
                }
            }
            SyncPolicy::OnFlush => {}
        }
        Ok(())
    }

    fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    fn replay(&self) -> Result<Vec<WalRecord>> {
        self.read_all()
    }

    fn truncate(&self) -> Result<()> {
        self.rewrite(&[])
    }

    fn sync(&self) -> Result<()> {
        barrier::sync_all_counted(&self.file.lock(), &self.fsyncs)?;
        self.appends_since_sync.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize> {
        let mut guard = self.file.lock();
        let records = self.read_all_locked(&mut guard)?;
        let before = records.len();
        let keep: Vec<WalRecord> = records.into_iter().filter(|r| r.timestamp() >= cutoff).collect();
        let purged = before - keep.len();
        self.rewrite_locked(&mut guard, &keep)?;
        Ok(purged)
    }

    fn position(&self) -> Result<u64> {
        let mut guard = self.file.lock();
        let count = self.record_count.load(Ordering::Relaxed);
        if count != COUNT_UNKNOWN {
            return Ok(count);
        }
        Ok(self.read_all_locked(&mut guard)?.len() as u64)
    }

    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        let mut guard = self.file.lock();
        // fast path: when the prefix covers the whole log (no record was
        // appended since the position was captured — the common case for a
        // flush commit), skip the full-log read-and-reparse and write an
        // empty log directly
        let count = self.record_count.load(Ordering::Relaxed);
        if count != COUNT_UNKNOWN && upto >= count {
            return self.rewrite_locked(&mut guard, &[]);
        }
        let records = self.read_all_locked(&mut guard)?;
        let n = (upto as usize).min(records.len());
        self.rewrite_locked(&mut guard, &records[n..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Put { sort_key: 1, delete_key: 11, value: Bytes::from_static(b"hello"), ts: 10 },
            WalRecord::Delete { sort_key: 2, ts: 20 },
            WalRecord::DeleteRange { start: 5, end: 9, ts: 30 },
        ]
    }

    #[test]
    fn mem_wal_roundtrip_and_truncate() {
        let w = MemWal::new();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        assert_eq!(w.replay().unwrap(), sample_records());
        w.truncate().unwrap();
        assert!(w.replay().unwrap().is_empty());
        w.sync().unwrap();
    }

    #[test]
    fn mem_wal_purge_respects_cutoff() {
        let w = MemWal::new();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        let purged = w.purge_older_than(20).unwrap();
        assert_eq!(purged, 1);
        let left = w.replay().unwrap();
        assert_eq!(left.len(), 2);
        assert!(left.iter().all(|r| r.timestamp() >= 20));
    }

    #[test]
    fn file_wal_roundtrip() {
        let path = std::env::temp_dir().join(format!("lethe-wal-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.replay().unwrap(), sample_records());
        // reopening sees the same records
        drop(w);
        let w2 = FileWal::open(&path).unwrap();
        assert_eq!(w2.replay().unwrap(), sample_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_wal_purge_and_truncate() {
        let path = std::env::temp_dir().join(format!("lethe-wal2-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        assert_eq!(w.purge_older_than(25).unwrap(), 2);
        assert_eq!(w.replay().unwrap().len(), 1);
        w.truncate().unwrap();
        assert!(w.replay().unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_wal_recovers_valid_prefix_of_torn_tail() {
        let path = std::env::temp_dir().join(format!("lethe-wal-torn-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let w = FileWal::open(&path).unwrap();
            for r in sample_records() {
                w.append(r).unwrap();
            }
        }
        // simulate a crash mid-append: a complete frame for a 4th record,
        // then chop it so only the length prefix and 2 body bytes survive
        {
            use std::io::Write;
            let mut body = BytesMut::new();
            WalRecord::Delete { sort_key: 99, ts: 40 }.encode(&mut body);
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let mut frame = BytesMut::new();
            frame.put_u32(body.len() as u32);
            frame.extend_from_slice(&body[..2]);
            f.write_all(&frame).unwrap();
        }
        let w = FileWal::open(&path).unwrap();
        // replay recovers the 3 intact records instead of failing
        assert_eq!(w.replay().unwrap(), sample_records());
        assert_eq!(w.torn_tails_recovered(), 1);
        // the torn tail is gone from the file: a re-open replays cleanly
        drop(w);
        let w2 = FileWal::open(&path).unwrap();
        assert_eq!(w2.replay().unwrap(), sample_records());
        assert_eq!(w2.torn_tails_recovered(), 0);
        // appending after recovery extends the intact prefix
        w2.append(WalRecord::Delete { sort_key: 7, ts: 50 }).unwrap();
        assert_eq!(w2.replay().unwrap().len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_wal_recovers_dangling_header_bytes() {
        let path =
            std::env::temp_dir().join(format!("lethe-wal-dangle-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let w = FileWal::open(&path).unwrap();
            w.append(WalRecord::Delete { sort_key: 1, ts: 10 }).unwrap();
        }
        // 1-3 dangling bytes of a never-completed length prefix
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB, 0xCD]).unwrap();
        }
        let w = FileWal::open(&path).unwrap();
        assert_eq!(w.replay().unwrap().len(), 1);
        assert_eq!(w.torn_tails_recovered(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_policies_acknowledge_every_append() {
        for policy in [SyncPolicy::Always, SyncPolicy::EveryN(3), SyncPolicy::OnFlush] {
            let path = std::env::temp_dir()
                .join(format!("lethe-wal-sync-{:?}-{}.wal", policy, std::process::id()));
            let _ = std::fs::remove_file(&path);
            let w = FileWal::open(&path).unwrap().with_sync_policy(policy);
            for r in sample_records() {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
            assert_eq!(w.replay().unwrap(), sample_records());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn failpoint_aborts_append_and_rewrite() {
        let path = std::env::temp_dir().join(format!("lethe-wal-fp-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fp = FailPoint::new();
        let w = FileWal::open(&path).unwrap().with_failpoint(fp.clone());
        w.append(WalRecord::Delete { sort_key: 1, ts: 1 }).unwrap();
        fp.arm(0);
        assert!(matches!(
            w.append(WalRecord::Delete { sort_key: 2, ts: 2 }),
            Err(StorageError::Injected)
        ));
        // the failed append wrote nothing
        assert_eq!(w.replay().unwrap().len(), 1);
        fp.arm(1);
        assert!(matches!(w.truncate(), Err(StorageError::Injected)));
        // the aborted rewrite left the original log intact
        assert_eq!(w.replay().unwrap().len(), 1);
        w.truncate().unwrap();
        assert!(w.replay().unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_prefix_keeps_concurrently_appended_tail() {
        let path =
            std::env::temp_dir().join(format!("lethe-wal-prefix-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        // a flush captures the position, then two more records arrive
        // before the commit truncates its prefix
        let upto = w.position().unwrap();
        assert_eq!(upto, 3);
        w.append(WalRecord::Delete { sort_key: 50, ts: 50 }).unwrap();
        w.append(WalRecord::Delete { sort_key: 60, ts: 60 }).unwrap();
        w.truncate_prefix(upto).unwrap();
        let left = w.replay().unwrap();
        assert_eq!(left.len(), 2, "the tail appended after the capture must survive");
        assert!(left.iter().all(|r| r.timestamp() >= 50));
        assert_eq!(w.position().unwrap(), 2);
        // fast path: prefix covers the whole log
        w.truncate_prefix(w.position().unwrap()).unwrap();
        assert!(w.replay().unwrap().is_empty());
        assert_eq!(w.position().unwrap(), 0);
        // reopening derives the count lazily and agrees
        drop(w);
        let w2 = FileWal::open(&path).unwrap();
        assert_eq!(w2.position().unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mem_wal_prefix_semantics() {
        let w = MemWal::new();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        assert_eq!(w.position().unwrap(), 3);
        w.truncate_prefix(2).unwrap();
        assert_eq!(w.replay().unwrap().len(), 1);
        w.truncate_prefix(99).unwrap();
        assert!(w.replay().unwrap().is_empty());
    }

    #[test]
    fn record_timestamps() {
        for (r, want) in sample_records().into_iter().zip([10u64, 20, 30]) {
            assert_eq!(r.timestamp(), want);
        }
        assert_eq!(WalRecord::SecondaryDelete { d_lo: 1, d_hi: 2, ts: 40 }.timestamp(), 40);
    }

    fn sample_batch(id: Option<u64>) -> WalRecord {
        WalRecord::Batch {
            id,
            ops: vec![
                BatchOp::Put { sort_key: 1, delete_key: 11, value: Bytes::from_static(b"a") },
                BatchOp::Delete { sort_key: 2 },
                BatchOp::SecondaryDelete { d_lo: 3, d_hi: 9 },
            ],
            ts: 77,
        }
    }

    #[test]
    fn batch_record_roundtrips() {
        let path = std::env::temp_dir().join(format!("lethe-wal-batch-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap();
        let records =
            vec![sample_batch(None), sample_batch(Some(42)), WalRecord::Batch { id: None, ops: vec![], ts: 5 }];
        for r in &records {
            w.append(r.clone()).unwrap();
        }
        assert_eq!(w.replay().unwrap(), records);
        assert_eq!(records[0].timestamp(), 77);
        // reopening decodes the same frames
        drop(w);
        let w2 = FileWal::open(&path).unwrap();
        assert_eq!(w2.replay().unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_batch_frame_is_discarded_whole() {
        let path = std::env::temp_dir().join(format!("lethe-wal-tornb-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let w = FileWal::open(&path).unwrap();
            w.append(WalRecord::Delete { sort_key: 1, ts: 10 }).unwrap();
        }
        // a batch frame chopped mid-op: the whole batch must vanish on
        // replay — all-or-nothing, never a prefix of its ops
        {
            use std::io::Write;
            let mut body = BytesMut::new();
            sample_batch(None).encode(&mut body);
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let mut frame = BytesMut::new();
            frame.put_u32(body.len() as u32);
            frame.extend_from_slice(&body[..body.len() - 3]);
            f.write_all(&frame).unwrap();
        }
        let w = FileWal::open(&path).unwrap();
        let left = w.replay().unwrap();
        assert_eq!(left, vec![WalRecord::Delete { sort_key: 1, ts: 10 }]);
        assert_eq!(w.torn_tails_recovered(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_coalesces_fsyncs() {
        let path = std::env::temp_dir().join(format!("lethe-wal-gc-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap(); // SyncPolicy::Always
        for r in sample_records() {
            w.append(r).unwrap();
        }
        let per_record = w.fsync_count();
        assert_eq!(per_record, 3, "Always fsyncs once per append");
        // a leader staging 8 records pays exactly one barrier at commit
        for i in 0..8 {
            w.append_nosync(WalRecord::Delete { sort_key: 100 + i, ts: 100 + i }).unwrap();
        }
        assert_eq!(w.fsync_count(), per_record, "staging must not sync");
        w.commit().unwrap();
        assert_eq!(w.fsync_count(), per_record + 1);
        // an empty commit is free
        w.commit().unwrap();
        assert_eq!(w.fsync_count(), per_record + 1);
        assert_eq!(w.replay().unwrap().len(), 11);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn commit_respects_policy() {
        let path = std::env::temp_dir().join(format!("lethe-wal-gcp-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap().with_sync_policy(SyncPolicy::OnFlush);
        for i in 0..4 {
            w.append_nosync(WalRecord::Delete { sort_key: i, ts: i }).unwrap();
        }
        w.commit().unwrap();
        assert_eq!(w.fsync_count(), 0, "OnFlush defers durability to the flush");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mem_wal_reports_zero_fsyncs() {
        let w = MemWal::new();
        w.append(WalRecord::Delete { sort_key: 1, ts: 1 }).unwrap();
        w.append_nosync(WalRecord::Delete { sort_key: 2, ts: 2 }).unwrap();
        w.commit().unwrap();
        assert_eq!(w.fsync_count(), 0);
        assert_eq!(w.replay().unwrap().len(), 2);
    }

    #[test]
    fn secondary_delete_record_roundtrips() {
        let path = std::env::temp_dir().join(format!("lethe-wal-sd-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap();
        let r = WalRecord::SecondaryDelete { d_lo: 5, d_hi: 10, ts: 99 };
        w.append(r.clone()).unwrap();
        assert_eq!(w.replay().unwrap(), vec![r]);
        let _ = std::fs::remove_file(&path);
    }
}
