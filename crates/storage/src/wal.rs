//! Write-ahead log.
//!
//! Every mutation is appended to the WAL before it is acknowledged, so the
//! buffered (not yet flushed) part of the tree survives a crash. The paper's
//! persistence guarantee (§4.1.5) additionally requires that tombstones do not
//! out-live the delete-persistence threshold `D_th` *inside the WAL*: if the
//! WAL is not rotated faster than `D_th`, a dedicated routine copies live
//! records younger than `D_th` to a fresh log and discards the old one. That
//! routine is [`Wal::purge_older_than`].

use crate::clock::Timestamp;
use crate::entry::{DeleteKey, SortKey};
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A put of `(sort_key, delete_key, value)` at logical time `ts`.
    Put { sort_key: SortKey, delete_key: DeleteKey, value: Bytes, ts: Timestamp },
    /// A point delete of `sort_key` at logical time `ts`.
    Delete { sort_key: SortKey, ts: Timestamp },
    /// A range delete of sort keys `[start, end)` at logical time `ts`.
    DeleteRange { start: SortKey, end: SortKey, ts: Timestamp },
}

impl WalRecord {
    /// Logical timestamp the record was appended at.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            WalRecord::Put { ts, .. } | WalRecord::Delete { ts, .. } | WalRecord::DeleteRange { ts, .. } => *ts,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::Put { sort_key, delete_key, value, ts } => {
                buf.put_u8(0);
                buf.put_u64(*sort_key);
                buf.put_u64(*delete_key);
                buf.put_u64(*ts);
                buf.put_u32(value.len() as u32);
                buf.put_slice(value);
            }
            WalRecord::Delete { sort_key, ts } => {
                buf.put_u8(1);
                buf.put_u64(*sort_key);
                buf.put_u64(*ts);
            }
            WalRecord::DeleteRange { start, end, ts } => {
                buf.put_u8(2);
                buf.put_u64(*start);
                buf.put_u64(*end);
                buf.put_u64(*ts);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self> {
        if buf.remaining() < 1 {
            return Err(StorageError::Corruption("wal record truncated".into()));
        }
        let tag = buf.get_u8();
        match tag {
            0 => {
                if buf.remaining() < 28 {
                    return Err(StorageError::Corruption("wal put truncated".into()));
                }
                let sort_key = buf.get_u64();
                let delete_key = buf.get_u64();
                let ts = buf.get_u64();
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(StorageError::Corruption("wal put value truncated".into()));
                }
                let value = buf.copy_to_bytes(len);
                Ok(WalRecord::Put { sort_key, delete_key, value, ts })
            }
            1 => {
                if buf.remaining() < 16 {
                    return Err(StorageError::Corruption("wal delete truncated".into()));
                }
                Ok(WalRecord::Delete { sort_key: buf.get_u64(), ts: buf.get_u64() })
            }
            2 => {
                if buf.remaining() < 24 {
                    return Err(StorageError::Corruption("wal range delete truncated".into()));
                }
                Ok(WalRecord::DeleteRange { start: buf.get_u64(), end: buf.get_u64(), ts: buf.get_u64() })
            }
            t => Err(StorageError::Corruption(format!("unknown wal tag {t}"))),
        }
    }
}

/// A write-ahead log.
pub trait Wal: Send + Sync {
    /// Appends a record.
    fn append(&self, record: WalRecord) -> Result<()>;
    /// Returns every record currently in the log, oldest first.
    fn replay(&self) -> Result<Vec<WalRecord>>;
    /// Removes every record (after a successful flush of the buffer).
    fn truncate(&self) -> Result<()>;
    /// Forces the log to durable storage.
    fn sync(&self) -> Result<()>;
    /// Retains only records with `timestamp >= cutoff`. This is the paper's
    /// WAL hygiene routine that keeps tombstone persistence bounded by `D_th`
    /// even when the log is rotated slowly.
    fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize>;
}

/// An in-memory WAL for tests and simulations (durability is out of scope for
/// the simulated device; the record/replay semantics are identical).
#[derive(Debug, Default)]
pub struct MemWal {
    records: Mutex<Vec<WalRecord>>,
}

impl MemWal {
    /// Creates an empty in-memory WAL.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Wal for MemWal {
    fn append(&self, record: WalRecord) -> Result<()> {
        self.records.lock().push(record);
        Ok(())
    }

    fn replay(&self) -> Result<Vec<WalRecord>> {
        Ok(self.records.lock().clone())
    }

    fn truncate(&self) -> Result<()> {
        self.records.lock().clear();
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize> {
        let mut records = self.records.lock();
        let before = records.len();
        records.retain(|r| r.timestamp() >= cutoff);
        Ok(before - records.len())
    }
}

/// A durable, file-backed WAL with length-prefixed records.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: Mutex<File>,
}

impl FileWal {
    /// Opens (or creates) the WAL file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).read(true).append(true).open(path.as_ref())?;
        Ok(FileWal { path: path.as_ref().to_path_buf(), file: Mutex::new(file) })
    }

    fn read_all(&self) -> Result<Vec<WalRecord>> {
        let mut data = Vec::new();
        {
            let mut file = OpenOptions::new().read(true).open(&self.path)?;
            file.read_to_end(&mut data)?;
        }
        let mut buf = Bytes::from(data);
        let mut out = Vec::new();
        while buf.remaining() >= 4 {
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(StorageError::Corruption("wal frame truncated".into()));
            }
            let mut frame = buf.copy_to_bytes(len);
            out.push(WalRecord::decode(&mut frame)?);
        }
        Ok(out)
    }

    fn rewrite(&self, records: &[WalRecord]) -> Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            for r in records {
                let mut body = BytesMut::new();
                r.encode(&mut body);
                let mut frame = BytesMut::with_capacity(body.len() + 4);
                frame.put_u32(body.len() as u32);
                frame.extend_from_slice(&body);
                f.write_all(&frame)?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        *self.file.lock() = OpenOptions::new().read(true).append(true).open(&self.path)?;
        Ok(())
    }
}

impl Wal for FileWal {
    fn append(&self, record: WalRecord) -> Result<()> {
        let mut body = BytesMut::new();
        record.encode(&mut body);
        let mut frame = BytesMut::with_capacity(body.len() + 4);
        frame.put_u32(body.len() as u32);
        frame.extend_from_slice(&body);
        self.file.lock().write_all(&frame)?;
        Ok(())
    }

    fn replay(&self) -> Result<Vec<WalRecord>> {
        self.read_all()
    }

    fn truncate(&self) -> Result<()> {
        self.rewrite(&[])
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_all()?;
        Ok(())
    }

    fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize> {
        let records = self.read_all()?;
        let before = records.len();
        let keep: Vec<WalRecord> = records.into_iter().filter(|r| r.timestamp() >= cutoff).collect();
        let purged = before - keep.len();
        self.rewrite(&keep)?;
        Ok(purged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Put { sort_key: 1, delete_key: 11, value: Bytes::from_static(b"hello"), ts: 10 },
            WalRecord::Delete { sort_key: 2, ts: 20 },
            WalRecord::DeleteRange { start: 5, end: 9, ts: 30 },
        ]
    }

    #[test]
    fn mem_wal_roundtrip_and_truncate() {
        let w = MemWal::new();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        assert_eq!(w.replay().unwrap(), sample_records());
        w.truncate().unwrap();
        assert!(w.replay().unwrap().is_empty());
        w.sync().unwrap();
    }

    #[test]
    fn mem_wal_purge_respects_cutoff() {
        let w = MemWal::new();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        let purged = w.purge_older_than(20).unwrap();
        assert_eq!(purged, 1);
        let left = w.replay().unwrap();
        assert_eq!(left.len(), 2);
        assert!(left.iter().all(|r| r.timestamp() >= 20));
    }

    #[test]
    fn file_wal_roundtrip() {
        let path = std::env::temp_dir().join(format!("lethe-wal-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.replay().unwrap(), sample_records());
        // reopening sees the same records
        drop(w);
        let w2 = FileWal::open(&path).unwrap();
        assert_eq!(w2.replay().unwrap(), sample_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_wal_purge_and_truncate() {
        let path = std::env::temp_dir().join(format!("lethe-wal2-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let w = FileWal::open(&path).unwrap();
        for r in sample_records() {
            w.append(r).unwrap();
        }
        assert_eq!(w.purge_older_than(25).unwrap(), 2);
        assert_eq!(w.replay().unwrap().len(), 1);
        w.truncate().unwrap();
        assert!(w.replay().unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_timestamps() {
        for (r, want) in sample_records().into_iter().zip([10u64, 20, 30]) {
            assert_eq!(r.timestamp(), want);
        }
    }
}
