//! The checkpoint completeness marker.
//!
//! An online checkpoint streams a pinned snapshot into a fresh backend and
//! manifest in a target directory while writers continue. Every durable step
//! of that stream can be killed (the backend's and manifest's own fail-point
//! sites fire as usual), so the defining question of a checkpoint directory
//! is: *did the stream finish?* This module answers it with a checksummed
//! `CHECKPOINT` marker file written **last**, via the same
//! tmp-write → fsync → rename → dir-fsync sequence the shard manifest uses:
//!
//! * no marker → the checkpoint is detectably incomplete (a crash before the
//!   final rename), and restore refuses it rather than opening a silently
//!   short store;
//! * a marker present → every file it covers was durable before the marker's
//!   rename, so the directory opens as a normal store at exactly the
//!   snapshot's seqnum fence.
//!
//! The marker records the snapshot fence and the shard count so a restored
//! store can verify it is reading the view it was promised.

use crate::barrier::{fsync_dir_counted, sync_all_counted};
use crate::checksum::crc32;
use crate::entry::SeqNum;
use crate::error::{Result, StorageError};
use crate::failpoint::FailPoint;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::AtomicU64;

/// File name of the completeness marker inside a checkpoint directory.
pub const CHECKPOINT_MARKER: &str = "CHECKPOINT";

const MARKER_MAGIC: &[u8; 8] = b"LCHKPT01";

/// The payload of a checkpoint completeness marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMarker {
    /// The snapshot seqnum fence the checkpoint was streamed at: the
    /// restored store's `next_seqnum` starts here.
    pub fence: SeqNum,
    /// Number of shards whose entries were merged into the checkpoint.
    pub shards: u32,
}

impl CheckpointMarker {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24);
        buf.extend_from_slice(MARKER_MAGIC);
        buf.extend_from_slice(&self.fence.to_le_bytes());
        buf.extend_from_slice(&self.shards.to_le_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    fn decode(data: &[u8]) -> Result<Self> {
        if data.len() != 24 || &data[..8] != MARKER_MAGIC {
            return Err(StorageError::Corruption("checkpoint marker malformed".into()));
        }
        let stored = u32::from_le_bytes([data[20], data[21], data[22], data[23]]);
        if crc32(&data[..20]) != stored {
            return Err(StorageError::Corruption("checkpoint marker checksum mismatch".into()));
        }
        let fence = u64::from_le_bytes([
            data[8], data[9], data[10], data[11], data[12], data[13], data[14], data[15],
        ]);
        let shards = u32::from_le_bytes([data[16], data[17], data[18], data[19]]);
        Ok(CheckpointMarker { fence, shards })
    }
}

/// Durably writes the completeness marker into `dir`, charging its barriers
/// to `fsyncs`. Call this **after** every data file and manifest of the
/// checkpoint is durable — the rename is the checkpoint's commit point.
///
/// The two fail-point sites bracket the durable steps: killed at
/// `checkpoint.marker.tmp` the directory has no marker at all; killed at
/// `checkpoint.marker.rename` it has only the ignored temporary. Either way
/// [`read_marker`] refuses the directory.
pub fn write_marker(
    dir: &Path,
    marker: CheckpointMarker,
    fsyncs: &AtomicU64,
    failpoint: Option<&FailPoint>,
) -> Result<()> {
    let tmp = dir.join("CHECKPOINT.tmp");
    let path = dir.join(CHECKPOINT_MARKER);
    if let Some(fp) = failpoint {
        fp.check("checkpoint.marker.tmp")?;
    }
    let mut file = File::create(&tmp)?;
    file.write_all(&marker.encode())?;
    sync_all_counted(&file, fsyncs)?;
    drop(file);
    if let Some(fp) = failpoint {
        fp.check("checkpoint.marker.rename")?;
    }
    fs::rename(&tmp, &path)?;
    fsync_dir_counted(&path, fsyncs)?;
    Ok(())
}

/// Reads and verifies the completeness marker of a checkpoint directory.
///
/// A missing marker means the checkpoint never committed (torn mid-stream):
/// the error says so explicitly instead of letting a partial directory open
/// as a silently short store. A present-but-corrupt marker is reported as
/// corruption.
pub fn read_marker(dir: &Path) -> Result<CheckpointMarker> {
    let path = dir.join(CHECKPOINT_MARKER);
    if !path.exists() {
        return Err(StorageError::InvalidOperation(format!(
            "no checkpoint marker in {} — the checkpoint is incomplete (crashed before \
             its commit point) and cannot be restored",
            dir.display()
        )));
    }
    let mut data = Vec::new();
    File::open(&path)?.read_to_end(&mut data)?;
    CheckpointMarker::decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("lethe-checkpoint-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn marker_roundtrips_and_counts_barriers() {
        let dir = tmp_dir("roundtrip");
        let n = AtomicU64::new(0);
        let m = CheckpointMarker { fence: 12345, shards: 4 };
        write_marker(&dir, m, &n, None).unwrap();
        // one fsync for the tmp file, one for the directory entry
        assert_eq!(n.load(Ordering::Relaxed), 2);
        assert_eq!(read_marker(&dir).unwrap(), m);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_marker_is_an_explicit_error() {
        let dir = tmp_dir("missing");
        let err = read_marker(&dir).unwrap_err();
        assert!(err.to_string().contains("incomplete"), "got: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_marker_is_rejected() {
        let dir = tmp_dir("corrupt");
        let n = AtomicU64::new(0);
        let m = CheckpointMarker { fence: 7, shards: 1 };
        write_marker(&dir, m, &n, None).unwrap();
        let path = dir.join(CHECKPOINT_MARKER);
        let mut data = fs::read(&path).unwrap();
        data[9] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        assert!(matches!(read_marker(&dir), Err(StorageError::Corruption(_))));
        // truncated
        fs::write(&path, &data[..10]).unwrap();
        assert!(matches!(read_marker(&dir), Err(StorageError::Corruption(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_points_leave_no_valid_marker() {
        let dir = tmp_dir("killpoints");
        let n = AtomicU64::new(0);
        let m = CheckpointMarker { fence: 99, shards: 2 };
        for site_hits in [1u64, 2] {
            let fp = FailPoint::new();
            fp.arm(site_hits - 1);
            let err = write_marker(&dir, m, &n, Some(&fp)).unwrap_err();
            assert!(matches!(err, StorageError::Injected));
            assert!(read_marker(&dir).is_err(), "torn marker accepted after kill {site_hits}");
        }
        // a clean retry after the torn attempts succeeds
        write_marker(&dir, m, &n, None).unwrap();
        assert_eq!(read_marker(&dir).unwrap(), m);
        let _ = fs::remove_dir_all(&dir);
    }
}
