//! Equi-width histograms over key domains.
//!
//! FADE needs to estimate, per file, how many entries of the database a range
//! tombstone invalidates (`rd_f` in §4.1.3). The paper piggybacks on the
//! histograms production engines already maintain; here the tree keeps one
//! system-wide histogram on the sort key and one on the delete key, updated on
//! ingestion, and uses [`Histogram::estimate_range`] for that estimate.

/// A fixed-bucket, equi-width histogram over a `u64` domain.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: u64,
    hi: u64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` buckets.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `buckets == 0`.
    pub fn new(lo: u64, hi: u64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram domain must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram { lo, hi, buckets: vec![0; buckets], total: 0 }
    }

    fn bucket_of(&self, key: u64) -> usize {
        if key <= self.lo {
            return 0;
        }
        let key = key.min(self.hi - 1);
        let span = self.hi - self.lo;
        let idx = ((key - self.lo) as u128 * self.buckets.len() as u128 / span as u128) as usize;
        idx.min(self.buckets.len() - 1)
    }

    /// Width of one bucket in key units.
    fn bucket_width(&self) -> f64 {
        (self.hi - self.lo) as f64 / self.buckets.len() as f64
    }

    /// Records one occurrence of `key` (keys outside the domain are clamped).
    pub fn add(&mut self, key: u64) {
        let b = self.bucket_of(key);
        self.buckets[b] += 1;
        self.total += 1;
    }

    /// Removes one occurrence of `key` if present (used when entries are
    /// persistently purged).
    pub fn remove(&mut self, key: u64) {
        let b = self.bucket_of(key);
        if self.buckets[b] > 0 {
            self.buckets[b] -= 1;
            self.total -= 1;
        }
    }

    /// Estimates how many recorded keys fall in `[lo, hi)` assuming a uniform
    /// distribution inside each bucket.
    pub fn estimate_range(&self, lo: u64, hi: u64) -> f64 {
        if hi <= lo || self.total == 0 {
            return 0.0;
        }
        let lo = lo.max(self.lo);
        let hi = hi.min(self.hi);
        if hi <= lo {
            return 0.0;
        }
        let width = self.bucket_width();
        let mut estimate = 0.0;
        let first = self.bucket_of(lo);
        let last = self.bucket_of(hi - 1);
        for b in first..=last {
            let b_lo = self.lo as f64 + b as f64 * width;
            let b_hi = b_lo + width;
            let overlap_lo = (lo as f64).max(b_lo);
            let overlap_hi = (hi as f64).min(b_hi);
            let frac = ((overlap_hi - overlap_lo) / width).clamp(0.0, 1.0);
            estimate += self.buckets[b] as f64 * frac;
        }
        estimate
    }

    /// Total number of recorded keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of recorded keys estimated to fall in `[lo, hi)`.
    pub fn selectivity(&self, lo: u64, hi: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.estimate_range(lo, hi) / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_gives_proportional_estimates() {
        let mut h = Histogram::new(0, 1000, 50);
        for k in 0..1000 {
            h.add(k);
        }
        assert_eq!(h.total(), 1000);
        let est = h.estimate_range(0, 500);
        assert!((est - 500.0).abs() < 25.0, "estimate {est}");
        let sel = h.selectivity(100, 200);
        assert!((sel - 0.1).abs() < 0.03, "selectivity {sel}");
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let mut h = Histogram::new(0, 100, 10);
        assert_eq!(h.estimate_range(10, 20), 0.0);
        h.add(5);
        assert_eq!(h.estimate_range(20, 20), 0.0);
        assert_eq!(h.estimate_range(30, 20), 0.0);
        assert_eq!(h.selectivity(200, 300), 0.0);
    }

    #[test]
    fn keys_outside_domain_are_clamped() {
        let mut h = Histogram::new(100, 200, 10);
        h.add(5); // clamps to first bucket
        h.add(1000); // clamps to last bucket
        assert_eq!(h.total(), 2);
        assert!(h.estimate_range(100, 200) > 1.9);
    }

    #[test]
    fn remove_decrements() {
        let mut h = Histogram::new(0, 100, 10);
        h.add(50);
        h.add(50);
        h.remove(50);
        assert_eq!(h.total(), 1);
        h.remove(50);
        h.remove(50); // removing below zero is a no-op
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn skewed_data_is_reflected() {
        let mut h = Histogram::new(0, 1000, 100);
        for _ in 0..900 {
            h.add(10);
        }
        for k in 0..100 {
            h.add(500 + k);
        }
        assert!(h.estimate_range(0, 100) > 800.0);
        assert!(h.estimate_range(400, 700) < 200.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_domain() {
        let _ = Histogram::new(10, 10, 4);
    }
}
