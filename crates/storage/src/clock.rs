//! Logical time.
//!
//! The paper's delete-persistence machinery (per-level TTLs, tombstone ages,
//! the threshold `D_th`) is defined over wall-clock time driven by the
//! ingestion rate `I`. To keep experiments deterministic and fast, the engine
//! runs on a *logical clock*: a shared microsecond counter that the workload
//! driver advances (e.g. by `1/I` seconds per ingested entry). Wall-clock
//! deployments simply advance the clock from `std::time::Instant`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A timestamp in microseconds since an arbitrary epoch.
pub type Timestamp = u64;

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A shared, monotonically non-decreasing logical clock.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    micros: Arc<AtomicU64>,
}

impl LogicalClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start_micros`.
    pub fn starting_at(start_micros: Timestamp) -> Self {
        let c = Self::new();
        c.micros.store(start_micros, Ordering::SeqCst);
        c
    }

    /// Current logical time in microseconds.
    pub fn now(&self) -> Timestamp {
        self.micros.load(Ordering::SeqCst)
    }

    /// Advances the clock by `delta` microseconds and returns the new time.
    pub fn advance_micros(&self, delta: u64) -> Timestamp {
        self.micros.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Advances the clock by (possibly fractional) seconds.
    pub fn advance_secs(&self, secs: f64) -> Timestamp {
        self.advance_micros((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Sets the clock forward to `t` if `t` is in the future; never moves the
    /// clock backwards.
    pub fn advance_to(&self, t: Timestamp) {
        self.micros.fetch_max(t, Ordering::SeqCst);
    }

    /// Elapsed microseconds since `earlier` (saturating).
    pub fn elapsed_since(&self, earlier: Timestamp) -> u64 {
        self.now().saturating_sub(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance_micros(10), 10);
        assert_eq!(c.now(), 10);
        c.advance_secs(1.5);
        assert_eq!(c.now(), 10 + 1_500_000);
    }

    #[test]
    fn clones_share_the_same_time() {
        let a = LogicalClock::new();
        let b = a.clone();
        a.advance_micros(100);
        assert_eq!(b.now(), 100);
        b.advance_micros(1);
        assert_eq!(a.now(), 101);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = LogicalClock::starting_at(500);
        c.advance_to(200);
        assert_eq!(c.now(), 500);
        c.advance_to(700);
        assert_eq!(c.now(), 700);
    }

    #[test]
    fn elapsed_is_saturating() {
        let c = LogicalClock::starting_at(100);
        assert_eq!(c.elapsed_since(40), 60);
        assert_eq!(c.elapsed_since(1000), 0);
    }
}
