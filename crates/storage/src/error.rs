//! Error types for the storage substrate.

use std::fmt;

/// Errors produced by storage-layer operations (devices, WAL, pages).
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error from the operating system (file backend, WAL).
    Io(std::io::Error),
    /// A page id was requested that the backend does not know about
    /// (either never written or already dropped).
    PageNotFound(u64),
    /// On-disk data could not be decoded back into its in-memory form.
    Corruption(String),
    /// An operation was attempted that the component does not support in its
    /// current configuration (e.g. appending to a closed WAL).
    InvalidOperation(String),
    /// A failure injected by an armed [`crate::failpoint::FailPoint`]; only
    /// produced by the crash-recovery test machinery, never in normal
    /// operation.
    Injected,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageNotFound(id) => write!(f, "page {id} not found"),
            StorageError::Corruption(msg) => write!(f, "corruption: {msg}"),
            StorageError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            StorageError::Injected => write!(f, "injected crash (failpoint)"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::PageNotFound(42);
        assert!(e.to_string().contains("42"));
        let e = StorageError::Corruption("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = StorageError::InvalidOperation("closed".into());
        assert!(e.to_string().contains("closed"));
    }

    #[test]
    fn io_error_converts_and_exposes_source() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
