//! Disk pages.
//!
//! A page is the unit of device I/O. It holds up to `B` entries which are
//! always kept **sorted on the sort key `S`** so that, once a page is in
//! memory, point lookups binary-search it exactly like the state of the art
//! (paper §4.2.1 "Page layout"). The page also remembers the min/max of the
//! *delete key* `D` of its entries, which is what lets KiWi decide whether a
//! secondary range delete covers the whole page (full page drop) or only part
//! of it (partial page drop).

use crate::entry::{DeleteKey, Entry, SortKey};
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// An immutable, sorted collection of entries; the unit of device I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    entries: Vec<Entry>,
}

impl Page {
    /// Builds a page from entries, sorting them on the sort key (ties broken
    /// by descending sequence number so the newest version comes first).
    pub fn new(mut entries: Vec<Entry>) -> Self {
        entries.sort_by(|a, b| {
            a.sort_key.cmp(&b.sort_key).then_with(|| b.seqnum.cmp(&a.seqnum))
        });
        Page { entries }
    }

    /// Builds a page from entries already sorted on the sort key.
    /// Debug builds assert the precondition.
    pub fn from_sorted(entries: Vec<Entry>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].sort_key <= w[1].sort_key));
        Page { entries }
    }

    /// Number of entries stored in the page.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the page holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in sort-key order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Smallest sort key in the page.
    pub fn min_sort_key(&self) -> Option<SortKey> {
        self.entries.first().map(|e| e.sort_key)
    }

    /// Largest sort key in the page.
    pub fn max_sort_key(&self) -> Option<SortKey> {
        self.entries.last().map(|e| e.sort_key)
    }

    /// Smallest delete key in the page.
    pub fn min_delete_key(&self) -> Option<DeleteKey> {
        self.entries.iter().map(|e| e.delete_key).min()
    }

    /// Largest delete key in the page.
    pub fn max_delete_key(&self) -> Option<DeleteKey> {
        self.entries.iter().map(|e| e.delete_key).max()
    }

    /// Binary-searches the page for `key` and returns the most recent
    /// matching entry (the one with the largest sequence number), if any.
    pub fn get(&self, key: SortKey) -> Option<&Entry> {
        // find the left-most index whose sort_key == key; entries with equal
        // sort key are ordered newest-first by construction
        let idx = self.entries.partition_point(|e| e.sort_key < key);
        let candidate = self.entries.get(idx)?;
        if candidate.sort_key == key {
            Some(candidate)
        } else {
            None
        }
    }

    /// Returns every entry whose sort key lies in `[lo, hi)`.
    pub fn range(&self, lo: SortKey, hi: SortKey) -> &[Entry] {
        let start = self.entries.partition_point(|e| e.sort_key < lo);
        let end = self.entries.partition_point(|e| e.sort_key < hi);
        &self.entries[start..end]
    }

    /// Number of tombstones (point or range) stored in the page.
    pub fn tombstone_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_tombstone()).count()
    }

    /// Sum of the encoded sizes of all entries, in bytes.
    pub fn data_size(&self) -> usize {
        self.entries.iter().map(|e| e.encoded_size()).sum()
    }

    /// Splits the page's entries into those whose **delete key** falls inside
    /// `[lo, hi)` (the deleted ones) and those that survive. Used for KiWi
    /// partial page drops.
    pub fn partition_by_delete_key(&self, lo: DeleteKey, hi: DeleteKey) -> (Vec<Entry>, Vec<Entry>) {
        let mut deleted = Vec::new();
        let mut kept = Vec::new();
        for e in &self.entries {
            // tombstones are never removed by a secondary range delete; they
            // still need to reach the last level to persist primary deletes
            if !e.is_tombstone() && e.delete_key >= lo && e.delete_key < hi {
                deleted.push(e.clone());
            } else {
                kept.push(e.clone());
            }
        }
        (deleted, kept)
    }

    /// Serialises the page into a self-describing byte buffer (used by the
    /// file-backed device and the WAL checkpointing path).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.data_size() + self.len() * 8);
        buf.put_u32(PAGE_MAGIC);
        buf.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode_into(&mut buf);
        }
        buf.freeze()
    }

    /// Decodes a page previously produced by [`Page::encode`].
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 8 {
            return Err(StorageError::Corruption("page header truncated".into()));
        }
        let magic = data.get_u32();
        if magic != PAGE_MAGIC {
            return Err(StorageError::Corruption(format!("bad page magic {magic:#x}")));
        }
        let n = data.get_u32() as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(Entry::decode_from(&mut data)?);
        }
        Ok(Page { entries })
    }
}

const PAGE_MAGIC: u32 = 0x4C45_5047; // "LEPG"

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn put(k: u64, d: u64, seq: u64) -> Entry {
        Entry::put(k, d, seq, Bytes::from(vec![b'x'; 16]))
    }

    #[test]
    fn new_sorts_entries_on_sort_key() {
        let p = Page::new(vec![put(5, 0, 1), put(1, 0, 2), put(3, 0, 3)]);
        let keys: Vec<u64> = p.entries().iter().map(|e| e.sort_key).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(p.min_sort_key(), Some(1));
        assert_eq!(p.max_sort_key(), Some(5));
    }

    #[test]
    fn get_returns_newest_version_for_duplicates() {
        let p = Page::new(vec![put(7, 0, 1), put(7, 0, 9), put(7, 0, 4)]);
        assert_eq!(p.get(7).unwrap().seqnum, 9);
        assert!(p.get(8).is_none());
    }

    #[test]
    fn range_is_half_open() {
        let p = Page::new((0..10).map(|k| put(k, 0, k)).collect());
        let r = p.range(3, 7);
        let keys: Vec<u64> = r.iter().map(|e| e.sort_key).collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
        assert!(p.range(20, 30).is_empty());
    }

    #[test]
    fn delete_key_bounds_are_independent_of_sort_order() {
        let p = Page::new(vec![put(1, 50, 1), put(2, 10, 2), put(3, 90, 3)]);
        assert_eq!(p.min_delete_key(), Some(10));
        assert_eq!(p.max_delete_key(), Some(90));
    }

    #[test]
    fn partition_by_delete_key_spares_tombstones() {
        let mut entries: Vec<Entry> = (0..8).map(|k| put(k, k * 10, k)).collect();
        entries.push(Entry::point_tombstone(100, 99));
        let p = Page::new(entries);
        let (deleted, kept) = p.partition_by_delete_key(20, 60);
        // delete keys 20,30,40,50 qualify
        assert_eq!(deleted.len(), 4);
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().any(|e| e.is_tombstone()));
    }

    #[test]
    fn tombstone_count_and_sizes() {
        let p = Page::new(vec![put(1, 0, 1), Entry::point_tombstone(2, 2), Entry::range_tombstone(3, 9, 3)]);
        assert_eq!(p.tombstone_count(), 2);
        assert!(p.data_size() > 0);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Page::new(vec![
            put(1, 11, 1),
            Entry::point_tombstone(2, 2),
            Entry::range_tombstone(3, 9, 3),
            put(4, 44, 4),
        ]);
        let bytes = p.encode();
        let back = Page::decode(bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Page::decode(Bytes::from_static(b"nonsense")).is_err());
        assert!(Page::decode(Bytes::from_static(b"")).is_err());
        // valid magic but truncated body
        let mut good = Page::new(vec![put(1, 1, 1)]).encode().to_vec();
        good.truncate(good.len() - 3);
        assert!(Page::decode(Bytes::from(good)).is_err());
    }

    #[test]
    fn empty_page_edge_cases() {
        let p = Page::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.min_sort_key(), None);
        assert_eq!(p.max_delete_key(), None);
        assert!(p.get(1).is_none());
        let rt = Page::decode(p.encode()).unwrap();
        assert!(rt.is_empty());
    }
}
