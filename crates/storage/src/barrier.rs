//! Counted durability barriers.
//!
//! Every `fsync`/`fdatasync` the engine issues goes through this module, so
//! each one is charged to a counter that ultimately surfaces in
//! [`IoSnapshot::fsyncs`](crate::iostats::IoSnapshot) — the paper's
//! cost-model experiments (and the group-commit bench gate) rely on that
//! count being *exact*. The repo lint (`cargo run -p lethe-lint`) bans raw
//! `sync_all()` / `sync_data()` / directory-fsync calls everywhere outside
//! this file, so an uncounted barrier cannot be reintroduced silently.
//!
//! The helpers take the owning component's barrier counter explicitly
//! (a `&AtomicU64` — the WAL's, the device's [`IoStats`](crate::IoStats)
//! field, the manifest's, the batch log's, or the sharded store's), so
//! there is no global that could double-count a store sharing a process
//! with another store.

use crate::error::Result;
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// `fdatasync`s `file` and charges one barrier to `fsyncs`. The cheaper
/// barrier: flushes data (and size) but not file timestamps — what every
/// append-path commit wants.
pub fn sync_data_counted(file: &File, fsyncs: &AtomicU64) -> Result<()> {
    file.sync_data()?;
    fsyncs.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// `fsync`s `file` (data + metadata) and charges one barrier to `fsyncs`.
/// Used where metadata matters: freshly created rewrite temporaries and
/// post-truncation tails.
pub fn sync_all_counted(file: &File, fsyncs: &AtomicU64) -> Result<()> {
    file.sync_all()?;
    fsyncs.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// `fsync`s the parent directory of `path` and charges one barrier to
/// `fsyncs`: a rename is only crash-durable once the directory entry is.
/// A path without a parent (or with an empty one) is a no-op *and charges
/// nothing* — there is no barrier to count.
pub fn fsync_dir_counted(path: &Path, fsyncs: &AtomicU64) -> Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            File::open(parent)?.sync_all()?;
            fsyncs.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_helper_counts_exactly_one_barrier() {
        let dir = std::env::temp_dir().join(format!("lethe-barrier-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let file = File::create(&path).unwrap();
        let n = AtomicU64::new(0);
        sync_data_counted(&file, &n).unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 1);
        sync_all_counted(&file, &n).unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
        fsync_dir_counted(&path, &n).unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 3);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn parentless_path_counts_nothing() {
        let n = AtomicU64::new(0);
        fsync_dir_counted(Path::new("relative-file"), &n).unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 0, "no directory was synced");
    }
}
