//! Fence pointers.
//!
//! Two kinds of in-memory navigation metadata (paper §4.2.3):
//!
//! * [`FencePointers`] on the **sort key `S`**: one entry per unit (a page in
//!   the classic layout, a delete tile under KiWi) recording the smallest
//!   sort key of that unit. A lookup binary-searches them to find the single
//!   unit that may contain a key.
//! * [`DeleteFences`] on the **delete key `D`**: one entry per page inside a
//!   delete tile recording the delete-key range of that page. A secondary
//!   range delete consults them to find the pages that are fully covered by
//!   the deleted range (full page drops — no read required) and the at most
//!   two pages per tile that are partially covered (partial page drops).

use crate::entry::{DeleteKey, SortKey};

/// Fence pointers over the sort key: `mins[i]` is the smallest sort key of
/// unit `i`; units are stored in increasing sort-key order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FencePointers {
    mins: Vec<SortKey>,
}

impl FencePointers {
    /// Builds fence pointers from per-unit minimum sort keys (must be
    /// non-decreasing; debug-asserted).
    pub fn new(mins: Vec<SortKey>) -> Self {
        debug_assert!(mins.windows(2).all(|w| w[0] <= w[1]));
        FencePointers { mins }
    }

    /// Number of units covered.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// True if no units are covered.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Returns the index of the unit that may contain `key`: the last unit
    /// whose minimum is `<= key`. Keys smaller than every minimum fall into
    /// unit 0 (which will simply not contain them).
    pub fn locate(&self, key: SortKey) -> Option<usize> {
        if self.mins.is_empty() {
            return None;
        }
        let idx = self.mins.partition_point(|&m| m <= key);
        Some(idx.saturating_sub(1))
    }

    /// Returns the inclusive range of unit indices that may overlap the sort
    /// key range `[lo, hi)`.
    pub fn locate_range(&self, lo: SortKey, hi: SortKey) -> Option<(usize, usize)> {
        if self.mins.is_empty() || hi <= lo {
            return None;
        }
        let start = self.locate(lo)?;
        // last unit whose min is < hi
        let end = self.mins.partition_point(|&m| m < hi).saturating_sub(1);
        Some((start, end.max(start)))
    }

    /// The raw minimums (for serialisation / introspection).
    pub fn mins(&self) -> &[SortKey] {
        &self.mins
    }

    /// In-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.mins.len() * std::mem::size_of::<SortKey>()
    }
}

/// Per-page delete-key bounds inside one delete tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteFence {
    /// Smallest delete key stored in the page.
    pub min: DeleteKey,
    /// Largest delete key stored in the page.
    pub max: DeleteKey,
}

/// Delete fence pointers: the delete-key bounds of every page in a delete
/// tile, in page order (pages inside a tile are sorted on the delete key, so
/// the bounds are non-decreasing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeleteFences {
    fences: Vec<DeleteFence>,
}

/// How a secondary range delete `[lo, hi)` relates to one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageCoverage {
    /// Every delete key in the page is inside the deleted range: the page can
    /// be dropped without being read.
    Full,
    /// Some delete keys are inside the range: the page must be read and
    /// rewritten without the deleted entries.
    Partial,
    /// No delete key of the page falls in the range: the page is untouched.
    None,
}

impl DeleteFences {
    /// Builds delete fences from per-page bounds.
    pub fn new(fences: Vec<DeleteFence>) -> Self {
        DeleteFences { fences }
    }

    /// Number of pages covered.
    pub fn len(&self) -> usize {
        self.fences.len()
    }

    /// True if no pages are covered.
    pub fn is_empty(&self) -> bool {
        self.fences.is_empty()
    }

    /// The per-page bounds.
    pub fn fences(&self) -> &[DeleteFence] {
        &self.fences
    }

    /// Classifies page `idx` against the delete-key range `[lo, hi)`.
    pub fn coverage(&self, idx: usize, lo: DeleteKey, hi: DeleteKey) -> PageCoverage {
        let f = &self.fences[idx];
        if hi <= lo || f.max < lo || f.min >= hi {
            PageCoverage::None
        } else if f.min >= lo && f.max < hi {
            PageCoverage::Full
        } else {
            PageCoverage::Partial
        }
    }

    /// Classifies every page against `[lo, hi)`, returning
    /// `(full_drop_indices, partial_drop_indices)`.
    pub fn classify_range(&self, lo: DeleteKey, hi: DeleteKey) -> (Vec<usize>, Vec<usize>) {
        let mut full = Vec::new();
        let mut partial = Vec::new();
        for i in 0..self.fences.len() {
            match self.coverage(i, lo, hi) {
                PageCoverage::Full => full.push(i),
                PageCoverage::Partial => partial.push(i),
                PageCoverage::None => {}
            }
        }
        (full, partial)
    }

    /// In-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.fences.len() * std::mem::size_of::<DeleteFence>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_picks_the_right_unit() {
        let f = FencePointers::new(vec![10, 20, 30, 40]);
        assert_eq!(f.locate(5), Some(0)); // before the first fence → unit 0
        assert_eq!(f.locate(10), Some(0));
        assert_eq!(f.locate(19), Some(0));
        assert_eq!(f.locate(20), Some(1));
        assert_eq!(f.locate(35), Some(2));
        assert_eq!(f.locate(1000), Some(3));
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn locate_on_empty_is_none() {
        let f = FencePointers::default();
        assert_eq!(f.locate(1), None);
        assert_eq!(f.locate_range(1, 10), None);
        assert!(f.is_empty());
    }

    #[test]
    fn locate_range_spans_overlapping_units() {
        let f = FencePointers::new(vec![10, 20, 30, 40]);
        assert_eq!(f.locate_range(12, 35), Some((0, 2)));
        assert_eq!(f.locate_range(0, 5), Some((0, 0)));
        assert_eq!(f.locate_range(45, 50), Some((3, 3)));
        assert_eq!(f.locate_range(20, 21), Some((1, 1)));
        assert_eq!(f.locate_range(30, 30), None); // empty range
    }

    #[test]
    fn size_accounting() {
        let f = FencePointers::new(vec![1, 2, 3]);
        assert_eq!(f.size_bytes(), 24);
        let d = DeleteFences::new(vec![DeleteFence { min: 0, max: 10 }]);
        assert_eq!(d.size_bytes(), 16);
    }

    #[test]
    fn coverage_classification() {
        let d = DeleteFences::new(vec![
            DeleteFence { min: 0, max: 9 },
            DeleteFence { min: 10, max: 19 },
            DeleteFence { min: 20, max: 29 },
            DeleteFence { min: 30, max: 39 },
        ]);
        // delete range [10, 30): page 1 and 2 fully covered, 0 and 3 untouched
        assert_eq!(d.coverage(0, 10, 30), PageCoverage::None);
        assert_eq!(d.coverage(1, 10, 30), PageCoverage::Full);
        assert_eq!(d.coverage(2, 10, 30), PageCoverage::Full);
        assert_eq!(d.coverage(3, 10, 30), PageCoverage::None);
        let (full, partial) = d.classify_range(10, 30);
        assert_eq!(full, vec![1, 2]);
        assert!(partial.is_empty());
    }

    #[test]
    fn partial_coverage_at_range_edges() {
        let d = DeleteFences::new(vec![
            DeleteFence { min: 0, max: 9 },
            DeleteFence { min: 10, max: 19 },
            DeleteFence { min: 20, max: 29 },
        ]);
        // range [5, 25) partially covers pages 0 and 2, fully covers page 1
        let (full, partial) = d.classify_range(5, 25);
        assert_eq!(full, vec![1]);
        assert_eq!(partial, vec![0, 2]);
    }

    #[test]
    fn empty_or_inverted_range_covers_nothing() {
        let d = DeleteFences::new(vec![DeleteFence { min: 0, max: 100 }]);
        assert_eq!(d.coverage(0, 50, 50), PageCoverage::None);
        assert_eq!(d.coverage(0, 60, 40), PageCoverage::None);
    }
}
