//! Storage devices.
//!
//! The engine is written against the [`StorageBackend`] trait, the page-level
//! device abstraction. Two implementations are provided:
//!
//! * [`InMemoryBackend`] — the "simulated SSD" used by the evaluation
//!   harness. It stores pages in a hash map and charges every read, write and
//!   drop to an [`IoStats`] counter set; combined with
//!   [`crate::iostats::CostModel`] this reproduces the paper's I/O-count and
//!   latency figures deterministically and quickly.
//! * [`FileBackend`] — a real, durable device: pages are appended to a single
//!   data file with an in-memory offset index. It exists so the engine is a
//!   usable key-value store, and it feeds the same counters.
//!
//! Full page drops (KiWi) map to [`StorageBackend::drop_page`]: the page is
//! released **without being read**, which is exactly the I/O saving the paper
//! claims for secondary range deletes.

use crate::error::{Result, StorageError};
use crate::iostats::IoStats;
use crate::page::Page;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a page on a device.
pub type PageId = u64;

/// A page-granular storage device.
pub trait StorageBackend: Send + Sync {
    /// Persists a page and returns its new id.
    fn write_page(&self, page: &Page) -> Result<PageId>;

    /// Reads a page back from the device.
    fn read_page(&self, id: PageId) -> Result<Page>;

    /// Releases a page without reading it (a KiWi *full page drop*).
    fn drop_page(&self, id: PageId) -> Result<()>;

    /// Shared I/O counters charged by this device.
    fn stats(&self) -> Arc<IoStats>;

    /// Number of live (written and not yet dropped) pages.
    fn live_pages(&self) -> usize;

    /// Flushes any buffered state to durable storage (no-op for the
    /// simulated device).
    fn sync(&self) -> Result<()>;
}

/// The simulated device used by tests and the benchmark harness.
#[derive(Debug)]
pub struct InMemoryBackend {
    pages: RwLock<HashMap<PageId, Page>>,
    next_id: AtomicU64,
    stats: Arc<IoStats>,
}

impl InMemoryBackend {
    /// Creates an empty simulated device.
    pub fn new() -> Self {
        InMemoryBackend {
            pages: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: IoStats::new_shared(),
        }
    }

    /// Creates an empty simulated device behind an `Arc`, ready to be handed
    /// to an engine.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }
}

impl Default for InMemoryBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl StorageBackend for InMemoryBackend {
    fn write_page(&self, page: &Page) -> Result<PageId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.stats.record_write(page.data_size() as u64);
        self.pages.write().insert(id, page.clone());
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> Result<Page> {
        let pages = self.pages.read();
        match pages.get(&id) {
            Some(p) => {
                self.stats.record_read(p.data_size() as u64);
                Ok(p.clone())
            }
            None => Err(StorageError::PageNotFound(id)),
        }
    }

    fn drop_page(&self, id: PageId) -> Result<()> {
        let removed = self.pages.write().remove(&id);
        if removed.is_none() {
            return Err(StorageError::PageNotFound(id));
        }
        self.stats.record_drop();
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn live_pages(&self) -> usize {
        self.pages.read().len()
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// A durable device: pages are appended to one data file; an in-memory index
/// maps page ids to (offset, length). Dropped pages leave garbage in the file
/// which is reclaimed when the file is rewritten by
/// [`FileBackend::compact_file`].
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: Mutex<File>,
    index: RwLock<HashMap<PageId, (u64, u32)>>,
    next_id: AtomicU64,
    stats: Arc<IoStats>,
}

impl FileBackend {
    /// Opens (or creates) a file-backed device rooted at `dir`. The data file
    /// is `dir/lethe.data`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_named(dir, "lethe")
    }

    /// Opens (or creates) a *namespaced* file-backed device rooted at `dir`:
    /// the data file is `dir/<name>.data`. Several namespaced devices can
    /// share one directory, which is how the sharded front-end keeps the
    /// per-shard data files (`shard-000.data`, `shard-001.data`, …) of one
    /// logical store together.
    pub fn open_named(dir: impl AsRef<Path>, name: &str) -> Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{name}.data"));
        let file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        Ok(FileBackend {
            path,
            file: Mutex::new(file),
            index: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: IoStats::new_shared(),
        })
    }

    /// Path of the underlying data file.
    pub fn data_path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently occupied by the data file, including garbage left by
    /// dropped pages.
    pub fn file_size(&self) -> Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len())
    }

    /// Rewrites the data file keeping only live pages, reclaiming the space
    /// of dropped pages. Page ids are preserved.
    pub fn compact_file(&self) -> Result<()> {
        let mut file = self.file.lock();
        let mut index = self.index.write();
        // read every live page
        let mut live: Vec<(PageId, Vec<u8>)> = Vec::with_capacity(index.len());
        for (&id, &(off, len)) in index.iter() {
            let mut buf = vec![0u8; len as usize];
            file.seek(SeekFrom::Start(off))?;
            file.read_exact(&mut buf)?;
            live.push((id, buf));
        }
        // rewrite the file from scratch
        let tmp_path = self.path.with_extension("data.tmp");
        let mut tmp = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp_path)?;
        let mut new_index = HashMap::with_capacity(live.len());
        let mut offset = 0u64;
        for (id, buf) in live {
            tmp.write_all(&buf)?;
            new_index.insert(id, (offset, buf.len() as u32));
            offset += buf.len() as u64;
        }
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        *file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        *index = new_index;
        Ok(())
    }
}

impl StorageBackend for FileBackend {
    fn write_page(&self, page: &Page) -> Result<PageId> {
        let encoded = page.encode();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        let offset = file.seek(SeekFrom::End(0))?;
        file.write_all(&encoded)?;
        self.index.write().insert(id, (offset, encoded.len() as u32));
        self.stats.record_write(encoded.len() as u64);
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> Result<Page> {
        let (offset, len) = {
            let index = self.index.read();
            *index.get(&id).ok_or(StorageError::PageNotFound(id))?
        };
        let mut buf = vec![0u8; len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
        }
        self.stats.record_read(len as u64);
        Page::decode(bytes::Bytes::from(buf))
    }

    fn drop_page(&self, id: PageId) -> Result<()> {
        let removed = self.index.write().remove(&id);
        if removed.is_none() {
            return Err(StorageError::PageNotFound(id));
        }
        self.stats.record_drop();
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn live_pages(&self) -> usize {
        self.index.read().len()
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use bytes::Bytes;

    fn page(keys: &[u64]) -> Page {
        Page::new(keys.iter().map(|&k| Entry::put(k, k, k, Bytes::from(vec![0u8; 8]))).collect())
    }

    #[test]
    fn memory_backend_roundtrip_and_stats() {
        let b = InMemoryBackend::new();
        let id = b.write_page(&page(&[1, 2, 3])).unwrap();
        let p = b.read_page(id).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(b.live_pages(), 1);
        let s = b.stats().snapshot();
        assert_eq!(s.pages_written, 1);
        assert_eq!(s.pages_read, 1);
        b.sync().unwrap();
    }

    #[test]
    fn memory_backend_drop_is_not_a_read() {
        let b = InMemoryBackend::new();
        let id = b.write_page(&page(&[1])).unwrap();
        b.drop_page(id).unwrap();
        let s = b.stats().snapshot();
        assert_eq!(s.pages_dropped, 1);
        assert_eq!(s.pages_read, 0);
        assert_eq!(b.live_pages(), 0);
        assert!(matches!(b.read_page(id), Err(StorageError::PageNotFound(_))));
        assert!(b.drop_page(id).is_err());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let b = InMemoryBackend::new();
        let a = b.write_page(&page(&[1])).unwrap();
        let c = b.write_page(&page(&[2])).unwrap();
        assert!(c > a);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lethe-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = FileBackend::open(&dir).unwrap();
        let id1 = b.write_page(&page(&[1, 2, 3])).unwrap();
        let id2 = b.write_page(&page(&[4, 5])).unwrap();
        assert_eq!(b.read_page(id1).unwrap().len(), 3);
        assert_eq!(b.read_page(id2).unwrap().len(), 2);
        assert_eq!(b.live_pages(), 2);
        b.sync().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_drop_and_compact_reclaims_space() {
        let dir = std::env::temp_dir().join(format!("lethe-fb2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = FileBackend::open(&dir).unwrap();
        let big = page(&(0..512).collect::<Vec<u64>>());
        let id1 = b.write_page(&big).unwrap();
        let id2 = b.write_page(&page(&[1])).unwrap();
        let before = b.file_size().unwrap();
        b.drop_page(id1).unwrap();
        b.compact_file().unwrap();
        let after = b.file_size().unwrap();
        assert!(after < before, "compaction should reclaim space: {after} vs {before}");
        // surviving page still readable after compaction
        assert_eq!(b.read_page(id2).unwrap().len(), 1);
        assert!(b.read_page(id1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
