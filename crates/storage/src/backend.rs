//! Storage devices.
//!
//! The engine is written against the [`StorageBackend`] trait, the page-level
//! device abstraction. Two implementations are provided:
//!
//! * [`InMemoryBackend`] — the "simulated SSD" used by the evaluation
//!   harness. It stores pages in a hash map and charges every read, write and
//!   drop to an [`IoStats`] counter set; combined with
//!   [`crate::iostats::CostModel`] this reproduces the paper's I/O-count and
//!   latency figures deterministically and quickly.
//! * [`FileBackend`] — a real, durable device: pages are appended to a single
//!   data file with an in-memory offset index. It exists so the engine is a
//!   usable key-value store, and it feeds the same counters.
//!
//! Full page drops (KiWi) map to [`StorageBackend::drop_page`]: the page is
//! released **without being read**, which is exactly the I/O saving the paper
//! claims for secondary range deletes.

use crate::barrier;
use crate::checksum::crc32;
use crate::error::{Result, StorageError};
use crate::failpoint::FailPoint;
use crate::iostats::IoStats;
use crate::page::Page;
use bytes::{BufMut, BytesMut};
use lethe_sync::{LockRank, Mutex, RwLock};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a page on a device.
pub type PageId = u64;

/// A page-granular storage device.
pub trait StorageBackend: Send + Sync {
    /// Persists a page and returns its new id.
    fn write_page(&self, page: &Page) -> Result<PageId>;

    /// Reads a page back from the device. Pages are immutable once written,
    /// so the result is a shared handle: the simulated device and the block
    /// cache serve the same `Arc` to every reader instead of deep-copying
    /// the entries, and concurrent readers on the durable device use
    /// positional reads that never contend on a file lock.
    fn read_page(&self, id: PageId) -> Result<Arc<Page>>;

    /// Reads a page for a one-shot bulk scan (compaction inputs, secondary-
    /// delete rewrites): cache-backed devices serve hits but do **not**
    /// retain the page on a miss, so streaming a whole tree through a merge
    /// cannot evict the hot point-read working set (the pages read here are
    /// usually about to be retired anyway). Plain devices treat it as
    /// [`StorageBackend::read_page`].
    fn read_page_nofill(&self, id: PageId) -> Result<Arc<Page>> {
        self.read_page(id)
    }

    /// Releases a page without reading it (a KiWi *full page drop*).
    fn drop_page(&self, id: PageId) -> Result<()>;

    /// Shared I/O counters charged by this device.
    fn stats(&self) -> Arc<IoStats>;

    /// Number of live (written and not yet dropped) pages.
    fn live_pages(&self) -> usize;

    /// Ids of every live page. Used by crash recovery to release pages that
    /// the durable manifest no longer (or never did) reference.
    fn page_ids(&self) -> Vec<PageId>;

    /// Flushes any buffered state to durable storage (no-op for the
    /// simulated device).
    fn sync(&self) -> Result<()>;
}

/// The simulated device used by tests and the benchmark harness. Pages are
/// stored behind `Arc`s, so a read is a map lookup plus a pointer clone —
/// never a deep copy of the entries.
#[derive(Debug)]
pub struct InMemoryBackend {
    pages: RwLock<HashMap<PageId, Arc<Page>>>,
    next_id: AtomicU64,
    stats: Arc<IoStats>,
}

impl InMemoryBackend {
    /// Creates an empty simulated device.
    pub fn new() -> Self {
        InMemoryBackend {
            pages: RwLock::new(LockRank::BackendPages, HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: IoStats::new_shared(),
        }
    }

    /// Creates an empty simulated device behind an `Arc`, ready to be handed
    /// to an engine.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }
}

impl Default for InMemoryBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl StorageBackend for InMemoryBackend {
    fn write_page(&self, page: &Page) -> Result<PageId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.stats.record_write(page.data_size() as u64);
        self.pages.write().insert(id, Arc::new(page.clone()));
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> Result<Arc<Page>> {
        let pages = self.pages.read();
        match pages.get(&id) {
            Some(p) => {
                self.stats.record_read(p.data_size() as u64);
                Ok(Arc::clone(p))
            }
            None => Err(StorageError::PageNotFound(id)),
        }
    }

    fn drop_page(&self, id: PageId) -> Result<()> {
        let removed = self.pages.write().remove(&id);
        if removed.is_none() {
            return Err(StorageError::PageNotFound(id));
        }
        self.stats.record_drop();
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn live_pages(&self) -> usize {
        self.pages.read().len()
    }

    fn page_ids(&self) -> Vec<PageId> {
        self.pages.read().keys().copied().collect()
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Magic number opening every page frame in a [`FileBackend`] data file.
const FRAME_MAGIC: u32 = 0x4C45_4652; // "LEFR"

/// Size of a page-frame header: magic, page id, payload length, payload CRC.
const FRAME_HEADER: usize = 4 + 8 + 4 + 4;

/// A durable device: pages are appended to one data file as self-describing
/// frames (`magic · page id · length · crc · payload`); an in-memory index
/// maps page ids to (offset, length). The frames make the file its own
/// recovery log: on open the file is scanned, the index rebuilt, and a torn
/// trailing frame — the normal result of a crash mid-write — truncated away.
/// Dropped pages leave garbage frames in the file which recovery resurfaces
/// (the crash-recovery layer releases the ones its manifest does not
/// reference) and [`FileBackend::compact_file`] reclaims.
/// Concurrency: writes (append + index insert) serialise behind the `file`
/// mutex, but reads never touch it — they resolve `(offset, len)` from the
/// index, clone the shared read handle, and issue a *positional* read
/// (`pread`): no seek, no file lock, so N reader threads proceed fully in
/// parallel on hits and misses alike. [`FileBackend::compact_file`] swaps the
/// read handle together with the index (under the index write lock), so a
/// reader always pairs offsets with the file generation they describe.
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: Mutex<File>,
    /// Shared handle for lock-free positional reads; replaced (with the
    /// index, under its write lock) when `compact_file` rewrites the file.
    read_file: RwLock<Arc<File>>,
    index: RwLock<HashMap<PageId, (u64, u32)>>,
    next_id: AtomicU64,
    stats: Arc<IoStats>,
    torn_frames_recovered: u64,
    failpoint: FailPoint,
}

/// Reads exactly `buf.len()` bytes of `file` at `offset`. On unix this is
/// `pread`, which touches no file cursor at all. The Windows `seek_read`
/// *does* move `file`'s cursor, which is harmless here: every call passes an
/// absolute offset, nothing else ever uses the read handle's cursor, and the
/// writer appends through a separate handle with its own cursor. All paths
/// read the handle the caller pinned, never reopen by path — reopening
/// could observe a newer file generation than the offsets describe.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(windows)]
    {
        use std::os::windows::fs::FileExt;
        let mut pos = 0usize;
        while pos < buf.len() {
            let n = file.seek_read(&mut buf[pos..], offset + pos as u64)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "positional read past end of data file",
                ));
            }
            pos += n;
        }
        Ok(())
    }
    #[cfg(not(any(unix, windows)))]
    {
        // no positional-read API: fall back to seek + read on the pinned
        // handle, serialised by a global lock so concurrent readers do not
        // race the shared cursor (correctness over parallelism on platforms
        // that cannot express a positional read)
        use std::io::{Read, Seek, SeekFrom};
        static FALLBACK_CURSOR: Mutex<()> = Mutex::new(LockRank::FallbackCursor, ());
        let _guard = FALLBACK_CURSOR.lock();
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

impl FileBackend {
    /// Opens (or creates) a file-backed device rooted at `dir`. The data file
    /// is `dir/lethe.data`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_named(dir, "lethe")
    }

    /// Opens (or creates) a *namespaced* file-backed device rooted at `dir`:
    /// the data file is `dir/<name>.data`. Several namespaced devices can
    /// share one directory, which is how the sharded front-end keeps the
    /// per-shard data files (`shard-000.data`, `shard-001.data`, …) of one
    /// logical store together.
    ///
    /// An existing data file is scanned frame by frame to rebuild the page
    /// index (ids, offsets, the next free id); a torn trailing frame is
    /// truncated away and counted in
    /// [`FileBackend::torn_frames_recovered`].
    pub fn open_named(dir: impl AsRef<Path>, name: &str) -> Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{name}.data"));
        let file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let read_file = OpenOptions::new().read(true).open(&path)?;
        let mut backend = FileBackend {
            path,
            file: Mutex::new(LockRank::BackendFile, file),
            read_file: RwLock::new(LockRank::BackendReadHandle, Arc::new(read_file)),
            index: RwLock::new(LockRank::BackendIndex, HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: IoStats::new_shared(),
            torn_frames_recovered: 0,
            failpoint: FailPoint::new(),
        };
        backend.recover_index()?;
        Ok(backend)
    }

    /// Attaches a crash-injection fail point consulted before every page
    /// write (testing aid).
    pub fn set_failpoint(&mut self, fp: FailPoint) {
        self.failpoint = fp;
    }

    /// Number of torn trailing frames truncated away when the device was
    /// opened (0 after a clean shutdown, typically 1 after a crash).
    pub fn torn_frames_recovered(&self) -> u64 {
        self.torn_frames_recovered
    }

    /// Scans the data file with a bounded buffer (one frame at a time, never
    /// the whole file), rebuilding the id → (offset, length) index and the
    /// next free page id. A *torn tail* — a partial header, a frame whose
    /// payload runs past end-of-file, or a checksum failure on the very last
    /// frame, all of which a crash mid-append produces — is truncated away.
    /// Anything invalid with committed frames *behind* it cannot be a torn
    /// tail (the file is append-only) and is reported as corruption without
    /// touching the file, so one damaged frame never destroys the valid
    /// pages after it.
    fn recover_index(&mut self) -> Result<()> {
        let file = self.file.lock();
        let total = file.metadata()?.len();
        let mut index = HashMap::new();
        let mut max_id = 0u64;
        let mut off = 0u64;
        {
            let mut f = &*file;
            f.seek(SeekFrom::Start(0))?;
            let mut reader = std::io::BufReader::new(f);
            let mut header = [0u8; FRAME_HEADER];
            let mut payload = Vec::new();
            while total - off >= FRAME_HEADER as u64 {
                reader.read_exact(&mut header)?;
                // lint:allow(no-panic): fixed-width subslices of the 20-byte header, infallible
                let magic = u32::from_be_bytes(header[0..4].try_into().expect("4-byte slice"));
                // lint:allow(no-panic): fixed-width subslices of the 20-byte header, infallible
                let id = u64::from_be_bytes(header[4..12].try_into().expect("8-byte slice"));
                // lint:allow(no-panic): fixed-width subslices of the 20-byte header, infallible
                let len = u32::from_be_bytes(header[12..16].try_into().expect("4-byte slice"));
                // lint:allow(no-panic): fixed-width subslices of the 20-byte header, infallible
                let crc = u32::from_be_bytes(header[16..20].try_into().expect("4-byte slice"));
                if magic != FRAME_MAGIC {
                    // a torn append of >= 4 bytes still writes the magic, so
                    // a full header with the wrong magic is not a torn tail
                    return Err(StorageError::Corruption(format!(
                        "data file {:?}: bad frame magic {magic:#x} at offset {off}",
                        self.path
                    )));
                }
                let payload_end = off + FRAME_HEADER as u64 + len as u64;
                if payload_end > total {
                    break; // torn tail: frame promises more bytes than exist
                }
                payload.resize(len as usize, 0);
                reader.read_exact(&mut payload)?;
                if crc32(&payload) != crc {
                    if payload_end == total {
                        break; // last frame damaged mid-write: a torn tail
                    }
                    return Err(StorageError::Corruption(format!(
                        "data file {:?}: page {id} at offset {off} failed its checksum with \
                         committed frames behind it (mid-file corruption, not a torn tail)",
                        self.path
                    )));
                }
                index.insert(id, (off + FRAME_HEADER as u64, len));
                max_id = max_id.max(id);
                off = payload_end;
            }
        }
        if off < total {
            file.set_len(off)?;
            barrier::sync_all_counted(&file, &self.stats.fsyncs)?;
            self.torn_frames_recovered += 1;
        }
        self.next_id.store(max_id + 1, Ordering::Relaxed);
        *self.index.write() = index;
        Ok(())
    }

    /// Path of the underlying data file.
    pub fn data_path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently occupied by the data file, including garbage left by
    /// dropped pages.
    pub fn file_size(&self) -> Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len())
    }

    /// Rewrites the data file keeping only live pages, reclaiming the space
    /// of dropped pages. Page ids are preserved.
    pub fn compact_file(&self) -> Result<()> {
        let mut file = self.file.lock();
        let mut index = self.index.write();
        // read every live page
        let mut live: Vec<(PageId, Vec<u8>)> = Vec::with_capacity(index.len());
        for (&id, &(off, len)) in index.iter() {
            let mut buf = vec![0u8; len as usize];
            file.seek(SeekFrom::Start(off))?;
            file.read_exact(&mut buf)?;
            live.push((id, buf));
        }
        // rewrite the file from scratch, frame headers included
        let tmp_path = self.path.with_extension("data.tmp");
        let mut tmp = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp_path)?;
        let mut new_index = HashMap::with_capacity(live.len());
        let mut offset = 0u64;
        for (id, buf) in live {
            let frame = encode_frame(id, &buf);
            tmp.write_all(&frame)?;
            new_index.insert(id, (offset + FRAME_HEADER as u64, buf.len() as u32));
            offset += frame.len() as u64;
        }
        barrier::sync_all_counted(&tmp, &self.stats.fsyncs)?;
        std::fs::rename(&tmp_path, &self.path)?;
        barrier::fsync_dir_counted(&self.path, &self.stats.fsyncs)?;
        *file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        // swap the read handle while still holding the index write lock:
        // readers resolve (offset, handle) under the index read lock, so
        // they can never pair new offsets with the old file or vice versa
        *self.read_file.write() = Arc::new(OpenOptions::new().read(true).open(&self.path)?);
        *index = new_index;
        Ok(())
    }
}

/// Builds one on-disk page frame: `magic · page id · length · crc · payload`.
fn encode_frame(id: PageId, payload: &[u8]) -> BytesMut {
    let mut frame = BytesMut::with_capacity(FRAME_HEADER + payload.len());
    frame.put_u32(FRAME_MAGIC);
    frame.put_u64(id);
    frame.put_u32(payload.len() as u32);
    frame.put_u32(crc32(payload));
    frame.extend_from_slice(payload);
    frame
}

impl StorageBackend for FileBackend {
    fn write_page(&self, page: &Page) -> Result<PageId> {
        self.failpoint.check("backend.write_page")?;
        let encoded = page.encode();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = encode_frame(id, &encoded);
        let mut file = self.file.lock();
        let offset = file.seek(SeekFrom::End(0))?;
        file.write_all(&frame)?;
        self.index.write().insert(id, (offset + FRAME_HEADER as u64, encoded.len() as u32));
        self.stats.record_write(encoded.len() as u64);
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> Result<Arc<Page>> {
        // resolve the offset and pin the matching file generation under one
        // brief (shared) index read lock, then do the actual I/O with no
        // lock at all: `pread` needs no seek and no cursor, so concurrent
        // readers never serialise behind each other or behind the writer
        let (file, offset, len) = {
            let index = self.index.read();
            let &(offset, len) = index.get(&id).ok_or(StorageError::PageNotFound(id))?;
            (Arc::clone(&self.read_file.read()), offset, len)
        };
        let mut buf = vec![0u8; len as usize];
        read_exact_at(&file, &mut buf, offset)?;
        self.stats.record_read(len as u64);
        Page::decode(bytes::Bytes::from(buf)).map(Arc::new)
    }

    fn drop_page(&self, id: PageId) -> Result<()> {
        let removed = self.index.write().remove(&id);
        if removed.is_none() {
            return Err(StorageError::PageNotFound(id));
        }
        self.stats.record_drop();
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn live_pages(&self) -> usize {
        self.index.read().len()
    }

    fn page_ids(&self) -> Vec<PageId> {
        self.index.read().keys().copied().collect()
    }

    fn sync(&self) -> Result<()> {
        barrier::sync_all_counted(&self.file.lock(), &self.stats.fsyncs)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use bytes::Bytes;

    fn page(keys: &[u64]) -> Page {
        Page::new(keys.iter().map(|&k| Entry::put(k, k, k, Bytes::from(vec![0u8; 8]))).collect())
    }

    #[test]
    fn memory_backend_roundtrip_and_stats() {
        let b = InMemoryBackend::new();
        let id = b.write_page(&page(&[1, 2, 3])).unwrap();
        let p = b.read_page(id).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(b.live_pages(), 1);
        let s = b.stats().snapshot();
        assert_eq!(s.pages_written, 1);
        assert_eq!(s.pages_read, 1);
        b.sync().unwrap();
    }

    #[test]
    fn memory_backend_drop_is_not_a_read() {
        let b = InMemoryBackend::new();
        let id = b.write_page(&page(&[1])).unwrap();
        b.drop_page(id).unwrap();
        let s = b.stats().snapshot();
        assert_eq!(s.pages_dropped, 1);
        assert_eq!(s.pages_read, 0);
        assert_eq!(b.live_pages(), 0);
        assert!(matches!(b.read_page(id), Err(StorageError::PageNotFound(_))));
        assert!(b.drop_page(id).is_err());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let b = InMemoryBackend::new();
        let a = b.write_page(&page(&[1])).unwrap();
        let c = b.write_page(&page(&[2])).unwrap();
        assert!(c > a);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lethe-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = FileBackend::open(&dir).unwrap();
        let id1 = b.write_page(&page(&[1, 2, 3])).unwrap();
        let id2 = b.write_page(&page(&[4, 5])).unwrap();
        assert_eq!(b.read_page(id1).unwrap().len(), 3);
        assert_eq!(b.read_page(id2).unwrap().len(), 2);
        assert_eq!(b.live_pages(), 2);
        b.sync().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_reopen_recovers_index() {
        let dir = std::env::temp_dir().join(format!("lethe-fb3-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (id1, id2, id3);
        {
            let b = FileBackend::open(&dir).unwrap();
            id1 = b.write_page(&page(&[1, 2, 3])).unwrap();
            id2 = b.write_page(&page(&[4, 5])).unwrap();
            id3 = b.write_page(&page(&[6])).unwrap();
            b.drop_page(id2).unwrap();
            b.sync().unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.torn_frames_recovered(), 0);
        assert_eq!(b.read_page(id1).unwrap().len(), 3);
        assert_eq!(b.read_page(id3).unwrap().len(), 1);
        // a dropped page resurfaces after a crash (drops are in-memory until
        // the file is compacted); the recovery layer above releases it once
        // it knows the page is unreferenced
        assert_eq!(b.read_page(id2).unwrap().len(), 2);
        // ids keep growing across the restart: no reuse, no collisions
        let id4 = b.write_page(&page(&[7])).unwrap();
        assert!(id4 > id3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_truncates_torn_tail_on_reopen() {
        let dir = std::env::temp_dir().join(format!("lethe-fb4-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let id1;
        {
            let b = FileBackend::open(&dir).unwrap();
            id1 = b.write_page(&page(&[1, 2, 3])).unwrap();
            b.sync().unwrap();
            // simulate a crash mid-write: append half a frame
            let mut f = OpenOptions::new().append(true).open(b.data_path()).unwrap();
            use std::io::Write;
            let frame = encode_frame(77, &page(&[9]).encode());
            f.write_all(&frame[..frame.len() / 2]).unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.torn_frames_recovered(), 1);
        assert_eq!(b.live_pages(), 1);
        assert_eq!(b.read_page(id1).unwrap().len(), 3);
        // the torn bytes are gone: writing and reopening is clean
        let id2 = b.write_page(&page(&[4])).unwrap();
        b.sync().unwrap();
        drop(b);
        let b2 = FileBackend::open(&dir).unwrap();
        assert_eq!(b2.torn_frames_recovered(), 0);
        assert_eq!(b2.read_page(id2).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_mid_file_corruption_is_an_error_not_a_truncation() {
        let dir = std::env::temp_dir().join(format!("lethe-fb6-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path;
        {
            let b = FileBackend::open(&dir).unwrap();
            b.write_page(&page(&[1, 2])).unwrap();
            b.write_page(&page(&[3])).unwrap();
            b.write_page(&page(&[4, 5, 6])).unwrap();
            b.sync().unwrap();
            path = b.data_path().to_path_buf();
        }
        // flip one payload byte of the FIRST frame: committed frames follow,
        // so this cannot be a torn tail
        let mut data = std::fs::read(&path).unwrap();
        data[FRAME_HEADER + 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let before = std::fs::read(&path).unwrap();
        match FileBackend::open(&dir) {
            Err(StorageError::Corruption(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected corruption error, got {other:?}"),
        }
        // the failed open must not have destroyed the later valid frames
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_compact_preserves_recoverability() {
        let dir = std::env::temp_dir().join(format!("lethe-fb5-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (id1, id2);
        {
            let b = FileBackend::open(&dir).unwrap();
            id1 = b.write_page(&page(&[1, 2])).unwrap();
            id2 = b.write_page(&page(&[3])).unwrap();
            b.drop_page(id1).unwrap();
            b.compact_file().unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        // after compaction the dropped page is really gone, the live one kept
        assert_eq!(b.live_pages(), 1);
        assert_eq!(b.read_page(id2).unwrap().len(), 1);
        assert!(b.read_page(id1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_drop_and_compact_reclaims_space() {
        let dir = std::env::temp_dir().join(format!("lethe-fb2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = FileBackend::open(&dir).unwrap();
        let big = page(&(0..512).collect::<Vec<u64>>());
        let id1 = b.write_page(&big).unwrap();
        let id2 = b.write_page(&page(&[1])).unwrap();
        let before = b.file_size().unwrap();
        b.drop_page(id1).unwrap();
        b.compact_file().unwrap();
        let after = b.file_size().unwrap();
        assert!(after < before, "compaction should reclaim space: {after} vs {before}");
        // surviving page still readable after compaction
        assert_eq!(b.read_page(id2).unwrap().len(), 1);
        assert!(b.read_page(id1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
