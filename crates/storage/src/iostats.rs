//! I/O and CPU accounting.
//!
//! Every evaluation metric in the paper is a function of counts the engine
//! can measure exactly: pages read and written, pages dropped without being
//! read (KiWi full page drops), bytes moved by flushes and compactions, and
//! Bloom-filter probes (one hash digest each). [`IoStats`] collects those
//! counts; [`CostModel`] converts them to time using the constants the paper
//! reports (≈100 µs per SSD page access, ≈80 ns per hash), which is how the
//! CPU-vs-I/O trade-off of Figure 6(K) and the throughput numbers of
//! Figures 6(D)/(G) are reproduced on the simulated device.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe counters for device and CPU activity.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the device.
    pub pages_read: AtomicU64,
    /// Pages written to the device (flushes + compactions + partial drops).
    pub pages_written: AtomicU64,
    /// Pages dropped in their entirety without being read (KiWi full drops).
    pub pages_dropped: AtomicU64,
    /// Bytes read from the device.
    pub bytes_read: AtomicU64,
    /// Bytes written to the device.
    pub bytes_written: AtomicU64,
    /// Bloom filter probes performed (one hash digest per probe).
    pub bloom_probes: AtomicU64,
    /// Page reads served by the block cache **without** touching the device
    /// (not counted in `pages_read`/`bytes_read`).
    pub cache_hits: AtomicU64,
    /// Page reads that missed the block cache and fell through to the device
    /// (these *are* also counted in `pages_read`).
    pub cache_misses: AtomicU64,
    /// Durability barriers issued (`fsync`/`fdatasync` on data files, WAL
    /// segments and directories). Group commit exists to keep this number
    /// far below the record count.
    pub fsyncs: AtomicU64,
}

impl IoStats {
    /// Creates a fresh, zeroed counter set behind an `Arc` for sharing.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records a page read of `bytes` bytes.
    pub fn record_read(&self, bytes: u64) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a page write of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a full page drop (no read, no write).
    pub fn record_drop(&self) {
        self.pages_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` Bloom filter probes.
    pub fn record_bloom_probes(&self, n: u64) {
        self.bloom_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a page read served from the block cache (no device access).
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page read that missed the block cache.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one durability barrier (`fsync`/`fdatasync`).
    pub fn record_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns an owned snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            pages_dropped: self.pages_dropped.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bloom_probes: self.bloom_probes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
        self.pages_dropped.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.bloom_probes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.fsyncs.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`], supporting interval arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub pages_read: u64,
    pub pages_written: u64,
    pub pages_dropped: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub bloom_probes: u64,
    /// Page reads served by the block cache without a device access.
    pub cache_hits: u64,
    /// Page reads that missed the block cache (also counted in `pages_read`).
    pub cache_misses: u64,
    /// Durability barriers issued (`fsync`/`fdatasync`).
    pub fsyncs: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (saturating), used to measure
    /// the activity of one experiment phase.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            pages_dropped: self.pages_dropped.saturating_sub(earlier.pages_dropped),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bloom_probes: self.bloom_probes.saturating_sub(earlier.bloom_probes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            fsyncs: self.fsyncs.saturating_sub(earlier.fsyncs),
        }
    }

    /// Block-cache hit rate over the reads this snapshot covers, in `[0, 1]`
    /// (0 when no cached device contributed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Total page I/Os (reads + writes).
    pub fn page_ios(&self) -> u64 {
        self.pages_read + self.pages_written
    }

    /// Counter-wise sum of two snapshots; used by the sharded front-end to
    /// aggregate per-shard device activity into one combined view.
    pub fn combined(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            pages_dropped: self.pages_dropped + other.pages_dropped,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            bloom_probes: self.bloom_probes + other.bloom_probes,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            fsyncs: self.fsyncs + other.fsyncs,
        }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;

    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        self.combined(&rhs)
    }
}

impl std::iter::Sum for IoSnapshot {
    fn sum<I: Iterator<Item = IoSnapshot>>(iter: I) -> IoSnapshot {
        iter.fold(IoSnapshot::default(), |acc, s| acc.combined(&s))
    }
}

/// Converts counted device/CPU events into time, using the latency constants
/// reported in the paper (§4.2.4): an SSD page access costs ~100 µs and a
/// single MurmurHash-style digest ~80 ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Latency of reading one page from the device, in microseconds.
    pub page_read_us: f64,
    /// Latency of writing one page to the device, in microseconds.
    pub page_write_us: f64,
    /// CPU cost of one hash digest (one Bloom probe), in nanoseconds.
    pub hash_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { page_read_us: 100.0, page_write_us: 100.0, hash_ns: 80.0 }
    }
}

impl CostModel {
    /// Total device time for a snapshot, in microseconds.
    pub fn io_time_us(&self, s: &IoSnapshot) -> f64 {
        s.pages_read as f64 * self.page_read_us + s.pages_written as f64 * self.page_write_us
    }

    /// Total hashing (CPU) time for a snapshot, in microseconds.
    pub fn cpu_time_us(&self, s: &IoSnapshot) -> f64 {
        s.bloom_probes as f64 * self.hash_ns / 1_000.0
    }

    /// Combined modeled time, in microseconds.
    pub fn total_time_us(&self, s: &IoSnapshot) -> f64 {
        self.io_time_us(s) + self.cpu_time_us(s)
    }

    /// Modeled throughput in operations per second for `ops` operations whose
    /// combined activity is `s`.
    pub fn throughput_ops_per_sec(&self, ops: u64, s: &IoSnapshot) -> f64 {
        let t = self.total_time_us(s);
        if t <= 0.0 {
            return f64::INFINITY;
        }
        ops as f64 / (t / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = IoStats::default();
        s.record_read(4096);
        s.record_read(4096);
        s.record_write(4096);
        s.record_drop();
        s.record_bloom_probes(5);
        let snap = s.snapshot();
        assert_eq!(snap.pages_read, 2);
        assert_eq!(snap.pages_written, 1);
        assert_eq!(snap.pages_dropped, 1);
        assert_eq!(snap.bytes_read, 8192);
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.bloom_probes, 5);
        assert_eq!(snap.page_ios(), 3);
    }

    #[test]
    fn fsyncs_are_counted_and_intervalled() {
        let s = IoStats::default();
        s.record_fsync();
        s.record_fsync();
        let a = s.snapshot();
        assert_eq!(a.fsyncs, 2);
        s.record_fsync();
        let d = s.snapshot().since(&a);
        assert_eq!(d.fsyncs, 1);
        assert_eq!(a.combined(&d).fsyncs, 3);
        s.reset();
        assert_eq!(s.snapshot().fsyncs, 0);
    }

    #[test]
    fn interval_difference() {
        let s = IoStats::default();
        s.record_read(100);
        let a = s.snapshot();
        s.record_read(100);
        s.record_write(200);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.pages_read, 1);
        assert_eq!(d.pages_written, 1);
        assert_eq!(d.bytes_written, 200);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::default();
        s.record_read(1);
        s.record_bloom_probes(10);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn cost_model_matches_paper_constants() {
        let m = CostModel::default();
        let snap = IoSnapshot { pages_read: 10, bloom_probes: 1000, ..Default::default() };
        assert!((m.io_time_us(&snap) - 1000.0).abs() < 1e-9);
        assert!((m.cpu_time_us(&snap) - 80.0).abs() < 1e-9);
        // hashing is three orders of magnitude cheaper than I/O per event
        assert!(m.hash_ns / 1000.0 < m.page_read_us / 100.0);
    }

    #[test]
    fn throughput_is_finite_and_sane() {
        let m = CostModel::default();
        let snap = IoSnapshot { pages_read: 1000, ..Default::default() };
        let tput = m.throughput_ops_per_sec(1000, &snap);
        // 1000 ops, each costing one 100µs read => 10_000 ops/s
        assert!((tput - 10_000.0).abs() < 1.0);
        let empty = IoSnapshot::default();
        assert!(m.throughput_ops_per_sec(10, &empty).is_infinite());
    }
}
