//! The fundamental key-value record stored by the engine.
//!
//! Every record carries a *sort key* `S` (the key the tree is ordered and
//! queried on), a *delete key* `D` (a secondary attribute — e.g. a creation
//! timestamp — that secondary range deletes operate on), a monotonically
//! increasing sequence number used to order versions of the same sort key,
//! and a kind: a regular `Put`, a point tombstone, or a range tombstone.
//!
//! This mirrors the entry layout of the paper's Figure 3: a key-value pair is
//! `⟨sort key, delete key, value⟩` and a tombstone is `⟨sort key, flag⟩`
//! (point) or `⟨start, end, flag⟩` (range).

use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// The primary (sort) key. The tree is totally ordered on this key.
pub type SortKey = u64;
/// The secondary (delete) key, e.g. a timestamp. Secondary range deletes are
/// expressed as ranges over this key.
pub type DeleteKey = u64;
/// Monotonically increasing sequence number assigned at ingestion time.
/// A larger sequence number always denotes a more recent version.
pub type SeqNum = u64;

/// Number of bytes used to encode the sort key on disk.
pub const SORT_KEY_BYTES: usize = 8;
/// Number of bytes used to encode the delete key on disk.
pub const DELETE_KEY_BYTES: usize = 8;
/// Number of bytes used to encode the sequence number on disk.
pub const SEQNUM_BYTES: usize = 8;
/// Number of bytes used to encode the entry kind / tombstone flag on disk.
pub const FLAG_BYTES: usize = 1;
/// Fixed per-entry header size (everything except the value payload).
pub const HEADER_BYTES: usize = SORT_KEY_BYTES + DELETE_KEY_BYTES + SEQNUM_BYTES + FLAG_BYTES;

/// What a record represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryKind {
    /// A live key-value pair.
    Put,
    /// A point tombstone: logically deletes every older version of the same
    /// sort key.
    PointTombstone,
    /// A range tombstone: logically deletes every older version of every sort
    /// key in `[sort_key, end)`.
    RangeTombstone {
        /// Exclusive upper bound of the deleted sort-key range.
        end: SortKey,
    },
}

impl EntryKind {
    /// Returns `true` for both point and range tombstones.
    pub fn is_tombstone(&self) -> bool {
        !matches!(self, EntryKind::Put)
    }
}

/// A single record flowing through the engine (memtable, pages, compactions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The sort key `S`.
    pub sort_key: SortKey,
    /// The delete key `D` (meaningless for tombstones, kept for uniformity).
    pub delete_key: DeleteKey,
    /// Ingestion sequence number; larger is newer.
    pub seqnum: SeqNum,
    /// Whether this is a put, a point tombstone, or a range tombstone.
    pub kind: EntryKind,
    /// The value payload. Empty for tombstones.
    pub value: Bytes,
}

impl Entry {
    /// Creates a live key-value entry.
    pub fn put(sort_key: SortKey, delete_key: DeleteKey, seqnum: SeqNum, value: Bytes) -> Self {
        Entry { sort_key, delete_key, seqnum, kind: EntryKind::Put, value }
    }

    /// Creates a point tombstone for `sort_key`.
    pub fn point_tombstone(sort_key: SortKey, seqnum: SeqNum) -> Self {
        Entry {
            sort_key,
            delete_key: 0,
            seqnum,
            kind: EntryKind::PointTombstone,
            value: Bytes::new(),
        }
    }

    /// Creates a range tombstone covering sort keys in `[start, end)`.
    pub fn range_tombstone(start: SortKey, end: SortKey, seqnum: SeqNum) -> Self {
        Entry {
            sort_key: start,
            delete_key: 0,
            seqnum,
            kind: EntryKind::RangeTombstone { end },
            value: Bytes::new(),
        }
    }

    /// Returns `true` if this entry is any kind of tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.kind.is_tombstone()
    }

    /// Returns `true` if this entry is a point tombstone.
    pub fn is_point_tombstone(&self) -> bool {
        matches!(self.kind, EntryKind::PointTombstone)
    }

    /// Returns `true` if this entry is a range tombstone.
    pub fn is_range_tombstone(&self) -> bool {
        matches!(self.kind, EntryKind::RangeTombstone { .. })
    }

    /// For range tombstones, the exclusive end of the covered range.
    pub fn range_end(&self) -> Option<SortKey> {
        match self.kind {
            EntryKind::RangeTombstone { end } => Some(end),
            _ => None,
        }
    }

    /// Returns `true` if this (range tombstone) entry covers `key`.
    /// Non-range entries cover only their own sort key.
    pub fn covers(&self, key: SortKey) -> bool {
        match self.kind {
            EntryKind::RangeTombstone { end } => self.sort_key <= key && key < end,
            _ => self.sort_key == key,
        }
    }

    /// Resolves a buffered point lookup: combines the buffered point entry
    /// for `sort_key` (if any) with the newest buffered range tombstone
    /// covering it (if any). A strictly newer covering range tombstone
    /// shadows the point entry; a covering tombstone with no point entry
    /// reports the key as deleted. The single definition of this precedence,
    /// shared by the active memtable and the frozen flush buffer so the two
    /// read paths can never diverge.
    pub fn resolve_point_read(
        sort_key: SortKey,
        point: Option<Entry>,
        covering_rt: Option<&Entry>,
    ) -> Option<Entry> {
        match (point, covering_rt) {
            (Some(p), Some(rt)) if rt.seqnum > p.seqnum => {
                Some(Entry::point_tombstone(sort_key, rt.seqnum))
            }
            (Some(p), _) => Some(p),
            (None, Some(rt)) => Some(Entry::point_tombstone(sort_key, rt.seqnum)),
            (None, None) => None,
        }
    }

    /// The on-disk encoded size of this entry in bytes: a fixed header plus
    /// the value payload. Tombstones carry no payload, which is what makes
    /// the tombstone size ratio λ = size(tombstone)/size(key-value) small
    /// (paper §3.2.1).
    pub fn encoded_size(&self) -> usize {
        HEADER_BYTES
            + match self.kind {
                EntryKind::Put => self.value.len(),
                EntryKind::PointTombstone => 0,
                // a range tombstone additionally stores its end key
                EntryKind::RangeTombstone { .. } => SORT_KEY_BYTES,
            }
    }

    /// Returns `true` if `self` is a more recent version than `other` for the
    /// same sort key (strictly larger sequence number).
    pub fn supersedes(&self, other: &Entry) -> bool {
        self.sort_key == other.sort_key && self.seqnum > other.seqnum
    }

    /// Serialises the entry into `buf`. The format is shared by the page
    /// codec and the manifest's range-tombstone blocks:
    /// `sort_key · delete_key · seqnum · tag (· value | · range end)`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64(self.sort_key);
        buf.put_u64(self.delete_key);
        buf.put_u64(self.seqnum);
        match &self.kind {
            EntryKind::Put => {
                buf.put_u8(0);
                buf.put_u32(self.value.len() as u32);
                buf.put_slice(&self.value);
            }
            EntryKind::PointTombstone => buf.put_u8(1),
            EntryKind::RangeTombstone { end } => {
                buf.put_u8(2);
                buf.put_u64(*end);
            }
        }
    }

    /// Decodes one entry previously produced by [`Entry::encode_into`],
    /// consuming it from the front of `data`.
    pub fn decode_from(data: &mut Bytes) -> Result<Entry> {
        if data.remaining() < 25 {
            return Err(StorageError::Corruption("entry header truncated".into()));
        }
        let sort_key = data.get_u64();
        let delete_key = data.get_u64();
        let seqnum = data.get_u64();
        let tag = data.get_u8();
        match tag {
            0 => {
                if data.remaining() < 4 {
                    return Err(StorageError::Corruption("value length truncated".into()));
                }
                let len = data.get_u32() as usize;
                if data.remaining() < len {
                    return Err(StorageError::Corruption("value body truncated".into()));
                }
                let value = data.copy_to_bytes(len);
                Ok(Entry { sort_key, delete_key, seqnum, kind: EntryKind::Put, value })
            }
            1 => Ok(Entry {
                sort_key,
                delete_key,
                seqnum,
                kind: EntryKind::PointTombstone,
                value: Bytes::new(),
            }),
            2 => {
                if data.remaining() < 8 {
                    return Err(StorageError::Corruption("range end truncated".into()));
                }
                let end = data.get_u64();
                Ok(Entry {
                    sort_key,
                    delete_key,
                    seqnum,
                    kind: EntryKind::RangeTombstone { end },
                    value: Bytes::new(),
                })
            }
            t => Err(StorageError::Corruption(format!("unknown entry tag {t}"))),
        }
    }
}

/// Computes the tombstone size ratio λ = size(tombstone) / size(key-value)
/// for a given average value size (paper §3.2.1). λ ∈ (0, 1].
pub fn tombstone_size_ratio(avg_value_size: usize) -> f64 {
    HEADER_BYTES as f64 / (HEADER_BYTES + avg_value_size) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_entry_reports_sizes_and_kind() {
        let e = Entry::put(10, 99, 7, Bytes::from(vec![0u8; 100]));
        assert!(!e.is_tombstone());
        assert_eq!(e.encoded_size(), HEADER_BYTES + 100);
        assert_eq!(e.range_end(), None);
        assert!(e.covers(10));
        assert!(!e.covers(11));
    }

    #[test]
    fn point_tombstone_has_no_payload() {
        let t = Entry::point_tombstone(5, 3);
        assert!(t.is_tombstone());
        assert!(t.is_point_tombstone());
        assert!(!t.is_range_tombstone());
        assert_eq!(t.encoded_size(), HEADER_BYTES);
        assert!(t.value.is_empty());
    }

    #[test]
    fn range_tombstone_covers_half_open_interval() {
        let t = Entry::range_tombstone(10, 20, 1);
        assert!(t.is_range_tombstone());
        assert_eq!(t.range_end(), Some(20));
        assert!(t.covers(10));
        assert!(t.covers(19));
        assert!(!t.covers(20));
        assert!(!t.covers(9));
        assert_eq!(t.encoded_size(), HEADER_BYTES + SORT_KEY_BYTES);
    }

    #[test]
    fn supersedes_requires_same_key_and_newer_seqnum() {
        let old = Entry::put(1, 0, 5, Bytes::from_static(b"a"));
        let newer = Entry::put(1, 0, 9, Bytes::from_static(b"b"));
        let other_key = Entry::put(2, 0, 10, Bytes::from_static(b"c"));
        assert!(newer.supersedes(&old));
        assert!(!old.supersedes(&newer));
        assert!(!other_key.supersedes(&old));
    }

    #[test]
    fn entry_codec_roundtrips_every_kind() {
        let entries = vec![
            Entry::put(1, 11, 5, Bytes::from_static(b"hello")),
            Entry::put(2, 0, 6, Bytes::new()),
            Entry::point_tombstone(3, 7),
            Entry::range_tombstone(4, 40, 8),
        ];
        let mut buf = BytesMut::new();
        for e in &entries {
            e.encode_into(&mut buf);
        }
        let mut data = buf.freeze();
        for e in &entries {
            assert_eq!(&Entry::decode_from(&mut data).unwrap(), e);
        }
        assert_eq!(data.len(), 0);
        // truncated input is an error, not a panic
        let mut short = Bytes::from_static(b"\x00\x01");
        assert!(Entry::decode_from(&mut short).is_err());
    }

    #[test]
    fn tombstone_size_ratio_matches_definition() {
        let lambda = tombstone_size_ratio(1024 - HEADER_BYTES);
        assert!((lambda - HEADER_BYTES as f64 / 1024.0).abs() < 1e-12);
        // λ is bounded by (0, 1]
        assert!(tombstone_size_ratio(0) <= 1.0);
        assert!(tombstone_size_ratio(1_000_000) > 0.0);
    }
}
