//! Bloom filters over sort keys.
//!
//! The engine keeps one Bloom filter per data page (paper §4.2.3): with the
//! KiWi layout a lookup locates a delete tile via fence pointers and then
//! probes the filter of each page in the tile before paying an I/O. Because a
//! delete tile contains no duplicate sort keys, per-page filters achieve the
//! same overall false-positive rate as a single per-file filter with the same
//! total memory (paper cites BF-Tree for this argument).
//!
//! Following the paper's observation about commercial engines (§4.2.4), a
//! probe computes a *single* 64-bit hash digest and derives all `k` probe
//! positions from it by double hashing, so the CPU cost per probe is one hash
//! evaluation (~80 ns in the paper's measurement). Probe counts are reported
//! to [`crate::iostats::IoStats`] by the callers so the CPU/I/O trade-off of
//! Figure 6(K) can be reproduced.

use crate::entry::SortKey;

/// A simple, allocation-friendly Bloom filter keyed by `u64` sort keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    /// Bit array packed into 64-bit words.
    bits: Vec<u64>,
    /// Number of addressable bits (always `bits.len() * 64`, cached).
    num_bits: u64,
    /// Number of probe positions derived per key.
    k: u32,
    /// Number of keys inserted (for diagnostics / FPR estimation).
    num_keys: u64,
}

/// 64-bit finalizer from SplitMix64 — a cheap, well-mixed stand-in for the
/// single MurmurHash digest commercial engines use.
#[inline]
pub fn hash64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BloomFilter {
    /// Creates a filter sized for `expected_keys` keys at `bits_per_key` bits
    /// per key. The number of probes `k` is chosen as `ln(2) * bits_per_key`,
    /// the standard optimum.
    pub fn new(expected_keys: usize, bits_per_key: f64) -> Self {
        let bits_per_key = bits_per_key.max(1.0);
        let num_bits = ((expected_keys.max(1) as f64) * bits_per_key).ceil() as u64;
        let num_bits = num_bits.max(64);
        let words = num_bits.div_ceil(64) as usize;
        let num_bits = (words as u64) * 64;
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        BloomFilter { bits: vec![0u64; words], num_bits, k, num_keys: 0 }
    }

    /// Inserts a sort key into the filter.
    pub fn insert(&mut self, key: SortKey) {
        let h = hash64(key);
        let (mut pos, delta) = Self::split(h);
        for _ in 0..self.k {
            let bit = pos % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
            pos = pos.wrapping_add(delta);
        }
        self.num_keys += 1;
    }

    /// Returns `false` if `key` was definitely never inserted; `true` if it
    /// may have been (with some false-positive probability).
    pub fn may_contain(&self, key: SortKey) -> bool {
        let h = hash64(key);
        let (mut pos, delta) = Self::split(h);
        for _ in 0..self.k {
            let bit = pos % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            pos = pos.wrapping_add(delta);
        }
        true
    }

    #[inline]
    fn split(h: u64) -> (u64, u64) {
        // double hashing: derive a start position and an odd delta from the
        // single 64-bit digest
        let delta = (h >> 32) | 1;
        (h, delta)
    }

    /// Number of keys inserted so far.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Number of probe positions per key.
    pub fn probes_per_key(&self) -> u32 {
        self.k
    }

    /// Size of the filter's bit array in bytes (memory-footprint accounting).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// The theoretical false-positive rate `e^{-m/n (ln 2)^2}` given the
    /// current number of inserted keys (paper §3.2.2).
    pub fn theoretical_fpr(&self) -> f64 {
        if self.num_keys == 0 {
            return 0.0;
        }
        let bits_per_key = self.num_bits as f64 / self.num_keys as f64;
        (-bits_per_key * std::f64::consts::LN_2 * std::f64::consts::LN_2).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1000, 10.0);
        for k in 0..1000u64 {
            bf.insert(k * 7 + 3);
        }
        for k in 0..1000u64 {
            assert!(bf.may_contain(k * 7 + 3), "false negative for {}", k * 7 + 3);
        }
        assert_eq!(bf.num_keys(), 1000);
    }

    #[test]
    fn false_positive_rate_is_near_theory() {
        let n = 10_000usize;
        let mut bf = BloomFilter::new(n, 10.0);
        for k in 0..n as u64 {
            bf.insert(k);
        }
        let mut fp = 0usize;
        let trials = 50_000usize;
        for k in 0..trials as u64 {
            if bf.may_contain(1_000_000 + k) {
                fp += 1;
            }
        }
        let fpr = fp as f64 / trials as f64;
        // theory for 10 bits/key is ~0.0082; allow generous slack
        assert!(fpr < 0.03, "observed fpr {fpr} too high");
        assert!(bf.theoretical_fpr() < 0.02);
    }

    #[test]
    fn fewer_bits_per_key_increase_fpr() {
        let n = 5_000usize;
        let build = |bpk: f64| {
            let mut bf = BloomFilter::new(n, bpk);
            for k in 0..n as u64 {
                bf.insert(k);
            }
            let mut fp = 0usize;
            for k in 0..20_000u64 {
                if bf.may_contain(10_000_000 + k) {
                    fp += 1;
                }
            }
            fp
        };
        let fp_tight = build(12.0);
        let fp_loose = build(4.0);
        assert!(fp_loose > fp_tight, "loose={fp_loose} tight={fp_tight}");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::new(100, 10.0);
        for k in 0..100u64 {
            assert!(!bf.may_contain(k));
        }
        assert_eq!(bf.theoretical_fpr(), 0.0);
    }

    #[test]
    fn size_and_probe_accounting() {
        let bf = BloomFilter::new(1024, 10.0);
        assert!(bf.size_bytes() >= 1024 * 10 / 8);
        assert!(bf.probes_per_key() >= 6 && bf.probes_per_key() <= 8);
    }

    #[test]
    fn hash64_is_deterministic_and_spreads() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(42), hash64(43));
        // low bits should differ for consecutive keys (mixing)
        let a = hash64(1) & 0xFFFF;
        let b = hash64(2) & 0xFFFF;
        assert_ne!(a, b);
    }
}
