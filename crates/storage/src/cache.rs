//! Sharded, size-charged block cache for decoded pages.
//!
//! Every read that misses the memtables pays a device access *plus* a full
//! page decode. [`PageCache`] sits between the table layer and the device and
//! keeps recently used pages in memory as shared [`Arc<Page>`]s, so a hit
//! costs one hash lookup and one pointer clone instead of a `pread` and a
//! decode. One cache is shared by every shard of a sharded store (the memory
//! budget is global, hot shards naturally take more of it), which is why
//! entries are keyed by `(source, page id)`: page ids are only unique per
//! device, and each [`CachedBackend`] registers its own source token.
//!
//! ## Eviction
//!
//! The cache is striped into up to 16 independent shards (selected by the
//! key hash; small budgets get fewer stripes so one stripe can always hold
//! several pages) so concurrent readers rarely contend on one lock: a hit
//! takes its stripe's mutex briefly (hash lookup + reference-bit store),
//! and readers on different stripes proceed fully in parallel. Each shard
//! runs **CLOCK (second chance)**: a hit sets the entry's reference bit; the
//! eviction hand sweeps the slots circularly, demoting referenced entries
//! (clearing the bit) and evicting the first unreferenced one. This
//! approximates LRU at a fraction of its bookkeeping cost — no LRU list
//! surgery on the hit path, just that one flag.
//!
//! Entries are charged by their decoded payload size plus a fixed per-entry
//! overhead, and a shard evicts until the charge fits; pages larger than a
//! whole shard are simply not cached (they would evict everything for one
//! entry).
//!
//! ## Invalidation
//!
//! [`CachedBackend::drop_page`] invalidates before it drops, so a page
//! retired by compaction, secondary-delete page drops or crash-recovery GC
//! can never be resurrected from cache: page ids are allocated monotonically
//! and never reused, and the deferred-reclamation layer (`VersionSet`) only
//! drops a page once no pinned snapshot can reach it, at which point no
//! correct reader will ask for that id again — invalidation here reclaims the
//! memory and turns any *buggy* later read into the same `PageNotFound` the
//! uncached device reports.
//!
//! That discipline (no read of an id concurrent with its drop) is also what
//! makes the miss path race-free: a `read_page` miss fills the cache after
//! reading the device, so a `drop_page` of the *same id* interleaved between
//! those two steps could strand the filled entry past its invalidation. The
//! engine never produces that interleaving — a reader only learns ids from a
//! pinned version, and the pin defers the drop — and even under misuse the
//! stranded entry is only wasted budget, never wrong data: ids are never
//! reused, so no later lookup can alias it.

use crate::backend::{PageId, StorageBackend};
use crate::error::Result;
use crate::iostats::IoStats;
use crate::page::Page;
use lethe_sync::{LockRank, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum number of independent cache stripes; 16 comfortably exceeds the
/// worker + reader thread counts the engine runs with. Small budgets use
/// fewer stripes (one per [`MIN_STRIPE_BYTES`] of budget) so a stripe always
/// has room for several pages — dividing a few-KiB test cache 16 ways would
/// make every normal page "oversized" and the cache silently inert.
const CACHE_SHARDS: usize = 16;

/// Budget below which adding another stripe would leave stripes too small
/// to hold a handful of pages.
const MIN_STRIPE_BYTES: usize = 4096;

/// Approximate bookkeeping cost charged per cached entry on top of its
/// payload (key, slot, map entry, `Arc` + `Page` headers).
const ENTRY_OVERHEAD: usize = 96;

/// Cache key: the owning device's source token plus the page id on it.
type CacheKey = (u64, PageId);

/// One resident entry of a cache shard.
struct Slot {
    key: CacheKey,
    page: Arc<Page>,
    charge: usize,
    /// CLOCK reference bit: set on every hit, cleared when the hand passes.
    referenced: bool,
}

/// One CLOCK stripe: a circular slot arena plus the key → slot index.
#[derive(Default)]
struct CacheShard {
    slots: Vec<Slot>,
    map: HashMap<CacheKey, usize>,
    /// Current position of the eviction hand in `slots`.
    hand: usize,
    bytes: usize,
}

impl CacheShard {
    fn get(&mut self, key: CacheKey) -> Option<Arc<Page>> {
        let idx = *self.map.get(&key)?;
        let slot = &mut self.slots[idx];
        slot.referenced = true;
        Some(Arc::clone(&slot.page))
    }

    /// Inserts (or replaces) `key`, evicting via CLOCK until the charge fits
    /// `capacity`. Returns `(stored, evictions)`: `stored` is `false` when
    /// the page was rejected as oversized.
    fn insert(
        &mut self,
        key: CacheKey,
        page: Arc<Page>,
        charge: usize,
        capacity: usize,
    ) -> (bool, u64) {
        if charge > capacity {
            return (false, 0); // larger than the whole stripe: not worth caching
        }
        let mut evictions = 0u64;
        if let Some(&idx) = self.map.get(&key) {
            // a page id is never rewritten with different contents, but the
            // replace keeps the cache correct even if that ever changed
            let slot = &mut self.slots[idx];
            self.bytes = self.bytes - slot.charge + charge;
            slot.page = page;
            slot.charge = charge;
            slot.referenced = true;
        } else {
            while self.bytes + charge > capacity && !self.slots.is_empty() {
                self.evict_one();
                evictions += 1;
            }
            self.map.insert(key, self.slots.len());
            self.slots.push(Slot { key, page, charge, referenced: false });
            self.bytes += charge;
        }
        // shrink back if a replace grew past capacity
        while self.bytes > capacity && !self.slots.is_empty() {
            self.evict_one();
            evictions += 1;
        }
        (true, evictions)
    }

    /// Advances the CLOCK hand to the first unreferenced slot (giving
    /// referenced ones their second chance) and evicts it.
    fn evict_one(&mut self) {
        debug_assert!(!self.slots.is_empty());
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            if self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand += 1;
            } else {
                self.remove_at(self.hand);
                return;
            }
        }
    }

    /// Removes the slot at `idx` (swap-remove, fixing up the moved slot's
    /// map entry and the hand).
    fn remove_at(&mut self, idx: usize) {
        let slot = self.slots.swap_remove(idx);
        self.map.remove(&slot.key);
        self.bytes -= slot.charge;
        if let Some(moved) = self.slots.get(idx) {
            // lint:allow(no-panic): every resident slot has a map entry by construction
            *self.map.get_mut(&moved.key).expect("moved slot must be mapped") = idx;
        }
        if self.hand > self.slots.len() {
            self.hand = 0;
        }
    }

    fn invalidate(&mut self, key: CacheKey) -> bool {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.remove_at(idx);
                true
            }
            None => false,
        }
    }
}

/// A point-in-time copy of a cache's counters and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the device.
    pub misses: u64,
    /// Pages inserted (misses that were cached + warmed writes).
    pub insertions: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Pages explicitly invalidated by `drop_page`.
    pub invalidations: u64,
    /// Bytes currently charged to resident pages.
    pub bytes_resident: u64,
    /// Pages currently resident.
    pub pages_resident: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
}

impl CacheSnapshot {
    /// Hit rate over the cache's lifetime, in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A sharded, size-charged CLOCK cache of decoded pages, shared across every
/// device of one store. See the [module docs](self).
pub struct PageCache {
    shards: Vec<Mutex<CacheShard>>,
    capacity_per_shard: usize,
    next_source: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("PageCache")
            .field("capacity_bytes", &snap.capacity_bytes)
            .field("bytes_resident", &snap.bytes_resident)
            .field("pages_resident", &snap.pages_resident)
            .field("hits", &snap.hits)
            .field("misses", &snap.misses)
            .finish()
    }
}

impl PageCache {
    /// Creates a cache with a total budget of `capacity_bytes`, split evenly
    /// across `min(16, capacity_bytes / 4 KiB)` stripes (at least one), so
    /// even an eviction-heavy test budget of a few KiB leaves each stripe
    /// room for several pages. A page larger than one stripe is never
    /// cached, so a budget smaller than the page payload caches nothing.
    /// [`PageCache::capacity_bytes`] reports the effective total.
    pub fn new(capacity_bytes: usize) -> Self {
        let stripes = (capacity_bytes / MIN_STRIPE_BYTES).clamp(1, CACHE_SHARDS);
        PageCache {
            shards: (0..stripes)
                .map(|_| Mutex::new(LockRank::CacheStripe, CacheShard::default()))
                .collect(),
            capacity_per_shard: (capacity_bytes / stripes).max(ENTRY_OVERHEAD),
            next_source: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Creates a cache behind an `Arc`, ready to be shared across devices.
    pub fn new_shared(capacity_bytes: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity_bytes))
    }

    /// Allocates a fresh source token. Page ids are only unique per device,
    /// so every device sharing this cache must key its entries by its own
    /// token (done automatically by [`CachedBackend`]).
    pub fn register_source(&self) -> u64 {
        self.next_source.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_of(&self, key: CacheKey) -> &Mutex<CacheShard> {
        // Fibonacci hash of (source, id) so sequential page ids of one
        // device spread across stripes
        let h = (key.0 ^ key.1.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 56) as usize % self.shards.len()]
    }

    /// Looks up `(source, id)`, marking the entry recently used on a hit.
    pub fn get(&self, source: u64, id: PageId) -> Option<Arc<Page>> {
        let key = (source, id);
        let got = self.shard_of(key).lock().get(key);
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Inserts a decoded page, evicting as needed (a page larger than a
    /// whole stripe is rejected, not stored, and not counted as inserted).
    pub fn insert(&self, source: u64, id: PageId, page: Arc<Page>) {
        let key = (source, id);
        let charge = page.data_size() + ENTRY_OVERHEAD;
        let (stored, evicted) =
            self.shard_of(key).lock().insert(key, page, charge, self.capacity_per_shard);
        if stored {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Removes `(source, id)` if resident (a page dropped on the device must
    /// never be served from cache again).
    pub fn invalidate(&self, source: u64, id: PageId) {
        let key = (source, id);
        if self.shard_of(key).lock().invalidate(key) {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every resident page.
    pub fn clear(&self) {
        for shard in &self.shards {
            *shard.lock() = CacheShard::default();
        }
    }

    /// Bytes currently charged to resident pages.
    pub fn bytes_resident(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes as u64).sum()
    }

    /// Number of resident pages.
    pub fn pages_resident(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().slots.len() as u64).sum()
    }

    /// Total configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.capacity_per_shard * self.shards.len()) as u64
    }

    /// A point-in-time copy of the cache's counters and occupancy.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes_resident: self.bytes_resident(),
            pages_resident: self.pages_resident(),
            capacity_bytes: self.capacity_bytes(),
        }
    }
}

/// A device wrapper serving reads through a shared [`PageCache`].
///
/// * `read_page` returns the cached page on a hit (no device access, charged
///   to [`IoStats::cache_hits`] instead of `pages_read`) and populates the
///   cache on a miss.
/// * `drop_page` invalidates before dropping, so retired pages can never be
///   resurrected from cache.
/// * `write_page` optionally *warms* the cache with the freshly written page
///   (useful when flush/compaction output is about to be read back).
///
/// All other operations delegate to the wrapped device. The wrapper is what
/// the builders install when `block_cache_bytes > 0`; the tree and table
/// layers just see a `StorageBackend` whose reads got fast.
pub struct CachedBackend {
    inner: Arc<dyn StorageBackend>,
    cache: Arc<PageCache>,
    source: u64,
    warm_writes: bool,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for CachedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedBackend")
            .field("source", &self.source)
            .field("warm_writes", &self.warm_writes)
            .field("cache", &self.cache)
            .finish()
    }
}

impl CachedBackend {
    /// Wraps `inner` so its reads are served through `cache`. `warm_writes`
    /// inserts every written page into the cache immediately.
    pub fn new(inner: Arc<dyn StorageBackend>, cache: Arc<PageCache>, warm_writes: bool) -> Self {
        let stats = inner.stats();
        let source = cache.register_source();
        CachedBackend { inner, cache, source, warm_writes, stats }
    }

    /// The shared cache this device reads through.
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// The wrapped device.
    pub fn inner(&self) -> &Arc<dyn StorageBackend> {
        &self.inner
    }
}

impl StorageBackend for CachedBackend {
    fn write_page(&self, page: &Page) -> Result<PageId> {
        let id = self.inner.write_page(page)?;
        if self.warm_writes {
            self.cache.insert(self.source, id, Arc::new(page.clone()));
        }
        Ok(id)
    }

    fn read_page(&self, id: PageId) -> Result<Arc<Page>> {
        if let Some(page) = self.cache.get(self.source, id) {
            self.stats.record_cache_hit();
            return Ok(page);
        }
        let page = self.inner.read_page(id)?;
        self.stats.record_cache_miss();
        self.cache.insert(self.source, id, Arc::clone(&page));
        Ok(page)
    }

    fn read_page_nofill(&self, id: PageId) -> Result<Arc<Page>> {
        // bulk maintenance scans: serve resident pages, but never let a
        // streamed compaction input displace the hot read working set
        if let Some(page) = self.cache.get(self.source, id) {
            self.stats.record_cache_hit();
            return Ok(page);
        }
        let page = self.inner.read_page(id)?;
        self.stats.record_cache_miss();
        Ok(page)
    }

    fn drop_page(&self, id: PageId) -> Result<()> {
        // invalidate first: even if the device drop fails, serving a page
        // the caller asked to retire would be the worse outcome
        self.cache.invalidate(self.source, id);
        self.inner.drop_page(id)
    }

    fn stats(&self) -> Arc<IoStats> {
        self.inner.stats()
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn page_ids(&self) -> Vec<PageId> {
        self.inner.page_ids()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InMemoryBackend;
    use crate::entry::Entry;
    use bytes::Bytes;

    fn page(keys: &[u64]) -> Page {
        Page::new(keys.iter().map(|&k| Entry::put(k, k, k, Bytes::from(vec![0u8; 16]))).collect())
    }

    fn cached(capacity: usize, warm: bool) -> (CachedBackend, Arc<InMemoryBackend>) {
        let inner = InMemoryBackend::new_shared();
        let cache = PageCache::new_shared(capacity);
        (CachedBackend::new(Arc::clone(&inner) as Arc<dyn StorageBackend>, cache, warm), inner)
    }

    #[test]
    fn hit_after_miss_and_io_accounting() {
        let (b, _inner) = cached(1 << 20, false);
        let id = b.write_page(&page(&[1, 2, 3])).unwrap();
        assert_eq!(b.read_page(id).unwrap().len(), 3); // miss: device read
        assert_eq!(b.read_page(id).unwrap().len(), 3); // hit: no device read
        let snap = b.cache().snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert!(snap.bytes_resident > 0);
        let io = b.stats().snapshot();
        assert_eq!(io.pages_read, 1, "a cache hit must not count as a device read");
        assert_eq!(io.cache_hits, 1);
        assert_eq!(io.cache_misses, 1);
        assert!((snap.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn warm_writes_serve_without_any_device_read() {
        let (b, _inner) = cached(1 << 20, true);
        let id = b.write_page(&page(&[7])).unwrap();
        assert_eq!(b.read_page(id).unwrap().len(), 1);
        assert_eq!(b.stats().snapshot().pages_read, 0, "warmed write must serve from cache");
        assert_eq!(b.cache().snapshot().hits, 1);
    }

    #[test]
    fn drop_page_invalidates_before_dropping() {
        let (b, inner) = cached(1 << 20, true);
        let id = b.write_page(&page(&[1])).unwrap();
        assert_eq!(b.read_page(id).unwrap().len(), 1); // resident
        b.drop_page(id).unwrap();
        assert!(b.read_page(id).is_err(), "a dropped page must never be served from cache");
        assert_eq!(inner.live_pages(), 0);
        assert_eq!(b.cache().snapshot().invalidations, 1);
        assert_eq!(b.cache().pages_resident(), 0);
    }

    #[test]
    fn clock_gives_hot_entries_a_second_chance() {
        let mut shard = CacheShard::default();
        let capacity = 3 * (16 + ENTRY_OVERHEAD);
        let charge = 16 + ENTRY_OVERHEAD;
        let p = Arc::new(page(&[1]));
        for id in 0..3u64 {
            shard.insert((1, id), Arc::clone(&p), charge, capacity);
        }
        // touch page 0: it gains a reference bit
        assert!(shard.get((1, 0)).is_some());
        // inserting a 4th page must evict an *unreferenced* one, not page 0
        shard.insert((1, 3), Arc::clone(&p), charge, capacity);
        assert!(shard.get((1, 0)).is_some(), "hot entry evicted despite its second chance");
        assert_eq!(shard.slots.len(), 3);
    }

    #[test]
    fn size_charging_bounds_residency() {
        let cache = PageCache::new(CACHE_SHARDS * 2 * (page(&[1]).data_size() + ENTRY_OVERHEAD));
        for id in 0..200u64 {
            cache.insert(1, id, Arc::new(page(&[id])));
        }
        let snap = cache.snapshot();
        assert!(snap.bytes_resident <= snap.capacity_bytes);
        assert!(snap.evictions > 0, "overcommitting the budget must evict");
        assert!(snap.pages_resident < 200);
    }

    #[test]
    fn oversized_pages_are_not_cached() {
        let cache = PageCache::new(256);
        let big = Arc::new(page(&(0..256).collect::<Vec<u64>>()));
        cache.insert(1, 1, big);
        assert_eq!(cache.pages_resident(), 0);
        assert!(cache.get(1, 1).is_none());
        assert_eq!(cache.snapshot().insertions, 0, "a rejected page is not an insertion");
    }

    #[test]
    fn sources_do_not_collide() {
        let cache = PageCache::new_shared(1 << 20);
        let a = cache.register_source();
        let b = cache.register_source();
        assert_ne!(a, b);
        cache.insert(a, 1, Arc::new(page(&[10])));
        cache.insert(b, 1, Arc::new(page(&[20, 21])));
        assert_eq!(cache.get(a, 1).unwrap().len(), 1);
        assert_eq!(cache.get(b, 1).unwrap().len(), 2);
        cache.invalidate(a, 1);
        assert!(cache.get(a, 1).is_none());
        assert!(cache.get(b, 1).is_some(), "invalidation must be per source");
    }

    #[test]
    fn clear_empties_everything() {
        let cache = PageCache::new(1 << 20);
        for id in 0..10u64 {
            cache.insert(1, id, Arc::new(page(&[id])));
        }
        assert!(cache.pages_resident() > 0);
        cache.clear();
        assert_eq!(cache.pages_resident(), 0);
        assert_eq!(cache.bytes_resident(), 0);
    }

    #[test]
    fn concurrent_readers_smoke() {
        let (b, _inner) = cached(1 << 14, false);
        let ids: Vec<PageId> =
            (0..64u64).map(|k| b.write_page(&page(&[k, k + 1])).unwrap()).collect();
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                let ids = &ids;
                s.spawn(move || {
                    for round in 0..200usize {
                        let id = ids[(round * 7 + t * 13) % ids.len()];
                        assert_eq!(b.read_page(id).unwrap().len(), 2);
                    }
                });
            }
        });
        let snap = b.cache().snapshot();
        assert_eq!(snap.hits + snap.misses, 4 * 200);
    }
}
