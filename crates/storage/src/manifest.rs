//! The durable manifest: the tree's on-device state, crash-consistently.
//!
//! The write-ahead log only covers the *buffered* part of the tree; once a
//! flush moves entries onto the device and truncates the log, the only record
//! of which pages belong to which file, which files to which level, and what
//! the next file id / sequence number / clock watermark are, is in memory.
//! The manifest closes that hole: it is an append-only, checksummed edit log
//! (`<name>.manifest`) that the tree updates after every state transition —
//! flush, compaction, secondary page drop — and *before* the WAL is
//! truncated, so at every instant either the WAL or the manifest (or both,
//! overlapping harmlessly) covers every acknowledged write.
//!
//! ## File format
//!
//! ```text
//! file   := MAGIC (u64) record*
//! record := len (u32) · crc32(body) (u32) · body
//! body   := version (u8) · kind (u8) · payload
//! ```
//!
//! `kind` is either a **snapshot** (the full [`ManifestState`]) or a
//! **delta** (files added/updated/removed plus the new level structure and
//! counters). Recovery folds the records in order; a torn trailing record —
//! the normal result of a crash mid-append — is truncated away, recovering
//! the last fully-committed state. When the log grows past a threshold it is
//! rewritten as a single snapshot into a temporary file that is atomically
//! renamed over the old log (with a parent-directory fsync), so a crash
//! mid-rewrite leaves either the complete old log or the complete new one.

use crate::barrier;
use crate::checksum::crc32;
use crate::clock::Timestamp;
use crate::entry::{DeleteKey, Entry, SeqNum};
use crate::error::{Result, StorageError};
use crate::failpoint::FailPoint;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic number opening every manifest file.
const MANIFEST_MAGIC: u64 = 0x4C45_5448_454D_414E; // "LETHEMAN"

/// On-disk format version of manifest records. Version 2 added the
/// per-file delete-key bounds (`min_delete`/`max_delete`) to [`FileDesc`];
/// version-1 records are still decoded (with conservative full-domain
/// bounds, so secondary-scan pruning is merely disabled until recovery
/// re-derives the exact bounds), keeping pre-existing stores openable.
const MANIFEST_VERSION: u8 = 2;

/// Record kinds.
const KIND_SNAPSHOT: u8 = 0;
const KIND_DELTA: u8 = 1;

/// Appended edits after which the log is folded into a single snapshot.
const REWRITE_THRESHOLD: usize = 64;

/// Durable description of one on-device file (SSTable).
///
/// Everything not stored here is re-derived at recovery time by reading the
/// file's pages back: Bloom filters, fence pointers, delete fences and the
/// min/max key metadata all come from the page contents, so the manifest
/// stays small and cannot disagree with the data it describes.
#[derive(Debug, Clone, PartialEq)]
pub struct FileDesc {
    /// Unique file id assigned by the tree.
    pub id: u64,
    /// Logical time the file was created.
    pub created_at: Timestamp,
    /// Insertion time of the oldest tombstone in the file, if any — the
    /// input to FADE's tombstone age `a_max`, which must survive restarts
    /// for the delete-persistence guarantee to hold across them.
    pub oldest_tombstone_ts: Option<Timestamp>,
    /// Largest sequence number stored in the file.
    pub max_seqnum: SeqNum,
    /// Smallest delete key stored in the file (0 when the file holds no
    /// point entries). Together with `max_delete` these are the paper's
    /// file-granularity KiWi fences: secondary scans and deletes skip files
    /// whose delete-key bounds cannot intersect the queried range, and the
    /// bounds must survive restarts for that pruning to keep holding.
    pub min_delete: DeleteKey,
    /// Largest delete key stored in the file.
    pub max_delete: DeleteKey,
    /// Device page ids per delete tile, pages in delete-key order (the KiWi
    /// layout is positional, so order matters and is preserved verbatim).
    pub tiles: Vec<Vec<u64>>,
    /// The file's range-tombstone block. Range tombstones live outside the
    /// pages, so they must be persisted here or a restart would resurrect
    /// every key a flushed range delete covered.
    pub range_tombstones: Vec<Entry>,
}

/// The durable state of one tree, as recorded by its manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManifestState {
    /// Next file id the tree will assign.
    pub next_file_id: u64,
    /// Next sequence number the tree will assign.
    pub next_seqnum: SeqNum,
    /// Logical clock watermark at the time of the edit; the clock is
    /// advanced at least this far on recovery so tombstone ages and TTLs
    /// never move backwards.
    pub clock_micros: Timestamp,
    /// The level structure: `levels[l]` is a list of runs (newest first),
    /// each a list of files in key order. Descriptors are `Arc`-shared with
    /// the tree's in-memory tables, so committing an edit diffs unchanged
    /// files by pointer identity instead of deep comparison.
    pub levels: Vec<Vec<Vec<Arc<FileDesc>>>>,
}

impl ManifestState {
    /// Iterates over every file of the state.
    pub fn files(&self) -> impl Iterator<Item = &Arc<FileDesc>> {
        self.levels.iter().flatten().flatten()
    }

    /// `true` when the state describes an empty tree with virgin counters.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(|l| l.iter().all(|r| r.is_empty()))
            && self.next_file_id <= 1
            && self.next_seqnum <= 1
    }

    fn file_map(&self) -> BTreeMap<u64, &Arc<FileDesc>> {
        self.files().map(|f| (f.id, f)).collect()
    }

    fn structure(&self) -> Vec<Vec<Vec<u64>>> {
        self.levels
            .iter()
            .map(|l| l.iter().map(|r| r.iter().map(|f| f.id).collect()).collect())
            .collect()
    }
}

/// One recovered-or-committed edit, used internally when folding the log.
#[derive(Debug, Clone)]
enum ManifestRecord {
    /// Full state replacement.
    Snapshot(ManifestState),
    /// Incremental transition.
    Delta {
        /// Counters after the transition.
        next_file_id: u64,
        /// Next sequence number after the transition.
        next_seqnum: SeqNum,
        /// Clock watermark at commit time.
        clock_micros: Timestamp,
        /// File ids removed by the transition.
        removed: Vec<u64>,
        /// Files added or rewritten in place (same id, new contents — the
        /// result of a KiWi partial page drop).
        upserted: Vec<Arc<FileDesc>>,
        /// The authoritative level → run → file-id layout after the edit.
        structure: Vec<Vec<Vec<u64>>>,
    },
}

/// Handle to a `<name>.manifest` file: recovery on open, checksummed appends,
/// atomic rewrites.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    /// Append handle; `None` until the first commit creates the file (lazy
    /// creation lets "a manifest exists" double as "this store committed
    /// durable state", which the sharded front-end uses to detect partial
    /// stores).
    file: Option<File>,
    state: ManifestState,
    records_since_rewrite: usize,
    torn_records_recovered: u64,
    /// Durability barriers issued by this manifest (appends, rewrites,
    /// directory fsyncs, torn-tail truncations).
    fsyncs: AtomicU64,
    failpoint: FailPoint,
}

impl Manifest {
    /// Opens the manifest at `path`, folding its edit log into the recovered
    /// [`ManifestState`]. A missing file yields an empty state and is only
    /// created on the first [`Manifest::commit`]. A torn trailing record is
    /// truncated away; damage before the last valid record is an error.
    pub fn open(path: impl AsRef<Path>) -> Result<Manifest> {
        let path = path.as_ref().to_path_buf();
        let mut manifest = Manifest {
            path,
            file: None,
            state: ManifestState::default(),
            records_since_rewrite: 0,
            torn_records_recovered: 0,
            fsyncs: AtomicU64::new(0),
            failpoint: FailPoint::new(),
        };
        manifest.recover()?;
        Ok(manifest)
    }

    /// Attaches a crash-injection fail point consulted before every durable
    /// step of an append or rewrite (testing aid).
    pub fn set_failpoint(&mut self, fp: FailPoint) {
        self.failpoint = fp;
    }

    /// The last committed (or recovered) state.
    pub fn state(&self) -> &ManifestState {
        &self.state
    }

    /// `true` once the manifest file exists on disk (i.e. at least one
    /// commit has happened, now or in a previous process).
    pub fn exists(&self) -> bool {
        self.file.is_some() || self.path.exists()
    }

    /// Number of torn trailing records truncated away on open (0 after a
    /// clean shutdown, typically 1 after a crash mid-append).
    pub fn torn_records_recovered(&self) -> u64 {
        self.torn_records_recovered
    }

    /// Durability barriers (`fsync`/`fdatasync`) this manifest has issued.
    /// Folded into the engine's [`IoSnapshot::fsyncs`](crate::iostats::IoSnapshot::fsyncs)
    /// so manifest commits are charged like every other barrier.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    fn recover(&mut self) -> Result<()> {
        let mut data = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        }
        let total = data.len() as u64;
        let mut buf = Bytes::from(data);
        if buf.remaining() < 8 {
            // a manifest so torn not even the magic survived: treat the
            // whole file as a torn first record
            return self.truncate_tail(0, total);
        }
        if buf.get_u64() != MANIFEST_MAGIC {
            return Err(StorageError::Corruption(format!(
                "bad manifest magic in {:?}",
                self.path
            )));
        }
        let mut valid = 8u64;
        let mut records = 0usize;
        while buf.remaining() >= 8 {
            let len = {
                let mut peek = buf.clone();
                peek.get_u32() as usize
            };
            if buf.remaining() < 8 + len {
                break; // torn tail: the record promises more bytes than exist
            }
            buf.advance(4);
            let crc = buf.get_u32();
            let body = buf.copy_to_bytes(len);
            if crc32(&body) != crc {
                // A crash mid-append can only damage the *last* record (the
                // log is append-only). A CRC failure with more records
                // behind it is mid-log corruption of committed state —
                // truncating would silently roll the store back, so error.
                if buf.has_remaining() {
                    return Err(StorageError::Corruption(format!(
                        "manifest {:?}: record {records} failed its checksum with {} bytes of \
                         later records behind it (mid-log corruption, not a torn tail)",
                        self.path,
                        buf.remaining()
                    )));
                }
                break; // last record damaged mid-append: a torn tail
            }
            // a record that checksums but does not decode is real corruption
            let record = decode_record(body)?;
            self.apply(record);
            records += 1;
            valid += 8 + len as u64;
        }
        self.records_since_rewrite = records;
        if valid < total {
            self.truncate_tail(valid, total)?;
        }
        Ok(())
    }

    fn truncate_tail(&mut self, valid: u64, total: u64) -> Result<()> {
        if total > valid {
            let f = OpenOptions::new().write(true).open(&self.path)?;
            f.set_len(valid)?;
            barrier::sync_all_counted(&f, &self.fsyncs)?;
            self.torn_records_recovered += 1;
        }
        Ok(())
    }

    fn apply(&mut self, record: ManifestRecord) {
        match record {
            ManifestRecord::Snapshot(state) => self.state = state,
            ManifestRecord::Delta {
                next_file_id,
                next_seqnum,
                clock_micros,
                removed,
                upserted,
                structure,
            } => {
                let mut files: BTreeMap<u64, Arc<FileDesc>> =
                    self.state.files().map(|f| (f.id, Arc::clone(f))).collect();
                for id in removed {
                    files.remove(&id);
                }
                for f in upserted {
                    files.insert(f.id, f);
                }
                let levels = structure
                    .into_iter()
                    .map(|level| {
                        level
                            .into_iter()
                            .map(|run| {
                                run.into_iter().filter_map(|id| files.get(&id).cloned()).collect()
                            })
                            .collect()
                    })
                    .collect();
                self.state = ManifestState {
                    next_file_id,
                    next_seqnum,
                    clock_micros,
                    levels,
                };
            }
        }
    }

    /// Commits `new_state` durably: computes the delta against the last
    /// committed state, appends it (fsync'd), and folds the log into a fresh
    /// snapshot — via write-to-temporary + atomic rename — once it has grown
    /// past the rewrite threshold. On success the WAL records covered by
    /// this state may be dropped; on error nothing durable has changed.
    pub fn commit(&mut self, new_state: ManifestState) -> Result<()> {
        if self.file.is_some() && new_state == self.state {
            return Ok(());
        }
        if self.file.is_none() || self.records_since_rewrite >= REWRITE_THRESHOLD {
            return self.rewrite(new_state);
        }
        let old = self.state.file_map();
        let new = new_state.file_map();
        let removed: Vec<u64> = old.keys().filter(|id| !new.contains_key(id)).copied().collect();
        // pointer identity first: descriptors are shared with the tree's
        // tables, so an unchanged file is recognised without a deep compare
        let upserted: Vec<Arc<FileDesc>> = new
            .values()
            .filter(|f| {
                old.get(&f.id).is_none_or(|prev| !Arc::ptr_eq(prev, f) && **prev != ***f)
            })
            .map(|f| Arc::clone(f))
            .collect();
        let record = ManifestRecord::Delta {
            next_file_id: new_state.next_file_id,
            next_seqnum: new_state.next_seqnum,
            clock_micros: new_state.clock_micros,
            removed,
            upserted,
            structure: new_state.structure(),
        };
        self.failpoint.check("manifest.append")?;
        let body = encode_record(&record);
        let mut framed = BytesMut::with_capacity(body.len() + 8);
        framed.put_u32(body.len() as u32);
        framed.put_u32(crc32(&body));
        framed.extend_from_slice(&body);
        // lint:allow(no-panic): the branch above rewrites (and creates the file) when None
        let file = self.file.as_mut().expect("append handle exists past the rewrite branch");
        file.write_all(&framed)?;
        barrier::sync_data_counted(file, &self.fsyncs)?;
        self.records_since_rewrite += 1;
        self.state = new_state;
        Ok(())
    }

    /// Rewrites the manifest as a single snapshot of `state`, atomically.
    pub fn rewrite(&mut self, state: ManifestState) -> Result<()> {
        self.failpoint.check("manifest.rewrite.begin")?;
        let tmp = self.path.with_extension("manifest.tmp");
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            let mut out = BytesMut::new();
            out.put_u64(MANIFEST_MAGIC);
            let body = encode_record(&ManifestRecord::Snapshot(state.clone()));
            out.put_u32(body.len() as u32);
            out.put_u32(crc32(&body));
            out.extend_from_slice(&body);
            f.write_all(&out)?;
            barrier::sync_all_counted(&f, &self.fsyncs)?;
        }
        self.failpoint.check("manifest.rewrite.rename")?;
        std::fs::rename(&tmp, &self.path)?;
        barrier::fsync_dir_counted(&self.path, &self.fsyncs)?;
        self.file = Some(OpenOptions::new().append(true).open(&self.path)?);
        self.records_since_rewrite = 1;
        self.state = state;
        Ok(())
    }
}

// --------------------------------------------------------------- codecs

fn encode_record(record: &ManifestRecord) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(MANIFEST_VERSION);
    match record {
        ManifestRecord::Snapshot(state) => {
            buf.put_u8(KIND_SNAPSHOT);
            buf.put_u64(state.next_file_id);
            buf.put_u64(state.next_seqnum);
            buf.put_u64(state.clock_micros);
            let files: Vec<&Arc<FileDesc>> = state.files().collect();
            buf.put_u32(files.len() as u32);
            for f in files {
                encode_file(f, &mut buf);
            }
            encode_structure(&state.structure(), &mut buf);
        }
        ManifestRecord::Delta {
            next_file_id,
            next_seqnum,
            clock_micros,
            removed,
            upserted,
            structure,
        } => {
            buf.put_u8(KIND_DELTA);
            buf.put_u64(*next_file_id);
            buf.put_u64(*next_seqnum);
            buf.put_u64(*clock_micros);
            buf.put_u32(removed.len() as u32);
            for id in removed {
                buf.put_u64(*id);
            }
            buf.put_u32(upserted.len() as u32);
            for f in upserted {
                encode_file(f, &mut buf);
            }
            encode_structure(structure, &mut buf);
        }
    }
    buf.freeze()
}

fn decode_record(mut body: Bytes) -> Result<ManifestRecord> {
    if body.remaining() < 2 {
        return Err(StorageError::Corruption("manifest record truncated".into()));
    }
    let version = body.get_u8();
    if version == 0 || version > MANIFEST_VERSION {
        return Err(StorageError::Corruption(format!("unknown manifest version {version}")));
    }
    let kind = body.get_u8();
    if body.remaining() < 24 {
        return Err(StorageError::Corruption("manifest counters truncated".into()));
    }
    let next_file_id = body.get_u64();
    let next_seqnum = body.get_u64();
    let clock_micros = body.get_u64();
    match kind {
        KIND_SNAPSHOT => {
            let n = read_u32(&mut body)? as usize;
            let mut files = BTreeMap::new();
            for _ in 0..n {
                let f = Arc::new(decode_file(&mut body, version)?);
                files.insert(f.id, f);
            }
            let structure = decode_structure(&mut body)?;
            let levels = structure
                .into_iter()
                .map(|level| {
                    level
                        .into_iter()
                        .map(|run| {
                            run.into_iter().filter_map(|id| files.get(&id).cloned()).collect()
                        })
                        .collect()
                })
                .collect();
            Ok(ManifestRecord::Snapshot(ManifestState {
                next_file_id,
                next_seqnum,
                clock_micros,
                levels,
            }))
        }
        KIND_DELTA => {
            let n_removed = read_u32(&mut body)? as usize;
            let mut removed = Vec::with_capacity(n_removed);
            for _ in 0..n_removed {
                removed.push(read_u64(&mut body)?);
            }
            let n_upserted = read_u32(&mut body)? as usize;
            let mut upserted = Vec::with_capacity(n_upserted);
            for _ in 0..n_upserted {
                upserted.push(Arc::new(decode_file(&mut body, version)?));
            }
            let structure = decode_structure(&mut body)?;
            Ok(ManifestRecord::Delta {
                next_file_id,
                next_seqnum,
                clock_micros,
                removed,
                upserted,
                structure,
            })
        }
        k => Err(StorageError::Corruption(format!("unknown manifest record kind {k}"))),
    }
}

fn encode_file(f: &FileDesc, buf: &mut BytesMut) {
    buf.put_u64(f.id);
    buf.put_u64(f.created_at);
    match f.oldest_tombstone_ts {
        Some(ts) => {
            buf.put_u8(1);
            buf.put_u64(ts);
        }
        None => buf.put_u8(0),
    }
    buf.put_u64(f.max_seqnum);
    buf.put_u64(f.min_delete);
    buf.put_u64(f.max_delete);
    buf.put_u32(f.tiles.len() as u32);
    for tile in &f.tiles {
        buf.put_u32(tile.len() as u32);
        for &pid in tile {
            buf.put_u64(pid);
        }
    }
    buf.put_u32(f.range_tombstones.len() as u32);
    for rt in &f.range_tombstones {
        rt.encode_into(buf);
    }
}

fn decode_file(body: &mut Bytes, version: u8) -> Result<FileDesc> {
    let id = read_u64(body)?;
    let created_at = read_u64(body)?;
    let oldest_tombstone_ts = match read_u8(body)? {
        0 => None,
        1 => Some(read_u64(body)?),
        t => {
            return Err(StorageError::Corruption(format!("bad oldest-tombstone tag {t}")));
        }
    };
    let max_seqnum = read_u64(body)?;
    // v1 records predate the per-file delete-key bounds; decode them with
    // the conservative full-domain bounds (pruning never fires, so scans
    // stay exact) — recovery re-derives the exact bounds from page
    // contents, and the next manifest edit persists them as v2
    let (min_delete, max_delete) = if version >= 2 {
        (read_u64(body)?, read_u64(body)?)
    } else {
        (0, DeleteKey::MAX)
    };
    let n_tiles = read_u32(body)? as usize;
    let mut tiles = Vec::with_capacity(n_tiles);
    for _ in 0..n_tiles {
        let n_pages = read_u32(body)? as usize;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(read_u64(body)?);
        }
        tiles.push(pages);
    }
    let n_rts = read_u32(body)? as usize;
    let mut range_tombstones = Vec::with_capacity(n_rts);
    for _ in 0..n_rts {
        range_tombstones.push(Entry::decode_from(body)?);
    }
    Ok(FileDesc {
        id,
        created_at,
        oldest_tombstone_ts,
        max_seqnum,
        min_delete,
        max_delete,
        tiles,
        range_tombstones,
    })
}

fn encode_structure(structure: &[Vec<Vec<u64>>], buf: &mut BytesMut) {
    buf.put_u32(structure.len() as u32);
    for level in structure {
        buf.put_u32(level.len() as u32);
        for run in level {
            buf.put_u32(run.len() as u32);
            for &id in run {
                buf.put_u64(id);
            }
        }
    }
}

fn decode_structure(body: &mut Bytes) -> Result<Vec<Vec<Vec<u64>>>> {
    let n_levels = read_u32(body)? as usize;
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let n_runs = read_u32(body)? as usize;
        let mut runs = Vec::with_capacity(n_runs);
        for _ in 0..n_runs {
            let n_files = read_u32(body)? as usize;
            let mut ids = Vec::with_capacity(n_files);
            for _ in 0..n_files {
                ids.push(read_u64(body)?);
            }
            runs.push(ids);
        }
        levels.push(runs);
    }
    Ok(levels)
}

fn read_u8(body: &mut Bytes) -> Result<u8> {
    if body.remaining() < 1 {
        return Err(StorageError::Corruption("manifest body truncated".into()));
    }
    Ok(body.get_u8())
}

fn read_u32(body: &mut Bytes) -> Result<u32> {
    if body.remaining() < 4 {
        return Err(StorageError::Corruption("manifest body truncated".into()));
    }
    Ok(body.get_u32())
}

fn read_u64(body: &mut Bytes) -> Result<u64> {
    if body.remaining() < 8 {
        return Err(StorageError::Corruption("manifest body truncated".into()));
    }
    Ok(body.get_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lethe-manifest-{tag}-{}.manifest", std::process::id()))
    }

    /// Version-1 records (no per-file delete-key bounds) must keep
    /// decoding: old stores stay openable, with the conservative
    /// full-domain bounds that disable pruning but never exclude a file.
    #[test]
    fn decodes_version_1_records_with_conservative_delete_bounds() {
        // hand-build a v1 delta body: one file, one tile of two pages
        let mut body = BytesMut::new();
        body.put_u8(1); // version 1
        body.put_u8(KIND_DELTA);
        body.put_u64(9); // next_file_id
        body.put_u64(90); // next_seqnum
        body.put_u64(900); // clock
        body.put_u32(0); // removed
        body.put_u32(1); // upserted
        body.put_u64(7); // file id
        body.put_u64(107); // created_at
        body.put_u8(0); // no oldest tombstone
        body.put_u64(70); // max_seqnum
        // v1 layout continues straight into the tiles
        body.put_u32(1);
        body.put_u32(2);
        body.put_u64(41);
        body.put_u64(42);
        body.put_u32(0); // range tombstones
        // structure: one level, one run, the one file
        body.put_u32(1);
        body.put_u32(1);
        body.put_u32(1);
        body.put_u64(7);
        let record = decode_record(body.freeze()).expect("v1 record must decode");
        match record {
            ManifestRecord::Delta { upserted, .. } => {
                assert_eq!(upserted.len(), 1);
                let f = &upserted[0];
                assert_eq!(f.id, 7);
                assert_eq!(f.tiles, vec![vec![41, 42]]);
                assert_eq!((f.min_delete, f.max_delete), (0, u64::MAX));
            }
            other => panic!("expected a delta, got {other:?}"),
        }
        // future versions stay rejected
        let mut bad = BytesMut::new();
        bad.put_u8(MANIFEST_VERSION + 1);
        bad.put_u8(KIND_DELTA);
        bad.put_u64(0);
        bad.put_u64(0);
        bad.put_u64(0);
        assert!(decode_record(bad.freeze()).is_err());
    }

    fn file_desc(id: u64, pages: &[u64]) -> FileDesc {
        FileDesc {
            id,
            created_at: 100 + id,
            oldest_tombstone_ts: if id.is_multiple_of(2) { Some(id) } else { None },
            max_seqnum: id * 10,
            min_delete: id,
            max_delete: id * 7 + 3,
            tiles: vec![pages.to_vec()],
            range_tombstones: if id.is_multiple_of(3) {
                vec![Entry::range_tombstone(id, id + 5, id)]
            } else {
                vec![]
            },
        }
    }

    fn state(files_per_level: &[&[u64]], next_file_id: u64) -> ManifestState {
        ManifestState {
            next_file_id,
            next_seqnum: next_file_id * 100,
            clock_micros: next_file_id * 1000,
            levels: files_per_level
                .iter()
                .map(|ids| {
                    vec![ids
                        .iter()
                        .map(|&id| Arc::new(file_desc(id, &[id * 2, id * 2 + 1])))
                        .collect()]
                })
                .collect(),
        }
    }

    #[test]
    fn missing_manifest_recovers_empty_and_is_lazy() {
        let path = tmp_path("lazy");
        let _ = std::fs::remove_file(&path);
        let m = Manifest::open(&path).unwrap();
        assert!(m.state().is_empty());
        assert!(!m.exists(), "open alone must not create the file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn commit_and_reopen_roundtrips_state() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let s1 = state(&[&[1, 2]], 3);
        let s2 = state(&[&[1, 2], &[3, 4, 5]], 6);
        {
            let mut m = Manifest::open(&path).unwrap();
            m.commit(s1.clone()).unwrap();
            assert!(m.exists());
            m.commit(s2.clone()).unwrap();
        }
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.state(), &s2);
        assert_eq!(m.torn_records_recovered(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deltas_handle_removed_updated_and_added_files() {
        let path = tmp_path("delta");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::open(&path).unwrap();
        m.commit(state(&[&[1, 2, 3]], 4)).unwrap();
        // remove 1, keep 2, rewrite 3 in place (same id, new pages), add 4
        let mut s = state(&[&[2, 3, 4]], 5);
        Arc::make_mut(&mut s.levels[0][0][1]).tiles = vec![vec![99, 98]]; // file 3 rewritten
        m.commit(s.clone()).unwrap();
        drop(m);
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.state(), &s);
        let ids: Vec<u64> = m.state().files().map(|f| f.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(
            m.state().files().find(|f| f.id == 3).unwrap().tiles,
            vec![vec![99, 98]]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_recovers_previous_commit() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        let s1 = state(&[&[1]], 2);
        {
            let mut m = Manifest::open(&path).unwrap();
            m.commit(s1.clone()).unwrap();
            m.commit(state(&[&[1, 2]], 3)).unwrap();
        }
        // chop the last record in half: a crash mid-append
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.state(), &s1, "must fall back to the last intact record");
        assert_eq!(m.torn_records_recovered(), 1);
        // and the torn bytes are gone
        drop(m);
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.torn_records_recovered(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_committed_record_is_an_error() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::open(&path).unwrap();
            m.commit(state(&[&[1]], 2)).unwrap();
            m.commit(state(&[&[1, 2]], 3)).unwrap();
        }
        // flip a byte inside the FIRST record's body (not the tail)
        let mut data = std::fs::read(&path).unwrap();
        data[14] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        // a CRC failure with committed records *behind* it cannot be a torn
        // tail (the log is append-only): recovery must refuse to silently
        // roll the store back, and must not touch the file
        let before = std::fs::read(&path).unwrap();
        assert!(matches!(Manifest::open(&path), Err(StorageError::Corruption(_))));
        assert_eq!(std::fs::read(&path).unwrap(), before, "open must not modify a corrupt log");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc_failure_on_last_record_is_a_torn_tail() {
        let path = tmp_path("lastcrc");
        let _ = std::fs::remove_file(&path);
        let s1 = state(&[&[1]], 2);
        {
            let mut m = Manifest::open(&path).unwrap();
            m.commit(s1.clone()).unwrap();
            m.commit(state(&[&[1, 2]], 3)).unwrap();
        }
        // damage the LAST record's body: indistinguishable from a crash
        // mid-append, so recovery falls back to the previous commit
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.state(), &s1);
        assert_eq!(m.torn_records_recovered(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn log_folds_into_snapshot_past_threshold() {
        let path = tmp_path("fold");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::open(&path).unwrap();
        for i in 0..(REWRITE_THRESHOLD as u64 + 8) {
            m.commit(state(&[&[1]], i + 2)).unwrap();
        }
        let size_after = std::fs::metadata(&path).unwrap().len();
        // a folded log is one snapshot plus at most a handful of deltas
        assert!(m.records_since_rewrite < REWRITE_THRESHOLD);
        assert!(size_after < 16 * 1024, "log must not grow without bound: {size_after}");
        let reopened = Manifest::open(&path).unwrap();
        assert_eq!(reopened.state(), m.state());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failpoint_aborts_commit_without_durable_change() {
        let path = tmp_path("fp");
        let _ = std::fs::remove_file(&path);
        let fp = FailPoint::new();
        let mut m = Manifest::open(&path).unwrap();
        m.set_failpoint(fp.clone());
        let s1 = state(&[&[1]], 2);
        m.commit(s1.clone()).unwrap();
        // kill the next delta append
        fp.arm(0);
        assert!(matches!(m.commit(state(&[&[1, 2]], 3)), Err(StorageError::Injected)));
        drop(m);
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.state(), &s1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failpoint_mid_rewrite_keeps_old_or_new_state() {
        // kill the rewrite at each of its two durable steps: before the tmp
        // file is written and between tmp write and rename
        for kill_at in [0u64, 1] {
            let path = tmp_path(&format!("fpr{kill_at}"));
            let _ = std::fs::remove_file(&path);
            let fp = FailPoint::new();
            let mut m = Manifest::open(&path).unwrap();
            m.set_failpoint(fp.clone());
            let mut last_good = ManifestState::default();
            let mut i = 0u64;
            // drive commits until one lands on the rewrite path and dies
            let crashed = loop {
                i += 1;
                let s = state(&[&[1]], i + 1);
                if m.records_since_rewrite >= REWRITE_THRESHOLD {
                    fp.arm(kill_at);
                }
                match m.commit(s.clone()) {
                    Ok(()) => last_good = s,
                    Err(StorageError::Injected) => break true,
                    Err(e) => panic!("unexpected error: {e}"),
                }
                if i > 3 * REWRITE_THRESHOLD as u64 {
                    break false;
                }
            };
            assert!(crashed, "rewrite kill point was never reached");
            let m = Manifest::open(&path).unwrap();
            assert_eq!(m.state(), &last_good, "kill_at={kill_at}");
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(path.with_extension("manifest.tmp"));
        }
    }
}
