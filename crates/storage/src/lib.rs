//! # lethe-storage
//!
//! Storage substrate for the Lethe LSM engine reproduction
//! (*Lethe: A Tunable Delete-Aware LSM Engine*, SIGMOD 2020).
//!
//! This crate contains everything below the LSM tree itself:
//!
//! * [`entry`] — the record model: sort key `S`, delete key `D`, sequence
//!   numbers, puts, point tombstones and range tombstones, and the tombstone
//!   size ratio λ.
//! * [`page`] — immutable disk pages (entries sorted on `S`), the unit of I/O.
//! * [`bloom`] — per-page Bloom filters over `S`.
//! * [`fence`] — fence pointers on `S` and *delete fence pointers* on `D`,
//!   the metadata that makes KiWi's full page drops possible.
//! * [`backend`] — the page-granular device abstraction: a simulated SSD with
//!   exact I/O accounting and a durable file-backed device with lock-free
//!   positional reads.
//! * [`cache`] — the sharded, size-charged CLOCK block cache of decoded
//!   pages ([`PageCache`]) and the [`CachedBackend`] device wrapper that
//!   serves hits without touching the device.
//! * [`iostats`] — I/O / hash counters plus the latency cost model (100 µs per
//!   page access, 80 ns per hash) used to reproduce the paper's figures.
//! * [`memtable`] — the in-memory write buffer with in-place delete/update
//!   semantics.
//! * [`wal`] — write-ahead logging with the `D_th`-aware purge routine,
//!   torn-tail recovery, the [`SyncPolicy`] durability knob and the
//!   group-commit staging primitives (`append_nosync` + `commit`).
//! * [`batchlog`] — the durable commit point for cross-shard write batches
//!   (two-phase commit over the per-shard WALs).
//! * [`manifest`] — the durable, checksummed manifest recording the tree's
//!   on-device state (levels, files, page ids) so a reopened store recovers
//!   flushed data, not just the WAL tail.
//! * [`barrier`] — the counted durability barriers every fsync goes
//!   through, so [`IoSnapshot::fsyncs`](iostats::IoSnapshot::fsyncs) is
//!   exact (enforced by the repo lint).
//! * [`checkpoint`] — the checksummed completeness marker that makes an
//!   online checkpoint's commit point explicit (a torn checkpoint is
//!   detectably incomplete, never silently short).
//! * [`checksum`] — CRC-32 for on-disk structures.
//! * [`failpoint`] — deterministic crash injection for recovery tests.
//! * [`histogram`] — equi-width histograms used to estimate how many entries a
//!   range tombstone invalidates.
//! * [`clock`] — the logical clock that drives TTLs and tombstone ages.

#![forbid(unsafe_code)]

pub mod backend;
pub mod barrier;
pub mod batchlog;
pub mod bloom;
pub mod cache;
pub mod checkpoint;
pub mod checksum;
pub mod clock;
pub mod entry;
pub mod error;
pub mod failpoint;
pub mod fence;
pub mod histogram;
pub mod iostats;
pub mod manifest;
pub mod memtable;
pub mod page;
pub mod wal;

pub use backend::{FileBackend, InMemoryBackend, PageId, StorageBackend};
pub use batchlog::BatchCommitLog;
pub use bloom::BloomFilter;
pub use cache::{CacheSnapshot, CachedBackend, PageCache};
pub use checkpoint::{read_marker, write_marker, CheckpointMarker, CHECKPOINT_MARKER};
pub use checksum::crc32;
pub use clock::{LogicalClock, Timestamp, MICROS_PER_SEC};
pub use entry::{DeleteKey, Entry, EntryKind, SeqNum, SortKey};
pub use error::{Result, StorageError};
pub use failpoint::FailPoint;
pub use fence::{DeleteFence, DeleteFences, FencePointers, PageCoverage};
pub use histogram::Histogram;
pub use iostats::{CostModel, IoSnapshot, IoStats};
pub use manifest::{FileDesc, Manifest, ManifestState};
pub use memtable::MemTable;
pub use page::Page;
pub use wal::{BatchOp, FileWal, MemWal, SyncPolicy, Wal, WalRecord};
