//! The in-memory write buffer (Level 0).
//!
//! Inserts, updates and deletes are buffered here. Following the paper's
//! semantics (§2 "Buffering Inserts and Updates"): a delete or update to a
//! key that is still in the buffer replaces the older buffered entry
//! *in place*; otherwise the tombstone/new version is retained to invalidate
//! any older on-disk instances once flushed. Range tombstones are kept in a
//! separate list (they cover intervals, not single keys), mirroring the
//! separate range-tombstone block of real engines.

use crate::entry::{DeleteKey, Entry, EntryKind, SeqNum, SortKey};
use bytes::Bytes;
use std::collections::BTreeMap;

/// The mutable, sorted in-memory buffer.
#[derive(Debug, Default)]
pub struct MemTable {
    /// Point entries (puts and point tombstones), one per sort key — newer
    /// writes replace older buffered ones in place.
    entries: BTreeMap<SortKey, Entry>,
    /// Buffered range tombstones, in insertion order.
    range_tombstones: Vec<Entry>,
    /// Approximate buffered data size in bytes.
    size_bytes: usize,
}

impl MemTable {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers a put of `(sort_key, delete_key, value)`.
    pub fn put(&mut self, sort_key: SortKey, delete_key: DeleteKey, seqnum: SeqNum, value: Bytes) {
        self.insert_point(Entry::put(sort_key, delete_key, seqnum, value));
    }

    /// Buffers a point tombstone for `sort_key`.
    pub fn delete(&mut self, sort_key: SortKey, seqnum: SeqNum) {
        self.insert_point(Entry::point_tombstone(sort_key, seqnum));
    }

    /// Buffers a range tombstone covering sort keys `[start, end)`.
    pub fn delete_range(&mut self, start: SortKey, end: SortKey, seqnum: SeqNum) {
        let t = Entry::range_tombstone(start, end, seqnum);
        self.size_bytes += t.encoded_size();
        self.range_tombstones.push(t);
    }

    fn insert_point(&mut self, entry: Entry) {
        debug_assert!(!entry.is_range_tombstone());
        self.size_bytes += entry.encoded_size();
        if let Some(old) = self.entries.insert(entry.sort_key, entry) {
            // replaced in place: the old version no longer occupies space
            self.size_bytes = self.size_bytes.saturating_sub(old.encoded_size());
        }
    }

    /// Looks up the most recent buffered state of `sort_key`, taking buffered
    /// range tombstones into account. Returns `None` if the key was never
    /// buffered; returns a tombstone entry if the buffered state is a delete.
    pub fn get(&self, sort_key: SortKey) -> Option<Entry> {
        let point = self.entries.get(&sort_key).cloned();
        let covering_rt = self
            .range_tombstones
            .iter()
            .filter(|t| t.covers(sort_key))
            .max_by_key(|t| t.seqnum);
        Entry::resolve_point_read(sort_key, point, covering_rt)
    }

    /// Returns buffered point entries whose sort key lies in `[lo, hi)`
    /// (range tombstones are not expanded here; callers merge them).
    pub fn range(&self, lo: SortKey, hi: SortKey) -> Vec<Entry> {
        self.entries.range(lo..hi).map(|(_, e)| e.clone()).collect()
    }

    /// Buffered range tombstones.
    pub fn range_tombstones(&self) -> &[Entry] {
        &self.range_tombstones
    }

    /// Approximate buffered size in bytes (used to decide when to flush).
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Number of buffered point entries (puts + point tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing (not even a range tombstone) is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.range_tombstones.is_empty()
    }

    /// Number of buffered tombstones (point + range).
    pub fn tombstone_count(&self) -> usize {
        self.entries.values().filter(|e| e.is_tombstone()).count() + self.range_tombstones.len()
    }

    /// Drains the buffer into a sorted run: point entries sorted on the sort
    /// key followed by the range tombstones (returned separately). The buffer
    /// is left empty.
    pub fn drain_sorted(&mut self) -> (Vec<Entry>, Vec<Entry>) {
        let entries: Vec<Entry> = std::mem::take(&mut self.entries).into_values().collect();
        let rts = std::mem::take(&mut self.range_tombstones);
        self.size_bytes = 0;
        (entries, rts)
    }

    /// Iterates over buffered point entries in sort-key order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Returns `true` if the buffered state of `sort_key` is a live put
    /// (useful for blind-delete avoidance before consulting filters).
    pub fn contains_live(&self, sort_key: SortKey) -> bool {
        matches!(self.get(sort_key), Some(e) if e.kind == EntryKind::Put)
    }

    /// Removes every buffered put whose **delete key** lies in `[lo, hi)`
    /// (the in-memory portion of a secondary range delete). Tombstones are
    /// never removed. Returns the number of entries purged.
    pub fn purge_by_delete_key(&mut self, lo: DeleteKey, hi: DeleteKey) -> usize {
        let victims: Vec<SortKey> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.is_tombstone() && e.delete_key >= lo && e.delete_key < hi)
            .map(|(&k, _)| k)
            .collect();
        for k in &victims {
            if let Some(old) = self.entries.remove(k) {
                self.size_bytes = self.size_bytes.saturating_sub(old.encoded_size());
            }
        }
        victims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get() {
        let mut m = MemTable::new();
        m.put(1, 10, 1, Bytes::from_static(b"a"));
        m.put(2, 20, 2, Bytes::from_static(b"b"));
        assert_eq!(m.get(1).unwrap().value, Bytes::from_static(b"a"));
        assert_eq!(m.get(2).unwrap().delete_key, 20);
        assert!(m.get(3).is_none());
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn update_replaces_in_place_and_tracks_size() {
        let mut m = MemTable::new();
        m.put(1, 0, 1, Bytes::from(vec![0u8; 100]));
        let s1 = m.size_bytes();
        m.put(1, 0, 2, Bytes::from(vec![0u8; 10]));
        let s2 = m.size_bytes();
        assert_eq!(m.len(), 1);
        assert!(s2 < s1, "smaller value should shrink the buffer: {s2} vs {s1}");
        assert_eq!(m.get(1).unwrap().seqnum, 2);
    }

    #[test]
    fn delete_replaces_buffered_put_in_place() {
        let mut m = MemTable::new();
        m.put(7, 0, 1, Bytes::from_static(b"v"));
        m.delete(7, 2);
        assert_eq!(m.len(), 1);
        let e = m.get(7).unwrap();
        assert!(e.is_point_tombstone());
        assert!(!m.contains_live(7));
    }

    #[test]
    fn range_tombstone_shadows_older_puts_only() {
        let mut m = MemTable::new();
        m.put(5, 0, 1, Bytes::from_static(b"old"));
        m.delete_range(0, 10, 2);
        m.put(6, 0, 3, Bytes::from_static(b"new"));
        // key 5: covered by the newer range tombstone
        assert!(m.get(5).unwrap().is_tombstone());
        // key 6: written after the range tombstone, still live
        assert_eq!(m.get(6).unwrap().value, Bytes::from_static(b"new"));
        // key 9: never written, but covered → reported as tombstone
        assert!(m.get(9).unwrap().is_tombstone());
        // key 20: outside the range and never written
        assert!(m.get(20).is_none());
        assert_eq!(m.tombstone_count(), 1);
    }

    #[test]
    fn range_query_returns_sorted_points() {
        let mut m = MemTable::new();
        for k in [5u64, 1, 9, 3] {
            m.put(k, 0, k, Bytes::from_static(b"x"));
        }
        let r = m.range(2, 9);
        let keys: Vec<u64> = r.iter().map(|e| e.sort_key).collect();
        assert_eq!(keys, vec![3, 5]);
    }

    #[test]
    fn purge_by_delete_key_removes_only_qualifying_puts() {
        let mut m = MemTable::new();
        m.put(1, 10, 1, Bytes::from_static(b"a"));
        m.put(2, 50, 2, Bytes::from_static(b"b"));
        m.put(3, 90, 3, Bytes::from_static(b"c"));
        m.delete(4, 4);
        let purged = m.purge_by_delete_key(40, 100);
        assert_eq!(purged, 2);
        assert!(m.get(1).is_some());
        assert!(m.get(2).is_none());
        assert!(m.get(3).is_none());
        // the tombstone survives even though its delete key (0) is arbitrary
        assert!(m.get(4).unwrap().is_tombstone());
        assert_eq!(m.purge_by_delete_key(0, 5), 0);
    }

    #[test]
    fn drain_empties_buffer_and_sorts() {
        let mut m = MemTable::new();
        m.put(3, 0, 1, Bytes::from_static(b"c"));
        m.put(1, 0, 2, Bytes::from_static(b"a"));
        m.delete_range(10, 20, 3);
        let (pts, rts) = m.drain_sorted();
        assert_eq!(pts.iter().map(|e| e.sort_key).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(rts.len(), 1);
        assert!(m.is_empty());
        assert_eq!(m.size_bytes(), 0);
    }
}
