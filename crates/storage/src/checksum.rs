//! CRC-32 checksums for on-disk structures.
//!
//! The durable artifacts of the engine — the manifest's edit records and the
//! page frames of the file-backed device — each carry a CRC so that recovery
//! can distinguish a torn tail (the normal result of a crash mid-append,
//! recoverable by truncating to the last valid prefix) from silent
//! corruption of committed data (an error). The polynomial is the standard
//! reflected CRC-32 (IEEE 802.3, the one used by zlib), implemented with a
//! small table so the crate stays dependency-free.

/// Lazily built 256-entry lookup table for the reflected polynomial
/// `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
