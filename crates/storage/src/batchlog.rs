//! The batch-commit log: the commit point for cross-shard write batches.
//!
//! A cross-shard [`WriteBatch`](crate::wal::WalRecord::Batch) is a two-phase
//! commit. **Prepare**: every involved shard durably logs its slice of the
//! batch as a `WalRecord::Batch { id: Some(id), .. }` frame in its own WAL.
//! **Commit**: the coordinator appends `id` to this store-wide log and
//! fsyncs — that single fsync is the commit point. Recovery replays a
//! prepared slice only when its id appears here; a crash between prepare and
//! commit therefore rolls the whole batch back on every shard, never leaving
//! it half-applied.
//!
//! The file is a sequence of fixed 12-byte records (`u64` id + CRC-32 of the
//! id bytes). Like the WAL, a torn or checksum-invalid tail is the expected
//! end state after a crash mid-commit (the batch simply did not commit) and
//! is truncated away; damage before the last valid record is corruption.

use crate::barrier;
use crate::checksum::crc32;
use crate::error::{Result, StorageError};
use crate::failpoint::FailPoint;
use lethe_sync::{LockRank, Mutex};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Size of one committed-id record on disk: `u64` id + `u32` CRC.
const RECORD_LEN: usize = 12;

/// Durable append-only set of committed cross-shard batch ids.
#[derive(Debug)]
pub struct BatchCommitLog {
    path: PathBuf,
    file: Mutex<File>,
    ids: Mutex<HashSet<u64>>,
    next_id: AtomicU64,
    fsyncs: AtomicU64,
    failpoint: FailPoint,
}

impl BatchCommitLog {
    /// Opens (or creates) the commit log at `path`, loading the committed-id
    /// set and truncating any torn tail left by a crash mid-commit.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let log = BatchCommitLog {
            path,
            file: Mutex::new(LockRank::BatchLogFile, file),
            ids: Mutex::new(LockRank::BatchLogIds, HashSet::new()),
            next_id: AtomicU64::new(1),
            fsyncs: AtomicU64::new(0),
            failpoint: FailPoint::new(),
        };
        log.load()?;
        Ok(log)
    }

    /// Attaches a crash-injection fail point consulted before the append and
    /// before the commit fsync (testing aid).
    pub fn with_failpoint(mut self, fp: FailPoint) -> Self {
        self.failpoint = fp;
        self
    }

    fn load(&self) -> Result<()> {
        let guard = self.file.lock();
        let mut data = Vec::new();
        {
            let mut f = OpenOptions::new().read(true).open(&self.path)?;
            f.read_to_end(&mut data)?;
        }
        let mut ids = HashSet::new();
        let mut valid = 0usize;
        let mut max_id = 0u64;
        while data.len() - valid >= RECORD_LEN {
            let rec = &data[valid..valid + RECORD_LEN];
            // lint:allow(no-panic): fixed-width subslice of a 12-byte record, infallible
            let id = u64::from_be_bytes(rec[..8].try_into().unwrap());
            // lint:allow(no-panic): fixed-width subslice of a 12-byte record, infallible
            let crc = u32::from_be_bytes(rec[8..].try_into().unwrap());
            if crc != crc32(&rec[..8]) {
                // a torn append can only damage the very tail of the file;
                // a bad record with valid records after it is real damage,
                // and truncating there would silently roll back the
                // committed ids that follow
                let followed_by_valid =
                    data[valid + RECORD_LEN..].chunks_exact(RECORD_LEN).any(|r| {
                        // lint:allow(no-panic): chunks_exact yields 12-byte slices, infallible
                        u32::from_be_bytes(r[8..].try_into().unwrap()) == crc32(&r[..8])
                    });
                if followed_by_valid {
                    return Err(StorageError::Corruption(format!(
                        "batch commit log {:?}: invalid record at offset {valid} precedes \
                         valid records",
                        self.path
                    )));
                }
                // a half-written tail record: the commit never happened
                break;
            }
            ids.insert(id);
            max_id = max_id.max(id);
            valid += RECORD_LEN;
        }
        if valid < data.len() {
            guard.set_len(valid as u64)?;
            barrier::sync_all_counted(&guard, &self.fsyncs)?;
        }
        self.next_id.store(max_id + 1, Ordering::Relaxed);
        *self.ids.lock() = ids;
        Ok(())
    }

    /// Allocates a fresh store-wide batch id (monotonic, never reused across
    /// a reopen because [`open`](BatchCommitLog::open) starts past the
    /// largest committed id and the store bumps it past every id still
    /// prepared in a shard WAL via
    /// [`bump_next_id`](BatchCommitLog::bump_next_id)).
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Advances the id allocator to at least `floor`.
    ///
    /// `open` rebuilds the allocator from *committed* records only, but a
    /// prepared-yet-uncommitted `Batch { id }` frame survives a reopen in
    /// its shard's WAL (recovery rolls the slice back without rewriting the
    /// WAL). Handing that id to a new batch that later commits would
    /// retroactively mark the stale rolled-back slice as committed and
    /// resurrect part of an aborted batch on the next recovery. The store
    /// therefore calls this on open with one past the largest id found in
    /// any shard WAL, committed or not.
    pub fn bump_next_id(&self, floor: u64) {
        self.next_id.fetch_max(floor, Ordering::Relaxed);
    }

    /// Durably commits `id`: appends the record and fsyncs. Returns only
    /// once the commit point is on stable storage.
    pub fn commit(&self, id: u64) -> Result<()> {
        self.failpoint.check("batchlog.append")?;
        let mut rec = [0u8; RECORD_LEN];
        rec[..8].copy_from_slice(&id.to_be_bytes());
        rec[8..].copy_from_slice(&crc32(&id.to_be_bytes()).to_be_bytes());
        let mut file = self.file.lock();
        file.write_all(&rec)?;
        self.failpoint.check("batchlog.commit_fsync")?;
        barrier::sync_data_counted(&file, &self.fsyncs)?;
        self.ids.lock().insert(id);
        Ok(())
    }

    /// Whether `id` has durably committed.
    pub fn contains(&self, id: u64) -> bool {
        self.ids.lock().contains(&id)
    }

    /// Snapshot of every committed id.
    pub fn committed(&self) -> HashSet<u64> {
        self.ids.lock().clone()
    }

    /// Compacts the log down to `live` (ids still referenced by some shard's
    /// WAL). Once every prepared slice of a batch has been flushed out of the
    /// WALs, its commit record has no reader left and can be dropped, keeping
    /// the log bounded by in-flight batches instead of store lifetime.
    pub fn retain(&self, live: &HashSet<u64>) -> Result<()> {
        let mut file = self.file.lock();
        let mut ids = self.ids.lock();
        let keep: Vec<u64> = {
            let mut v: Vec<u64> = ids.iter().copied().filter(|id| live.contains(id)).collect();
            v.sort_unstable();
            v
        };
        if keep.len() == ids.len() {
            return Ok(());
        }
        let tmp = self.path.with_extension("batches.tmp");
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            for id in &keep {
                let mut rec = [0u8; RECORD_LEN];
                rec[..8].copy_from_slice(&id.to_be_bytes());
                rec[8..].copy_from_slice(&crc32(&id.to_be_bytes()).to_be_bytes());
                f.write_all(&rec)?;
            }
            barrier::sync_all_counted(&f, &self.fsyncs)?;
        }
        std::fs::rename(&tmp, &self.path)?;
        barrier::fsync_dir_counted(&self.path, &self.fsyncs)?;
        *file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        *ids = keep.into_iter().collect();
        Ok(())
    }

    /// Durability barriers issued by this log.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Validates internal invariants for tests.
    pub fn assert_loadable(path: impl AsRef<Path>) -> Result<usize> {
        let log = BatchCommitLog::open(path)?;
        let n = log.ids.lock().len();
        if log.next_id.load(Ordering::Relaxed) == 0 {
            return Err(StorageError::Corruption("batch id allocator underflow".into()));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lethe-batchlog-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn commit_and_reload() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let log = BatchCommitLog::open(&path).unwrap();
            let a = log.allocate_id();
            let b = log.allocate_id();
            assert_ne!(a, b);
            log.commit(a).unwrap();
            log.commit(b).unwrap();
            assert!(log.contains(a) && log.contains(b));
            assert_eq!(log.fsync_count(), 2, "one fsync per commit point");
        }
        let log = BatchCommitLog::open(&path).unwrap();
        assert_eq!(log.committed().len(), 2);
        // the allocator never reuses a committed id
        assert!(!log.contains(log.allocate_id()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_means_not_committed() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (a, b) = {
            let log = BatchCommitLog::open(&path).unwrap();
            let a = log.allocate_id();
            let b = log.allocate_id();
            log.commit(a).unwrap();
            (a, b)
        };
        // a crash mid-commit of `b`: only part of its record reaches disk
        {
            let mut rec = [0u8; RECORD_LEN];
            rec[..8].copy_from_slice(&b.to_be_bytes());
            rec[8..].copy_from_slice(&crc32(&b.to_be_bytes()).to_be_bytes());
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&rec[..7]).unwrap();
        }
        let log = BatchCommitLog::open(&path).unwrap();
        assert!(log.contains(a));
        assert!(!log.contains(b), "a torn commit record must read as not-committed");
        // a full-length tail record with a bad checksum is also rolled back
        {
            let mut rec = [0xEEu8; RECORD_LEN];
            rec[..8].copy_from_slice(&b.to_be_bytes());
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&rec).unwrap();
        }
        let log = BatchCommitLog::open(&path).unwrap();
        assert!(!log.contains(b));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bump_next_id_skips_wal_resident_ids() {
        let path = tmp("bump");
        let _ = std::fs::remove_file(&path);
        let log = BatchCommitLog::open(&path).unwrap();
        // simulate a reopen after a crash mid-2PC: id 5 was prepared in some
        // shard WAL but never committed, so the committed set is empty and
        // the allocator would restart at 1 — the bump must push it past 5
        log.bump_next_id(6);
        assert_eq!(log.allocate_id(), 6);
        // a lower floor never moves the allocator backwards
        log.bump_next_id(3);
        assert_eq!(log.allocate_id(), 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_rollback() {
        let path = tmp("midcorrupt");
        let _ = std::fs::remove_file(&path);
        {
            let log = BatchCommitLog::open(&path).unwrap();
            for _ in 0..3 {
                let id = log.allocate_id();
                log.commit(id).unwrap();
            }
        }
        // damage the *middle* record: valid records follow, so this is real
        // corruption — truncating here would silently roll back committed
        // batches — and open must refuse rather than guess
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(RECORD_LEN as u64 + 2)).unwrap();
            f.write_all(&[0xEE; 4]).unwrap();
        }
        assert!(matches!(BatchCommitLog::open(&path), Err(StorageError::Corruption(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retain_compacts_dead_ids() {
        let path = tmp("retain");
        let _ = std::fs::remove_file(&path);
        let log = BatchCommitLog::open(&path).unwrap();
        let ids: Vec<u64> = (0..10).map(|_| log.allocate_id()).collect();
        for &id in &ids {
            log.commit(id).unwrap();
        }
        let live: HashSet<u64> = ids[7..].iter().copied().collect();
        log.retain(&live).unwrap();
        assert_eq!(log.committed(), live);
        // the compaction survives a reopen and the allocator stays monotonic
        drop(log);
        let log = BatchCommitLog::open(&path).unwrap();
        assert_eq!(log.committed(), live);
        assert!(log.allocate_id() > *ids.last().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failpoint_aborts_commit() {
        let path = tmp("fp");
        let _ = std::fs::remove_file(&path);
        let fp = FailPoint::new();
        let log = BatchCommitLog::open(&path).unwrap().with_failpoint(fp.clone());
        let id = log.allocate_id();
        fp.arm(0);
        assert!(matches!(log.commit(id), Err(StorageError::Injected)));
        assert!(!log.contains(id));
        // after the crash window passes, the commit goes through
        fp.disarm();
        log.commit(id).unwrap();
        assert!(log.contains(id));
        let _ = std::fs::remove_file(&path);
    }
}
