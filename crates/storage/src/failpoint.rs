//! Deterministic crash injection for recovery testing.
//!
//! A [`FailPoint`] is a shared countdown that the durable components — the
//! file-backed device, the write-ahead log, the manifest and the
//! batch-commit log — consult before every state-changing step. Arming it
//! with `n` lets the `n`-th subsequent step fail with
//! [`StorageError::Injected`], which the crash-recovery tests use to
//! simulate a process kill at *every* interesting point of the
//! flush/compaction/manifest/WAL protocol (a "kill-point sweep"). A
//! default-constructed fail point is disarmed and costs one relaxed atomic
//! load per check.
//!
//! Every check site carries a stable **site name** (`"wal.append"`,
//! `"manifest.rewrite.rename"`, …). The name of the site that fired last is
//! recorded and exposed through [`FailPoint::last_fired`], so a sweep can
//! assert *which* durable steps its crash script actually exercised. The
//! repo lint cross-checks the site names against the `KILL_POINTS` registry
//! in `tests/crash_recovery.rs` in both directions: a new durable step
//! without sweep coverage, or a registry entry whose site was deleted, fails
//! CI.

use crate::error::{Result, StorageError};
use lethe_sync::{LockRank, Mutex};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// A shared, armable crash-injection countdown.
///
/// Clones share the same counter, so one fail point can be attached to every
/// durable component of an engine (or every shard of a sharded store) and
/// will trigger exactly once across all of them.
#[derive(Debug, Clone)]
pub struct FailPoint {
    /// Remaining durable steps before the next check fails; negative when
    /// disarmed.
    remaining: Arc<AtomicI64>,
    /// Site name of the most recent injected failure, shared by clones.
    fired: Arc<Mutex<Option<&'static str>>>,
    /// When set, every checked site name is recorded in `trace` (coverage
    /// audits); off by default so the hot path stays one atomic load.
    tracing: Arc<AtomicBool>,
    /// Every distinct site name seen by [`FailPoint::check`] while tracing.
    trace: Arc<Mutex<BTreeSet<&'static str>>>,
}

impl Default for FailPoint {
    fn default() -> Self {
        Self::new()
    }
}

impl FailPoint {
    /// Creates a disarmed fail point.
    pub fn new() -> Self {
        let fp = FailPoint {
            remaining: Arc::new(AtomicI64::new(0)),
            fired: Arc::new(Mutex::new(LockRank::FailPointState, None)),
            tracing: Arc::new(AtomicBool::new(false)),
            trace: Arc::new(Mutex::new(LockRank::FailPointState, BTreeSet::new())),
        };
        fp.disarm();
        fp
    }

    /// Arms the fail point: the `ops`-th subsequent [`FailPoint::check`]
    /// (0-based — `arm(0)` fails the very next check) returns an error.
    pub fn arm(&self, ops: u64) {
        self.remaining.store(ops as i64, Ordering::SeqCst);
    }

    /// Disarms the fail point; checks pass until it is armed again.
    pub fn disarm(&self) {
        self.remaining.store(i64::MIN, Ordering::SeqCst);
    }

    /// Returns `true` while armed (the injected failure has not fired yet).
    pub fn is_armed(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) >= 0
    }

    /// Site name of the most recent injected failure, `None` before the
    /// first one. Shared across clones, so a sweep over a multi-component
    /// store sees the site regardless of which component fired.
    pub fn last_fired(&self) -> Option<&'static str> {
        *self.fired.lock()
    }

    /// Starts recording every site name passed to [`FailPoint::check`]
    /// (whether armed or not). Shared across clones. Used by coverage
    /// audits that assert a workload reaches every registered kill point.
    pub fn enable_trace(&self) {
        self.tracing.store(true, Ordering::SeqCst);
    }

    /// Every distinct site name seen since [`FailPoint::enable_trace`], in
    /// lexicographic order.
    pub fn traced_sites(&self) -> Vec<&'static str> {
        self.trace.lock().iter().copied().collect()
    }

    /// Consumes one countdown step on behalf of the named durable step;
    /// fails with [`StorageError::Injected`] when the countdown reaches
    /// zero (recording `site` as the fired kill point). Disarmed fail
    /// points always pass.
    ///
    /// `site` must be a stable dotted name (`"component.step"`) listed in
    /// the `KILL_POINTS` registry of `tests/crash_recovery.rs`; the repo
    /// lint enforces the cross-check.
    pub fn check(&self, site: &'static str) -> Result<()> {
        if self.tracing.load(Ordering::Relaxed) {
            self.trace.lock().insert(site);
        }
        if self.remaining.load(Ordering::Relaxed) < 0 {
            return Ok(());
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 0 {
            self.disarm();
            *self.fired.lock() = Some(site);
            return Err(StorageError::Injected);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_always_passes() {
        let fp = FailPoint::new();
        for _ in 0..100 {
            fp.check("test.step").unwrap();
        }
        assert!(!fp.is_armed());
        assert_eq!(fp.last_fired(), None);
    }

    #[test]
    fn armed_fails_on_nth_check_then_disarms() {
        let fp = FailPoint::new();
        fp.arm(2);
        assert!(fp.is_armed());
        fp.check("test.first").unwrap();
        fp.check("test.second").unwrap();
        assert!(matches!(fp.check("test.third"), Err(StorageError::Injected)));
        // fires once, then the countdown is disarmed
        fp.check("test.fourth").unwrap();
        assert!(!fp.is_armed());
        assert_eq!(fp.last_fired(), Some("test.third"), "the firing site is recorded");
    }

    #[test]
    fn clones_share_the_countdown_and_fired_site() {
        let a = FailPoint::new();
        let b = a.clone();
        a.arm(1);
        b.check("test.pass").unwrap();
        assert!(matches!(a.check("test.fire"), Err(StorageError::Injected)));
        assert_eq!(b.last_fired(), Some("test.fire"));
    }

    #[test]
    fn trace_records_every_site_across_clones() {
        let a = FailPoint::new();
        let b = a.clone();
        a.check("test.before").unwrap();
        a.enable_trace();
        a.check("test.one").unwrap();
        b.check("test.two").unwrap();
        b.check("test.one").unwrap();
        assert_eq!(a.traced_sites(), vec!["test.one", "test.two"], "pre-trace sites excluded");
    }
}
