//! Deterministic crash injection for recovery testing.
//!
//! A [`FailPoint`] is a shared countdown that the durable components — the
//! file-backed device, the write-ahead log and the manifest — consult before
//! every state-changing step. Arming it with `n` lets the `n`-th subsequent
//! step fail with [`StorageError::Injected`], which the crash-recovery tests
//! use to simulate a process kill at *every* interesting point of the
//! flush/compaction/manifest/WAL protocol (a "kill-point sweep"). A
//! default-constructed fail point is disarmed and costs one relaxed atomic
//! load per check.

use crate::error::{Result, StorageError};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A shared, armable crash-injection countdown.
///
/// Clones share the same counter, so one fail point can be attached to every
/// durable component of an engine (or every shard of a sharded store) and
/// will trigger exactly once across all of them.
#[derive(Debug, Clone, Default)]
pub struct FailPoint {
    /// Remaining durable steps before the next check fails; negative when
    /// disarmed.
    remaining: Arc<AtomicI64>,
}

impl FailPoint {
    /// Creates a disarmed fail point.
    pub fn new() -> Self {
        let fp = FailPoint::default();
        fp.disarm();
        fp
    }

    /// Arms the fail point: the `ops`-th subsequent [`FailPoint::check`]
    /// (0-based — `arm(0)` fails the very next check) returns an error.
    pub fn arm(&self, ops: u64) {
        self.remaining.store(ops as i64, Ordering::SeqCst);
    }

    /// Disarms the fail point; checks pass until it is armed again.
    pub fn disarm(&self) {
        self.remaining.store(i64::MIN, Ordering::SeqCst);
    }

    /// Returns `true` while armed (the injected failure has not fired yet).
    pub fn is_armed(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) >= 0
    }

    /// Consumes one countdown step; fails with [`StorageError::Injected`]
    /// when the countdown reaches zero. Disarmed fail points always pass.
    pub fn check(&self) -> Result<()> {
        if self.remaining.load(Ordering::Relaxed) < 0 {
            return Ok(());
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 0 {
            self.disarm();
            return Err(StorageError::Injected);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_always_passes() {
        let fp = FailPoint::new();
        for _ in 0..100 {
            fp.check().unwrap();
        }
        assert!(!fp.is_armed());
    }

    #[test]
    fn armed_fails_on_nth_check_then_disarms() {
        let fp = FailPoint::new();
        fp.arm(2);
        assert!(fp.is_armed());
        fp.check().unwrap();
        fp.check().unwrap();
        assert!(matches!(fp.check(), Err(StorageError::Injected)));
        // fires once, then the countdown is disarmed
        fp.check().unwrap();
        assert!(!fp.is_armed());
    }

    #[test]
    fn clones_share_the_countdown() {
        let a = FailPoint::new();
        let b = a.clone();
        a.arm(1);
        b.check().unwrap();
        assert!(matches!(a.check(), Err(StorageError::Injected)));
    }
}
