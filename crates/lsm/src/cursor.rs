//! Streaming entry cursors and the k-way heap merge.
//!
//! Every multi-source read in the engine — range scans, flushes, compactions
//! — reduces to the same operation: walk several sorted entry streams in
//! lock-step, keep the newest version of every sort key, and apply tombstone
//! semantics. The seed implementation materialised every source into a
//! `Vec<Entry>`, concatenated them and re-sorted the already-sorted runs
//! (O(n log n) work and O(n) memory per scan). This module replaces that
//! with *cursors*:
//!
//! * [`EntryCursor`] — a fallible peekable stream of entries sorted on
//!   `(sort key asc, seqnum desc)`.
//! * [`VecCursor`] / [`SharedSliceCursor`] — in-memory sources (memtable
//!   snapshots, the frozen flush buffer).
//! * [`SsTableCursor`] — a *lazy* file source that decodes one delete tile
//!   at a time (fence-pruned to the requested range, stopping at `hi`), so
//!   a scan never holds more than one tile of one file in memory per input.
//! * [`MergeIterator`] — a binary-heap k-way merge over cursors that yields
//!   the newest version per key with range-tombstone shadowing applied
//!   incrementally through a sorted [`TombstoneWindow`] (O(log t) per entry
//!   instead of a full tombstone-list scan per entry).
//!
//! The consumers are `TreeReader::range`/`iter_range` (version-pinned
//! streaming scans) and `JobPlan::execute` (compactions and flushes merge
//! with memory bounded by *output file granularity*, not total input size).

use crate::sstable::SsTable;
use lethe_storage::{Entry, Result, SeqNum, SortKey, StorageBackend};
use std::cmp::Ordering as CmpOrdering;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// A fallible stream of entries sorted on `(sort_key asc, seqnum desc)`.
///
/// `peek` exposes the next entry without consuming it; `next_entry` consumes
/// it. Sources that read from a device (the [`SsTableCursor`]) surface I/O
/// errors from either call; in-memory sources never fail.
pub trait EntryCursor: Send {
    /// The next entry this cursor will yield, without consuming it.
    fn peek(&mut self) -> Result<Option<&Entry>>;

    /// Consumes and returns the next entry.
    fn next_entry(&mut self) -> Result<Option<Entry>>;
}

// ------------------------------------------------------------------ probe

/// A per-thread working-set probe for tests: tracks how many entries the
/// streaming machinery (tile buffers, output chunks) holds resident on the
/// current thread, and the peak since the last [`probe::reset`].
///
/// This exists to make the headline memory claim *testable*: a large merge
/// must peak at output-file + per-input-tile granularity, never at
/// total-input granularity. The counters are thread-local `Cell`s, so the
/// probe costs two increments per tile load and adds no synchronisation.
pub mod probe {
    use std::cell::Cell;

    thread_local! {
        static CURRENT: Cell<u64> = const { Cell::new(0) };
        static PEAK: Cell<u64> = const { Cell::new(0) };
    }

    /// Resets both counters on the calling thread.
    pub fn reset() {
        CURRENT.with(|c| c.set(0));
        PEAK.with(|p| p.set(0));
    }

    /// Peak number of simultaneously resident streamed entries on the
    /// calling thread since the last [`reset`].
    pub fn peak() -> u64 {
        PEAK.with(|p| p.get())
    }

    pub(crate) fn add(n: u64) {
        CURRENT.with(|c| {
            let now = c.get() + n;
            c.set(now);
            PEAK.with(|p| {
                if now > p.get() {
                    p.set(now);
                }
            });
        });
    }

    pub(crate) fn sub(n: u64) {
        CURRENT.with(|c| c.set(c.get().saturating_sub(n)));
    }
}

// ---------------------------------------------------------------- sources

/// Orders two entries the way every cursor and the merge expect:
/// ascending sort key, ties broken newest (largest seqnum) first.
pub fn entry_order(a: &Entry, b: &Entry) -> CmpOrdering {
    a.sort_key.cmp(&b.sort_key).then_with(|| b.seqnum.cmp(&a.seqnum))
}

/// An owned in-memory source (a drained memtable snapshot, a test vector).
#[derive(Debug)]
pub struct VecCursor {
    iter: std::vec::IntoIter<Entry>,
    head: Option<Entry>,
}

impl VecCursor {
    /// Builds a cursor over entries that are already sorted on
    /// `(sort_key asc, seqnum desc)`; debug builds assert the precondition.
    pub fn from_sorted(entries: Vec<Entry>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| entry_order(&w[0], &w[1]) != CmpOrdering::Greater));
        let mut iter = entries.into_iter();
        let head = iter.next();
        VecCursor { iter, head }
    }

    /// Builds a cursor over entries in arbitrary order (sorts them first).
    pub fn from_unsorted(mut entries: Vec<Entry>) -> Self {
        entries.sort_by(entry_order);
        Self::from_sorted(entries)
    }
}

impl EntryCursor for VecCursor {
    fn peek(&mut self) -> Result<Option<&Entry>> {
        Ok(self.head.as_ref())
    }

    fn next_entry(&mut self) -> Result<Option<Entry>> {
        Ok(std::mem::replace(&mut self.head, self.iter.next()))
    }
}

/// A cursor over a *shared* sorted slice (the `Arc`-pinned frozen flush
/// buffer): iterating clones one entry at a time instead of copying the
/// whole buffer up front.
pub struct SharedSliceCursor<T: AsRef<[Entry]> + Send> {
    data: T,
    pos: usize,
    end: usize,
}

impl<T: AsRef<[Entry]> + Send> SharedSliceCursor<T> {
    /// Builds a cursor over `data[start..end)`; the slice must be sorted on
    /// `(sort_key asc, seqnum desc)`.
    pub fn new(data: T, start: usize, end: usize) -> Self {
        debug_assert!(end <= data.as_ref().len() && start <= end);
        SharedSliceCursor { data, pos: start, end }
    }
}

impl<T: AsRef<[Entry]> + Send> EntryCursor for SharedSliceCursor<T> {
    fn peek(&mut self) -> Result<Option<&Entry>> {
        if self.pos < self.end {
            Ok(self.data.as_ref().get(self.pos))
        } else {
            Ok(None)
        }
    }

    fn next_entry(&mut self) -> Result<Option<Entry>> {
        if self.pos < self.end {
            let e = self.data.as_ref()[self.pos].clone();
            self.pos += 1;
            Ok(Some(e))
        } else {
            Ok(None)
        }
    }
}

/// A lazy cursor over one file's point entries in `[lo, hi)`.
///
/// The KiWi layout keeps delete tiles sorted on the sort key but the pages
/// *inside* a tile sorted on the delete key, so sort-key order is only
/// recoverable a tile at a time: the cursor fence-prunes to the tiles
/// overlapping the range, decodes the pages of one tile when it is first
/// needed (skipping pages whose sort-key bounds fall outside the range),
/// sorts that tile's in-range entries, and discards them before loading the
/// next tile. Peak memory is therefore one tile (`h · B` entries), not the
/// file; a scan that stops early never decodes the tiles past `hi`.
///
/// Pages are read through the table's backend — and thus through the block
/// cache when one is configured. `nofill` selects the maintenance read path
/// ([`StorageBackend::read_page_nofill`]): compaction merges stream whole
/// files and must not evict the hot point-read working set.
///
/// The cursor holds an `Arc` to the table, which keeps the version set's
/// deferred page reclamation from dropping the file's pages while the scan
/// is in flight (see `lethe_lsm::version`).
pub struct SsTableCursor {
    table: Arc<SsTable>,
    backend: Arc<dyn StorageBackend>,
    lo: SortKey,
    /// Exclusive upper bound; `None` scans to the end of the key domain
    /// (compaction input — `u64::MAX` itself must not be excluded).
    hi: Option<SortKey>,
    nofill: bool,
    /// Next tile index to decode.
    next_tile: usize,
    /// One past the last tile that may overlap the range.
    end_tile: usize,
    /// The current tile's in-range entries, sorted on `(S asc, seq desc)`.
    buf: Vec<Entry>,
    pos: usize,
}

impl SsTableCursor {
    /// Opens a cursor over `table`'s point entries in `[lo, hi)`.
    pub fn new(
        table: Arc<SsTable>,
        backend: Arc<dyn StorageBackend>,
        lo: SortKey,
        hi: SortKey,
        nofill: bool,
    ) -> Self {
        let (next_tile, end_tile) = match table.tile_fences.locate_range(lo, hi) {
            Some((start, end)) if table.overlaps_sort_range(lo, hi) => {
                (start, (end + 1).min(table.tiles.len()))
            }
            _ => (0, 0),
        };
        SsTableCursor {
            table,
            backend,
            lo,
            hi: Some(hi),
            nofill,
            next_tile,
            end_tile,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Opens a cursor over the whole file, **including** a `u64::MAX` sort
    /// key (compaction input; a half-open `[0, u64::MAX)` scan would lose
    /// the largest key).
    pub fn full(table: Arc<SsTable>, backend: Arc<dyn StorageBackend>, nofill: bool) -> Self {
        let end_tile = table.tiles.len();
        SsTableCursor {
            table,
            backend,
            lo: 0,
            hi: None,
            nofill,
            next_tile: 0,
            end_tile,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Ensures `buf[pos]` is the next entry, decoding tiles until one yields
    /// in-range entries or the fence-pruned tile range is exhausted.
    fn fill(&mut self) -> Result<()> {
        while self.pos >= self.buf.len() && self.next_tile < self.end_tile {
            // every entry of the previous tile was released as it was
            // yielded (`next_entry` subtracts one per entry), so the buffer
            // can simply be dropped here
            self.buf.clear();
            self.pos = 0;
            let tile = &self.table.tiles[self.next_tile];
            self.next_tile += 1;
            if tile.max_sort < self.lo || self.hi.is_some_and(|hi| tile.min_sort >= hi) {
                continue;
            }
            for handle in &tile.pages {
                if handle.num_entries == 0
                    || handle.max_sort < self.lo
                    || self.hi.is_some_and(|hi| handle.min_sort >= hi)
                {
                    continue;
                }
                let page = if self.nofill {
                    self.backend.read_page_nofill(handle.id)?
                } else {
                    self.backend.read_page(handle.id)?
                };
                match self.hi {
                    Some(hi) => self.buf.extend(page.range(self.lo, hi).iter().cloned()),
                    None => {
                        let all = page.entries();
                        let start = all.partition_point(|e| e.sort_key < self.lo);
                        self.buf.extend(all[start..].iter().cloned());
                    }
                }
            }
            self.buf.sort_by(entry_order);
            probe::add(self.buf.len() as u64);
        }
        Ok(())
    }
}

impl EntryCursor for SsTableCursor {
    fn peek(&mut self) -> Result<Option<&Entry>> {
        self.fill()?;
        Ok(self.buf.get(self.pos))
    }

    fn next_entry(&mut self) -> Result<Option<Entry>> {
        self.fill()?;
        if self.pos < self.buf.len() {
            let e = self.buf[self.pos].clone();
            self.pos += 1;
            probe::sub(1);
            Ok(Some(e))
        } else {
            Ok(None)
        }
    }
}

impl Drop for SsTableCursor {
    fn drop(&mut self) {
        // release whatever part of the current tile was loaded but not
        // yielded (yielded entries were released one by one)
        probe::sub((self.buf.len() - self.pos.min(self.buf.len())) as u64);
    }
}

// ----------------------------------------------------------------- window

/// Incremental range-tombstone shadowing for a stream of entries visited in
/// non-decreasing sort-key order.
///
/// The seed applied range tombstones by scanning the *entire* tombstone
/// list once per merged entry (O(entries × tombstones)). The window instead
/// keeps the tombstones sorted by start key and sweeps once: tombstones
/// whose start has been passed enter an *active* set (a min-heap on their
/// end key for O(log t) expiry, plus a seqnum multiset for an O(1) "newest
/// active covering seqnum" query), and leave it when the key sweeps past
/// their end. Total cost is O((entries + tombstones) · log tombstones).
pub struct TombstoneWindow {
    /// Tombstones sorted by start key (`sort_key`).
    rts: Vec<Entry>,
    /// Next tombstone whose start has not been reached yet.
    idx: usize,
    /// Active tombstones as `(end, seqnum)`, min-heap on `end`.
    active_ends: BinaryHeap<Reverse<(SortKey, SeqNum)>>,
    /// Multiset of active tombstone seqnums.
    active_seqs: BTreeMap<SeqNum, u32>,
}

impl TombstoneWindow {
    /// Builds a window over `range_tombstones` (any order; sorted here).
    pub fn new(mut range_tombstones: Vec<Entry>) -> Self {
        range_tombstones.retain(|e| e.is_range_tombstone());
        range_tombstones.sort_by_key(|e| e.sort_key);
        TombstoneWindow {
            rts: range_tombstones,
            idx: 0,
            active_ends: BinaryHeap::new(),
            active_seqs: BTreeMap::new(),
        }
    }

    /// True if a range tombstone strictly newer than `seqnum` covers `key`.
    ///
    /// Keys must be queried in non-decreasing order (the merge emits them
    /// that way); repeated queries at the same key are fine.
    pub fn shadows(&mut self, key: SortKey, seqnum: SeqNum) -> bool {
        // admit tombstones whose start has been reached
        while self.idx < self.rts.len() && self.rts[self.idx].sort_key <= key {
            let rt = &self.rts[self.idx];
            self.idx += 1;
            let end = rt.range_end().unwrap_or(rt.sort_key);
            if end > key {
                self.active_ends.push(Reverse((end, rt.seqnum)));
                *self.active_seqs.entry(rt.seqnum).or_insert(0) += 1;
            }
        }
        // expire tombstones the key has swept past
        while let Some(Reverse((end, seq))) = self.active_ends.peek().copied() {
            if end > key {
                break;
            }
            self.active_ends.pop();
            if let Some(n) = self.active_seqs.get_mut(&seq) {
                *n -= 1;
                if *n == 0 {
                    self.active_seqs.remove(&seq);
                }
            }
        }
        match self.active_seqs.last_key_value() {
            Some((&newest, _)) => newest > seqnum,
            None => false,
        }
    }
}

// ------------------------------------------------------------------ merge

/// One source's head entry queued in the merge heap. The heap is a max-heap,
/// so `Ord` is inverted to surface the *smallest* sort key (ties: largest
/// seqnum, then the earliest — newest — source).
struct HeapHead {
    entry: Entry,
    src: usize,
}

impl PartialEq for HeapHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for HeapHead {}
impl PartialOrd for HeapHead {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapHead {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .entry
            .sort_key
            .cmp(&self.entry.sort_key)
            .then_with(|| self.entry.seqnum.cmp(&other.entry.seqnum))
            .then_with(|| other.src.cmp(&self.src))
    }
}

/// A binary-heap k-way merge over entry cursors that yields the newest
/// version per sort key, with range-tombstone shadowing applied through a
/// [`TombstoneWindow`] and (optionally) tombstones themselves dropped — the
/// streaming equivalent of the seed's materialising `merge_entries`.
///
/// Sources must be supplied **newest first** (active memtable, frozen
/// buffer, then disk levels top-down): when two sources hold an entry with
/// the same key and seqnum (possible in the brief window where a flushed
/// buffer coexists with its installed output), the earlier source wins.
pub struct MergeIterator {
    cursors: Vec<Box<dyn EntryCursor>>,
    heap: BinaryHeap<HeapHead>,
    window: TombstoneWindow,
    drop_tombstones: bool,
    last_key: Option<SortKey>,
}

impl MergeIterator {
    /// Builds a merge over `cursors` (each sorted on `(S asc, seq desc)`,
    /// newest source first) shadowed by `range_tombstones`. When
    /// `drop_tombstones` is set (a merge into the last level, or a read that
    /// only wants live data), surviving point and range tombstones are
    /// discarded from the output.
    pub fn new(
        cursors: Vec<Box<dyn EntryCursor>>,
        range_tombstones: Vec<Entry>,
        drop_tombstones: bool,
    ) -> Result<Self> {
        let mut cursors = cursors;
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (src, cursor) in cursors.iter_mut().enumerate() {
            if let Some(entry) = cursor.next_entry()? {
                heap.push(HeapHead { entry, src });
            }
        }
        Ok(MergeIterator {
            cursors,
            heap,
            window: TombstoneWindow::new(range_tombstones),
            drop_tombstones,
            last_key: None,
        })
    }

    /// Returns the next surviving entry of the merge, or `None` when every
    /// source is exhausted.
    pub fn next_merged(&mut self) -> Result<Option<Entry>> {
        while let Some(head) = self.heap.pop() {
            let HeapHead { entry, src } = head;
            if let Some(refill) = self.cursors[src].next_entry()? {
                self.heap.push(HeapHead { entry: refill, src });
            }
            if self.last_key == Some(entry.sort_key) {
                continue; // an older version of a key already decided
            }
            self.last_key = Some(entry.sort_key);
            if self.window.shadows(entry.sort_key, entry.seqnum) {
                continue;
            }
            if self.drop_tombstones && entry.is_tombstone() {
                continue;
            }
            return Ok(Some(entry));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use bytes::Bytes;
    use lethe_storage::InMemoryBackend;

    fn put(k: u64, seq: u64) -> Entry {
        Entry::put(k, k, seq, Bytes::from_static(b"v"))
    }

    fn collect(mut it: MergeIterator) -> Vec<Entry> {
        let mut out = Vec::new();
        while let Some(e) = it.next_merged().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn vec_cursor_streams_in_order() {
        let mut c = VecCursor::from_unsorted(vec![put(3, 1), put(1, 2), put(2, 3)]);
        assert_eq!(c.peek().unwrap().unwrap().sort_key, 1);
        assert_eq!(c.next_entry().unwrap().unwrap().sort_key, 1);
        assert_eq!(c.next_entry().unwrap().unwrap().sort_key, 2);
        assert_eq!(c.peek().unwrap().unwrap().sort_key, 3);
        assert_eq!(c.next_entry().unwrap().unwrap().sort_key, 3);
        assert!(c.next_entry().unwrap().is_none());
        assert!(c.peek().unwrap().is_none());
    }

    #[test]
    fn merge_yields_newest_version_per_key_across_sources() {
        let a = VecCursor::from_sorted(vec![put(1, 9), put(3, 1)]);
        let b = VecCursor::from_sorted(vec![put(1, 5), put(2, 2), put(3, 7)]);
        let out = collect(
            MergeIterator::new(vec![Box::new(a), Box::new(b)], vec![], false).unwrap(),
        );
        let got: Vec<(u64, u64)> = out.iter().map(|e| (e.sort_key, e.seqnum)).collect();
        assert_eq!(got, vec![(1, 9), (2, 2), (3, 7)]);
    }

    #[test]
    fn equal_seqnums_prefer_the_earlier_source() {
        // the flush race: the same entry visible in the frozen buffer (src 0)
        // and the freshly installed level (src 1)
        let dup = put(5, 42);
        let a = VecCursor::from_sorted(vec![dup.clone()]);
        let b = VecCursor::from_sorted(vec![dup.clone()]);
        let out = collect(
            MergeIterator::new(vec![Box::new(a), Box::new(b)], vec![], false).unwrap(),
        );
        assert_eq!(out, vec![dup]);
    }

    #[test]
    fn tombstone_window_shadows_covered_older_entries_only() {
        let rts = vec![Entry::range_tombstone(10, 20, 100), Entry::range_tombstone(15, 30, 50)];
        let mut w = TombstoneWindow::new(rts);
        assert!(!w.shadows(5, 1)); // before any tombstone
        assert!(w.shadows(10, 99)); // covered, older than seq 100
        assert!(!w.shadows(12, 100)); // same seq is not shadowed
        assert!(!w.shadows(15, 150)); // newer than both
        assert!(w.shadows(25, 49)); // only the second still covers
        assert!(!w.shadows(25, 60)); // newer than the second
        assert!(!w.shadows(30, 1)); // past both ends
        assert!(!w.shadows(u64::MAX, 0));
    }

    #[test]
    fn window_handles_nested_and_disjoint_spans() {
        let rts = vec![
            Entry::range_tombstone(0, 100, 10),
            Entry::range_tombstone(40, 60, 99),
            Entry::range_tombstone(200, 201, 5),
        ];
        let mut w = TombstoneWindow::new(rts);
        assert!(w.shadows(0, 9));
        assert!(!w.shadows(0, 10));
        assert!(w.shadows(50, 50)); // inner newer tombstone
        assert!(w.shadows(99, 9));
        assert!(!w.shadows(99, 20)); // inner expired, outer seq 10 <= 20
        assert!(w.shadows(200, 4));
        assert!(!w.shadows(201, 0));
    }

    #[test]
    fn merge_applies_shadowing_and_drops_tombstones_at_last_level() {
        let a = VecCursor::from_sorted(vec![put(5, 1), put(12, 2), put(15, 200)]);
        let b = VecCursor::from_sorted(vec![Entry::point_tombstone(5, 9), put(25, 3)]);
        let rts = vec![Entry::range_tombstone(10, 20, 100)];
        let out = collect(
            MergeIterator::new(vec![Box::new(a), Box::new(b)], rts, true).unwrap(),
        );
        // 5 deleted (point tombstone, dropped), 12 shadowed, 15 newer than
        // the range tombstone, 25 untouched
        let keys: Vec<u64> = out.iter().map(|e| e.sort_key).collect();
        assert_eq!(keys, vec![15, 25]);
    }

    #[test]
    fn sstable_cursor_streams_whole_file_in_order() {
        let backend = InMemoryBackend::new_shared();
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = 4;
        cfg.max_pages_per_file = 16;
        // decorrelated delete keys exercise the within-tile page re-sort
        let entries: Vec<Entry> = (0..128u64)
            .map(|k| Entry::put(k, (k * 37) % 1000, k + 1, Bytes::from_static(b"v")))
            .collect();
        let table = Arc::new(
            SsTable::build(1, entries.clone(), vec![], 0, None, &cfg, backend.as_ref()).unwrap(),
        );
        let mut c = SsTableCursor::full(table, backend, false);
        let mut got = Vec::new();
        while let Some(e) = c.next_entry().unwrap() {
            got.push(e);
        }
        assert_eq!(got, entries);
    }

    #[test]
    fn sstable_cursor_prunes_tiles_and_stops_at_hi() {
        let backend = InMemoryBackend::new_shared();
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = 2;
        cfg.max_pages_per_file = 64;
        let entries: Vec<Entry> =
            (0..256u64).map(|k| Entry::put(k, k, k + 1, Bytes::from_static(b"v"))).collect();
        let table = Arc::new(
            SsTable::build(1, entries, vec![], 0, None, &cfg, backend.as_ref()).unwrap(),
        );
        let total_pages = table.page_count() as u64;
        let before = backend.stats().snapshot().pages_read;
        let mut c = SsTableCursor::new(Arc::clone(&table), backend.clone(), 20, 36, false);
        let mut got = Vec::new();
        while let Some(e) = c.next_entry().unwrap() {
            got.push(e.sort_key);
        }
        assert_eq!(got, (20..36).collect::<Vec<u64>>());
        let read = backend.stats().snapshot().pages_read - before;
        assert!(
            read < total_pages / 2,
            "a narrow scan must not decode the whole file ({read}/{total_pages} pages)"
        );
        // an empty / non-overlapping range reads nothing
        let before = backend.stats().snapshot().pages_read;
        let mut c = SsTableCursor::new(Arc::clone(&table), backend.clone(), 1000, 2000, false);
        assert!(c.next_entry().unwrap().is_none());
        let mut c = SsTableCursor::new(table, backend.clone(), 10, 10, false);
        assert!(c.next_entry().unwrap().is_none());
        assert_eq!(backend.stats().snapshot().pages_read, before);
    }

    #[test]
    fn probe_tracks_resident_tile_entries() {
        probe::reset();
        let backend = InMemoryBackend::new_shared();
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = 2; // 8-entry tiles
        cfg.max_pages_per_file = 64;
        let entries: Vec<Entry> =
            (0..256u64).map(|k| Entry::put(k, k, k + 1, Bytes::from_static(b"v"))).collect();
        let table = Arc::new(
            SsTable::build(1, entries, vec![], 0, None, &cfg, backend.as_ref()).unwrap(),
        );
        let mut c = SsTableCursor::full(table, backend, false);
        let mut n = 0usize;
        while c.next_entry().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 256);
        let tile_entries = (cfg.entries_per_tile()) as u64;
        assert!(
            probe::peak() <= tile_entries,
            "peak {} must stay within one tile ({tile_entries})",
            probe::peak()
        );
    }

    #[test]
    fn empty_merge_is_empty() {
        let out = collect(MergeIterator::new(vec![], vec![], true).unwrap());
        assert!(out.is_empty());
        let c = VecCursor::from_sorted(vec![]);
        let out =
            collect(MergeIterator::new(vec![Box::new(c)], vec![], false).unwrap());
        assert!(out.is_empty());
    }
}
