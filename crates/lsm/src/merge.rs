//! Sort-merge of entry streams.
//!
//! Compactions, flushes and range queries all reduce to the same operation:
//! take entries from several sorted runs, keep only the most recent version
//! of every sort key, and apply tombstones. During a compaction that does not
//! reach the last level, tombstones (and range tombstones) are *retained*
//! because older versions of their keys may still exist further down the tree
//! (paper §3.1.1); when the output is the last level they are discarded,
//! which is the moment a logical delete becomes persistent.
//!
//! [`merge_entries`] is the *materialising* convenience wrapper over the
//! streaming machinery in [`crate::cursor`]: it is retained for callers that
//! genuinely need the whole output at once (content snapshots, tests). The
//! hot paths — range scans and compaction — drive
//! [`crate::cursor::MergeIterator`] directly and never hold more than one
//! delete tile per input in memory. Range-tombstone shadowing is applied
//! through the sorted [`crate::cursor::TombstoneWindow`] sweep, not by
//! re-scanning the tombstone list per entry.

use crate::cursor::{EntryCursor, MergeIterator, VecCursor};
use lethe_storage::Entry;

/// Result of a merge: surviving point entries (sorted on the sort key) and
/// surviving range tombstones.
#[derive(Debug, Clone, Default)]
pub struct MergeOutput {
    /// Surviving point entries (puts and, unless dropped, point tombstones),
    /// one per sort key, sorted on the sort key.
    pub entries: Vec<Entry>,
    /// Surviving range tombstones (empty when `drop_tombstones` was set).
    pub range_tombstones: Vec<Entry>,
}

impl MergeOutput {
    /// Total number of surviving records.
    pub fn len(&self) -> usize {
        self.entries.len() + self.range_tombstones.len()
    }

    /// True when nothing survived the merge.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.range_tombstones.is_empty()
    }
}

/// Merges `inputs` (each an arbitrary-order vector of point entries) together
/// with `range_tombstones`, keeping the newest version per sort key and
/// applying tombstone semantics.
///
/// * A point entry is dropped if a range tombstone with a larger sequence
///   number covers its sort key.
/// * Older versions of a key are dropped in favour of the newest one
///   (which may itself be a point tombstone).
/// * When `drop_tombstones` is true (merge into the last level), surviving
///   point and range tombstones are themselves discarded — this is what makes
///   the delete *persistent*.
pub fn merge_entries(
    inputs: Vec<Vec<Entry>>,
    range_tombstones: Vec<Entry>,
    drop_tombstones: bool,
) -> MergeOutput {
    let total: usize = inputs.iter().map(|v| v.len()).sum();
    let cursors: Vec<Box<dyn EntryCursor>> = inputs
        .into_iter()
        .map(|v| Box::new(VecCursor::from_unsorted(v)) as Box<dyn EntryCursor>)
        .collect();
    let merge = MergeIterator::new(cursors, range_tombstones.clone(), drop_tombstones);
    // lint:allow(no-panic): VecCursor never returns an I/O error
    let mut merge = merge.expect("in-memory cursors are infallible");
    let mut entries: Vec<Entry> = Vec::with_capacity(total);
    // lint:allow(no-panic): VecCursor never returns an I/O error
    while let Some(e) = merge.next_merged().expect("in-memory cursors are infallible") {
        entries.push(e);
    }

    let range_tombstones = if drop_tombstones { Vec::new() } else { range_tombstones };
    MergeOutput { entries, range_tombstones }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn put(k: u64, seq: u64) -> Entry {
        Entry::put(k, k, seq, Bytes::from_static(b"v"))
    }

    #[test]
    fn newest_version_wins() {
        let out = merge_entries(vec![vec![put(1, 5), put(2, 1)], vec![put(1, 9)]], vec![], false);
        assert_eq!(out.entries.len(), 2);
        assert_eq!(out.entries[0].seqnum, 9);
        assert_eq!(out.entries[1].sort_key, 2);
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
    }

    #[test]
    fn point_tombstone_hides_older_versions_but_survives() {
        let out = merge_entries(
            vec![vec![put(7, 1)], vec![Entry::point_tombstone(7, 5)]],
            vec![],
            false,
        );
        assert_eq!(out.entries.len(), 1);
        assert!(out.entries[0].is_point_tombstone());
    }

    #[test]
    fn tombstones_dropped_at_last_level() {
        let out = merge_entries(
            vec![vec![put(7, 1), put(8, 2)], vec![Entry::point_tombstone(7, 5)]],
            vec![Entry::range_tombstone(100, 200, 9)],
            true,
        );
        // key 7 deleted persistently, key 8 survives, all tombstones gone
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].sort_key, 8);
        assert!(out.range_tombstones.is_empty());
    }

    #[test]
    fn newer_put_survives_point_tombstone() {
        // a put issued after the delete re-inserts the key
        let out = merge_entries(
            vec![vec![Entry::point_tombstone(3, 4)], vec![put(3, 8)]],
            vec![],
            true,
        );
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].seqnum, 8);
        assert!(!out.entries[0].is_tombstone());
    }

    #[test]
    fn range_tombstone_deletes_covered_older_entries_only() {
        let rt = Entry::range_tombstone(10, 20, 100);
        let out = merge_entries(
            vec![vec![put(5, 1), put(12, 2), put(15, 200), put(25, 3)]],
            vec![rt.clone()],
            false,
        );
        let keys: Vec<u64> = out.entries.iter().map(|e| e.sort_key).collect();
        // 12 is covered and older than the tombstone; 15 is newer; 5, 25 outside
        assert_eq!(keys, vec![5, 15, 25]);
        assert_eq!(out.range_tombstones, vec![rt]);
    }

    #[test]
    fn output_is_sorted_and_deduplicated() {
        let mut inputs = Vec::new();
        for i in 0..5u64 {
            inputs.push((0..50u64).map(|k| put(k, i * 100 + k)).collect());
        }
        let out = merge_entries(inputs, vec![], false);
        assert_eq!(out.entries.len(), 50);
        assert!(out.entries.windows(2).all(|w| w[0].sort_key < w[1].sort_key));
        // all survivors come from the newest input (seqnum >= 400)
        assert!(out.entries.iter().all(|e| e.seqnum >= 400));
    }

    /// Regression for the O(entries × tombstones) shadowing pass: 1k range
    /// tombstones against 10k entries must merge through the sorted window
    /// (and produce exactly the covered/uncovered split) without the
    /// per-entry full-list scan the seed performed.
    #[test]
    fn many_tombstones_times_many_entries_uses_the_window() {
        let n_entries = 10_000u64;
        let n_rts = 1_000u64;
        // entries at seq 1..=10k; tombstones cover [2i, 2i+10) at seq 100k+i
        // (all newer than every entry), so exactly the covered keys die
        let entries: Vec<Entry> = (0..n_entries).map(|k| put(k, k + 1)).collect();
        let rts: Vec<Entry> = (0..n_rts)
            .map(|i| Entry::range_tombstone(2 * i, 2 * i + 10, 100_000 + i))
            .collect();
        let start = std::time::Instant::now();
        let out = merge_entries(vec![entries.clone()], rts.clone(), false);
        let elapsed = start.elapsed();
        // brute-force oracle on a sample of keys
        for k in (0..n_entries).step_by(97) {
            let shadowed = rts.iter().any(|rt| rt.covers(k));
            let present = out.entries.iter().any(|e| e.sort_key == k);
            assert_eq!(present, !shadowed, "key {k}");
        }
        assert_eq!(out.range_tombstones.len(), n_rts as usize);
        assert!(out.entries.windows(2).all(|w| w[0].sort_key < w[1].sort_key));
        // generous wall-clock sanity bound: the quadratic path took ~10M
        // covers() calls here; the window does ~(n + t) log t work
        assert!(elapsed.as_secs() < 10, "merge took {elapsed:?}");
    }

    #[test]
    fn empty_inputs() {
        let out = merge_entries(vec![], vec![], true);
        assert!(out.is_empty());
        let out = merge_entries(vec![vec![]], vec![Entry::range_tombstone(0, 10, 1)], false);
        assert_eq!(out.range_tombstones.len(), 1);
        assert!(out.entries.is_empty());
    }
}
