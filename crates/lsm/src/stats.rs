//! Engine-level statistics: everything the paper's evaluation measures.
//!
//! Compactions, flushes, ingested bytes and secondary-delete outcomes are
//! counted here; device-level activity (pages/bytes read and written, Bloom
//! probes) lives in [`lethe_storage::IoStats`]. Space amplification and write
//! amplification follow the definitions of §3.2.1 and §3.2.3:
//!
//! * `s_amp = (csize(N) − csize(U)) / csize(U)` — superfluous bytes relative
//!   to the bytes of unique (live, newest-version) entries.
//! * `w_amp = (csize(N⁺) − csize(N)) / csize(N)` — bytes written to the
//!   device beyond the bytes of new/modified data.

use crate::sstable::SecondaryDeleteStats;
use lethe_storage::Timestamp;

/// Counters maintained by the tree across its lifetime.
#[derive(Debug, Clone, Default)]
pub struct TreeStats {
    /// Number of memtable flushes performed.
    pub flushes: u64,
    /// Number of compactions performed (any kind).
    pub compactions: u64,
    /// Number of full-tree compactions performed.
    pub full_tree_compactions: u64,
    /// Compactions triggered by an expired file TTL (FADE's delete-driven
    /// trigger); a subset of `compactions`.
    pub ttl_triggered_compactions: u64,
    /// Total entries fed into compactions (a proxy for merge work).
    pub entries_compacted: u64,
    /// Total bytes of *new or modified* data ingested (puts + tombstones),
    /// the denominator of write amplification.
    pub bytes_ingested: u64,
    /// Total entries ingested (puts + tombstones).
    pub entries_ingested: u64,
    /// Point tombstones ingested.
    pub point_deletes_issued: u64,
    /// Range tombstones ingested.
    pub range_deletes_issued: u64,
    /// Point deletes skipped because the key could not exist (blind-delete
    /// suppression, §4.1.5).
    pub blind_deletes_suppressed: u64,
    /// Secondary range delete operations executed.
    pub secondary_range_deletes: u64,
    /// Tombstone-drop decisions suppressed because a live snapshot still
    /// pinned pre-delete history (see `lethe_lsm::snapshot`): each count is
    /// one planned job that would have persisted its tombstones but was
    /// forced to retain them. While this is non-zero and rising, FADE's
    /// `D_th` guarantee is deliberately suspended — the tombstones stay in
    /// their files with their ages intact, so the delete-persistence
    /// accounting (`ContentSnapshot::tombstone_file_ages`) keeps reporting
    /// them as unpersisted rather than claiming a delete completed while a
    /// snapshot could still read the deleted data.
    pub tombstone_gc_delayed: u64,
    /// Aggregate page-drop outcomes of all secondary range deletes.
    pub secondary_delete: SecondaryDeleteStats,
    /// Number of point lookups served.
    pub point_lookups: u64,
    /// Number of range lookups served.
    pub range_lookups: u64,
    /// Bytes of table data written by memtable flushes (the unavoidable
    /// first copy of every ingested byte).
    pub bytes_flushed: u64,
    /// Bytes of table data rewritten by compactions of any kind — the
    /// numerator of [`TreeStats::write_amp`] beyond the flush copy. Whole-file
    /// drops add nothing here: retiring a file writes no data.
    pub bytes_compacted: u64,
    /// Files retired by whole-file drops (a date-tiered TTL expiry retires a
    /// wholly-expired time window without reading a single page).
    pub whole_file_drops: u64,
}

impl TreeStats {
    /// Records a batch of ingested bytes/entries.
    pub fn record_ingest(&mut self, bytes: u64) {
        self.bytes_ingested += bytes;
        self.entries_ingested += 1;
    }

    /// Accumulates the counters of `other` into `self`; used by the sharded
    /// front-end to aggregate per-shard statistics into one combined view.
    pub fn absorb(&mut self, other: &TreeStats) {
        self.flushes += other.flushes;
        self.compactions += other.compactions;
        self.full_tree_compactions += other.full_tree_compactions;
        self.ttl_triggered_compactions += other.ttl_triggered_compactions;
        self.entries_compacted += other.entries_compacted;
        self.bytes_ingested += other.bytes_ingested;
        self.entries_ingested += other.entries_ingested;
        self.point_deletes_issued += other.point_deletes_issued;
        self.range_deletes_issued += other.range_deletes_issued;
        self.blind_deletes_suppressed += other.blind_deletes_suppressed;
        self.secondary_range_deletes += other.secondary_range_deletes;
        self.tombstone_gc_delayed += other.tombstone_gc_delayed;
        self.secondary_delete.merge(&other.secondary_delete);
        self.point_lookups += other.point_lookups;
        self.range_lookups += other.range_lookups;
        self.bytes_flushed += other.bytes_flushed;
        self.bytes_compacted += other.bytes_compacted;
        self.whole_file_drops += other.whole_file_drops;
    }

    /// Write amplification given the total bytes the device has absorbed.
    pub fn write_amplification(&self, device_bytes_written: u64) -> f64 {
        if self.bytes_ingested == 0 {
            return 0.0;
        }
        device_bytes_written.saturating_sub(self.bytes_ingested) as f64 / self.bytes_ingested as f64
    }

    /// Write amplification from the tree's own counters: table bytes written
    /// by flushes and compactions per byte of ingested data. Unlike
    /// [`TreeStats::write_amplification`] this needs no device snapshot, so
    /// it compares compaction strategies without WAL/manifest noise and
    /// absorbs cleanly across shards.
    pub fn write_amp(&self) -> f64 {
        if self.bytes_ingested == 0 {
            return 0.0;
        }
        (self.bytes_flushed + self.bytes_compacted) as f64 / self.bytes_ingested as f64
    }
}

/// A measurement-time snapshot of the tree contents (space amplification,
/// tombstone ages), produced by `LsmTree::snapshot_contents`.
#[derive(Debug, Clone, Default)]
pub struct ContentSnapshot {
    /// Cumulative encoded size of every entry in the tree (`csize(N)`).
    pub total_bytes: u64,
    /// Cumulative encoded size of the newest live version of every unique key
    /// (`csize(U)`).
    pub unique_bytes: u64,
    /// Total entries in the tree, including tombstones and stale versions.
    pub total_entries: u64,
    /// Unique live keys.
    pub unique_entries: u64,
    /// Tombstones (point + range) present anywhere in the tree.
    pub tombstones: u64,
    /// For every file that contains at least one tombstone: `(file age in
    /// logical µs, number of tombstones in it)`. This is the raw data behind
    /// Figure 6(E).
    pub tombstone_file_ages: Vec<(Timestamp, u64)>,
    /// Number of disk levels with data.
    pub populated_levels: usize,
    /// Total files on disk.
    pub files: usize,
    /// In-memory footprint of filters and fence pointers in bytes.
    pub metadata_bytes: u64,
}

impl ContentSnapshot {
    /// Accumulates `other` into `self`; used by the sharded front-end to
    /// combine per-shard snapshots. Additive counters are summed;
    /// `populated_levels` becomes the maximum across shards (the depth of the
    /// deepest shard tree).
    pub fn absorb(&mut self, other: &ContentSnapshot) {
        self.total_bytes += other.total_bytes;
        self.unique_bytes += other.unique_bytes;
        self.total_entries += other.total_entries;
        self.unique_entries += other.unique_entries;
        self.tombstones += other.tombstones;
        self.tombstone_file_ages.extend_from_slice(&other.tombstone_file_ages);
        self.populated_levels = self.populated_levels.max(other.populated_levels);
        self.files += other.files;
        self.metadata_bytes += other.metadata_bytes;
    }

    /// Space amplification `(csize(N) − csize(U)) / csize(U)` (§3.2.1).
    pub fn space_amplification(&self) -> f64 {
        if self.unique_bytes == 0 {
            return 0.0;
        }
        self.total_bytes.saturating_sub(self.unique_bytes) as f64 / self.unique_bytes as f64
    }

    /// Cumulative distribution of tombstone counts by file age: for each of
    /// the provided age thresholds (in µs), how many tombstones live in files
    /// of that age or younger.
    pub fn cumulative_tombstones_by_age(&self, thresholds: &[Timestamp]) -> Vec<(Timestamp, u64)> {
        thresholds
            .iter()
            .map(|&th| {
                let count = self
                    .tombstone_file_ages
                    .iter()
                    .filter(|(age, _)| *age <= th)
                    .map(|(_, n)| n)
                    .sum();
                (th, count)
            })
            .collect()
    }

    /// The age of the oldest file that still contains a tombstone, if any.
    pub fn oldest_tombstone_file_age(&self) -> Option<Timestamp> {
        self.tombstone_file_ages.iter().map(|(age, _)| *age).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_definition() {
        let mut s = TreeStats::default();
        assert_eq!(s.write_amplification(1000), 0.0);
        s.record_ingest(1000);
        // 5000 bytes hit the device for 1000 bytes of new data → wamp 4
        assert!((s.write_amplification(5000) - 4.0).abs() < 1e-9);
        // device wrote less than ingested (still buffered) → 0, not negative
        assert_eq!(s.write_amplification(500), 0.0);
        assert_eq!(s.entries_ingested, 1);
    }

    #[test]
    fn counter_based_write_amp() {
        let mut s = TreeStats::default();
        assert_eq!(s.write_amp(), 0.0);
        s.record_ingest(1000);
        s.bytes_flushed = 1000;
        s.bytes_compacted = 3000;
        assert!((s.write_amp() - 4.0).abs() < 1e-9);
        let mut other = TreeStats::default();
        other.record_ingest(1000);
        other.bytes_flushed = 1000;
        other.whole_file_drops = 2;
        s.absorb(&other);
        assert_eq!(s.bytes_flushed, 2000);
        assert_eq!(s.bytes_compacted, 3000);
        assert_eq!(s.whole_file_drops, 2);
        assert!((s.write_amp() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn space_amplification_definition() {
        let snap = ContentSnapshot {
            total_bytes: 1500,
            unique_bytes: 1000,
            ..Default::default()
        };
        assert!((snap.space_amplification() - 0.5).abs() < 1e-9);
        let empty = ContentSnapshot::default();
        assert_eq!(empty.space_amplification(), 0.0);
    }

    #[test]
    fn cumulative_tombstone_age_distribution() {
        let snap = ContentSnapshot {
            tombstone_file_ages: vec![(100, 5), (500, 10), (900, 20)],
            ..Default::default()
        };
        let cdf = snap.cumulative_tombstones_by_age(&[50, 100, 600, 1000]);
        assert_eq!(cdf, vec![(50, 0), (100, 5), (600, 15), (1000, 35)]);
        assert_eq!(snap.oldest_tombstone_file_age(), Some(900));
        assert_eq!(ContentSnapshot::default().oldest_tombstone_file_age(), None);
    }
}
