//! Levels and runs.
//!
//! A *run* is a collection of files with non-overlapping sort-key ranges that
//! together form one sorted sequence. A *level* holds one run under leveling
//! and up to `T` runs under tiering (newest run first). Level 0 is the
//! in-memory buffer and is not represented here; `levels[0]` is the first
//! disk level (Level 1 of the paper).

use crate::sstable::SsTable;
use lethe_storage::SortKey;
use std::sync::Arc;

/// A sorted run: non-overlapping files ordered by their minimum sort key.
#[derive(Debug, Clone, Default)]
pub struct Run {
    tables: Vec<Arc<SsTable>>,
}

impl Run {
    /// Builds a run from files, sorting them by minimum sort key.
    pub fn new(mut tables: Vec<Arc<SsTable>>) -> Self {
        tables.sort_by_key(|t| t.meta.min_sort);
        Run { tables }
    }

    /// The files of the run in key order.
    pub fn tables(&self) -> &[Arc<SsTable>] {
        &self.tables
    }

    /// Number of files in the run.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the run holds no files.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total data bytes across the run's files.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.meta.data_bytes).sum()
    }

    /// Total entries across the run's files.
    pub fn total_entries(&self) -> u64 {
        self.tables.iter().map(|t| t.meta.num_entries).sum()
    }

    /// The file whose key range may contain `key`, if any.
    pub fn find(&self, key: SortKey) -> Option<&Arc<SsTable>> {
        self.tables.iter().find(|t| t.key_in_range(key))
    }

    /// Every file whose key range overlaps `[lo, hi)`.
    pub fn overlapping_range(&self, lo: SortKey, hi: SortKey) -> Vec<Arc<SsTable>> {
        self.tables.iter().filter(|t| t.overlaps_sort_range(lo, hi)).cloned().collect()
    }

    /// Every file overlapping the key range of `other`.
    pub fn overlapping_table(&self, other: &SsTable) -> Vec<Arc<SsTable>> {
        self.tables.iter().filter(|t| t.overlaps_table(other)).cloned().collect()
    }

    /// Looks up a file by id.
    pub fn find_by_id(&self, id: u64) -> Option<&Arc<SsTable>> {
        self.tables.iter().find(|t| t.meta.id == id)
    }

    /// Removes (and returns) the files whose ids are in `ids`.
    pub fn remove_ids(&mut self, ids: &[u64]) -> Vec<Arc<SsTable>> {
        let mut removed = Vec::new();
        self.tables.retain(|t| {
            if ids.contains(&t.meta.id) {
                removed.push(Arc::clone(t));
                false
            } else {
                true
            }
        });
        removed
    }

    /// Adds files to the run, keeping key order.
    pub fn add_tables(&mut self, new_tables: Vec<Arc<SsTable>>) {
        self.tables.extend(new_tables);
        self.tables.sort_by_key(|t| t.meta.min_sort);
    }

    /// Replaces a file in place by id (used after secondary range deletes).
    /// Returns `true` if the id was present.
    pub fn replace(&mut self, id: u64, replacement: Option<Arc<SsTable>>) -> bool {
        if let Some(pos) = self.tables.iter().position(|t| t.meta.id == id) {
            match replacement {
                Some(t) => self.tables[pos] = t,
                None => {
                    self.tables.remove(pos);
                }
            }
            true
        } else {
            false
        }
    }
}

/// One disk level of the tree.
#[derive(Debug, Clone, Default)]
pub struct Level {
    /// Runs of the level, newest first. Leveling keeps at most one.
    pub runs: Vec<Run>,
}

impl Level {
    /// Creates an empty level.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total data bytes in the level.
    pub fn total_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.total_bytes()).sum()
    }

    /// Total entries in the level.
    pub fn total_entries(&self) -> u64 {
        self.runs.iter().map(|r| r.total_entries()).sum()
    }

    /// Number of files in the level.
    pub fn file_count(&self) -> usize {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// Number of runs in the level.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// True if the level holds no data.
    pub fn is_empty(&self) -> bool {
        self.runs.iter().all(|r| r.is_empty())
    }

    /// Iterates over every file of the level, newest run first.
    pub fn all_tables(&self) -> impl Iterator<Item = &Arc<SsTable>> {
        self.runs.iter().flat_map(|r| r.tables().iter())
    }

    /// Total number of tombstones stored in the level.
    pub fn tombstone_count(&self) -> u64 {
        self.all_tables().map(|t| t.tombstone_count()).sum()
    }

    /// Drops empty runs.
    pub fn prune_empty_runs(&mut self) {
        self.runs.retain(|r| !r.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use bytes::Bytes;
    use lethe_storage::{Entry, InMemoryBackend};

    fn table(id: u64, lo: u64, hi: u64, backend: &InMemoryBackend) -> Arc<SsTable> {
        let cfg = LsmConfig::small_for_test();
        let entries: Vec<Entry> =
            (lo..hi).map(|k| Entry::put(k, k, k + 1, Bytes::from_static(b"v"))).collect();
        Arc::new(SsTable::build(id, entries, vec![], 0, None, &cfg, backend).unwrap())
    }

    #[test]
    fn run_orders_and_finds_files() {
        let backend = InMemoryBackend::new();
        let run = Run::new(vec![table(2, 100, 200, &backend), table(1, 0, 100, &backend)]);
        assert_eq!(run.len(), 2);
        assert_eq!(run.tables()[0].meta.id, 1);
        assert_eq!(run.find(50).unwrap().meta.id, 1);
        assert_eq!(run.find(150).unwrap().meta.id, 2);
        assert!(run.find(500).is_none());
        assert!(run.find_by_id(2).is_some());
        assert!(run.find_by_id(9).is_none());
        assert_eq!(run.total_entries(), 200);
        assert!(run.total_bytes() > 0);
    }

    #[test]
    fn run_overlap_queries() {
        let backend = InMemoryBackend::new();
        let run = Run::new(vec![table(1, 0, 100, &backend), table(2, 100, 200, &backend)]);
        assert_eq!(run.overlapping_range(50, 150).len(), 2);
        assert_eq!(run.overlapping_range(0, 50).len(), 1);
        assert_eq!(run.overlapping_range(300, 400).len(), 0);
        let probe = table(3, 90, 110, &backend);
        assert_eq!(run.overlapping_table(&probe).len(), 2);
    }

    #[test]
    fn run_remove_add_replace() {
        let backend = InMemoryBackend::new();
        let mut run = Run::new(vec![table(1, 0, 100, &backend), table(2, 100, 200, &backend)]);
        let removed = run.remove_ids(&[1]);
        assert_eq!(removed.len(), 1);
        assert_eq!(run.len(), 1);
        run.add_tables(vec![table(3, 200, 300, &backend)]);
        assert_eq!(run.len(), 2);
        assert!(run.replace(2, None));
        assert_eq!(run.len(), 1);
        assert!(!run.replace(99, None));
        let t = table(4, 300, 400, &backend);
        assert!(run.replace(3, Some(t)));
        assert_eq!(run.tables()[0].meta.id, 4);
    }

    #[test]
    fn level_aggregates() {
        let backend = InMemoryBackend::new();
        let mut level = Level::new();
        assert!(level.is_empty());
        level.runs.push(Run::new(vec![table(1, 0, 100, &backend)]));
        level.runs.push(Run::new(vec![table(2, 0, 50, &backend), table(3, 50, 100, &backend)]));
        assert_eq!(level.run_count(), 2);
        assert_eq!(level.file_count(), 3);
        assert_eq!(level.total_entries(), 200);
        assert_eq!(level.all_tables().count(), 3);
        assert_eq!(level.tombstone_count(), 0);
        level.runs.push(Run::default());
        level.prune_empty_runs();
        assert_eq!(level.run_count(), 2);
    }
}
