//! Engine configuration — the knobs of Table 1 plus the Lethe-specific ones
//! (`D_th`, delete-tile granularity `h`, compaction policy selection).

use lethe_storage::clock::MICROS_PER_SEC;
use lethe_storage::{SyncPolicy, Timestamp};

/// How runs are merged across levels (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// At most one run per level; an incoming run is greedily sort-merged
    /// with the resident run.
    Leveling,
    /// A level accumulates up to `T` runs before they are merged together and
    /// pushed down.
    Tiering,
}

/// Which compaction strategy drives background maintenance.
///
/// The strategy selects the [`crate::compaction::CompactionPolicy`] the
/// embedding layer constructs; the tiered strategies additionally require
/// [`MergePolicy::Tiering`] so flushes append fresh runs instead of
/// sort-merging into the resident first level (the source of leveling's
/// write amplification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionStrategy {
    /// Whatever policy the embedding layer installs by default: FADE in
    /// `lethe-core`, plain saturation-driven compaction elsewhere. The
    /// default — selecting it changes nothing.
    Default,
    /// Size-tiered ([`crate::strategy::SizeTieredPolicy`]): bucket each
    /// level's runs by size class and merge a class once it accumulates
    /// `fan_in` runs.
    SizeTiered {
        /// Runs of one size class merged together (≥ 2).
        fan_in: usize,
    },
    /// Date-tiered ([`crate::strategy::DateTieredPolicy`]): bucket runs into
    /// aligned time windows over the delete key (the creation-timestamp
    /// attribute), windows growing by the ladder factor with age; windows
    /// never merge across boundaries, and a window wholly past `ttl_micros`
    /// is dropped as whole files without reading them.
    DateTiered {
        /// Width of the newest (base) time window in logical microseconds.
        base_window_micros: Timestamp,
        /// Runs of one window merged together (≥ 2); also the factor by
        /// which window widths grow per ladder rung.
        fan_in: usize,
        /// Retention TTL in logical microseconds: base windows wholly older
        /// than `now − ttl` are retired via whole-file drops. `None`
        /// disables drops (pure window-bucketed merging).
        ttl_micros: Option<Timestamp>,
    },
}

/// How a secondary range delete (on the delete key) is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondaryDeleteMode {
    /// The state-of-the-art fallback: read, merge and rewrite the entire tree
    /// (cost `O(N/B)`, independent of selectivity — paper §3.3).
    FullTreeCompaction,
    /// KiWi: use delete fence pointers to drop fully-covered pages without
    /// reading them and rewrite only the at most one partially-covered page
    /// per delete tile (paper §4.2.2).
    KiwiPageDrops,
}

/// Configuration of an LSM tree / Lethe engine instance.
///
/// Field names follow the symbols of Table 1 where applicable.
#[derive(Debug, Clone, PartialEq)]
pub struct LsmConfig {
    /// Size ratio `T` between consecutive levels.
    pub size_ratio: usize,
    /// Memory buffer capacity in disk pages (`P`).
    pub buffer_pages: usize,
    /// Entries per disk page (`B`).
    pub entries_per_page: usize,
    /// Average key-value entry size in bytes (`E`), used to size the buffer
    /// (`M = P · B · E`) and as the default payload size.
    pub entry_size: usize,
    /// Bloom filter budget in bits per entry (`m / N`).
    pub bits_per_key: f64,
    /// Leveling or tiering.
    pub merge_policy: MergePolicy,
    /// Pages per delete tile (`h`). `1` reproduces the classic sort-key-only
    /// layout; larger values trade lookup cost for cheaper secondary range
    /// deletes (paper §4.2.3).
    pub pages_per_delete_tile: usize,
    /// Maximum pages per on-disk file (the partial-compaction granularity).
    pub max_pages_per_file: usize,
    /// Delete persistence threshold `D_th` in microseconds of logical time.
    /// `None` disables TTL-driven compactions (state-of-the-art behaviour).
    pub delete_persistence_threshold: Option<Timestamp>,
    /// Ingestion rate `I` in entries per second; used when
    /// `auto_advance_clock` is on to advance the logical clock by `1/I` per
    /// ingested entry.
    pub ingestion_rate: u64,
    /// If `true`, every ingestion advances the logical clock by `1/I`.
    pub auto_advance_clock: bool,
    /// If `true`, point deletes first probe the filters and are dropped when
    /// the key cannot exist (FADE's blind-delete suppression, §4.1.5).
    pub suppress_blind_deletes: bool,
    /// How secondary (delete-key) range deletes are executed.
    pub secondary_delete_mode: SecondaryDeleteMode,
    /// Number of buckets in the system-wide key histograms used to estimate
    /// range-tombstone invalidation counts.
    pub histogram_buckets: usize,
    /// Upper bound of the sort-key / delete-key domain used by the
    /// histograms (keys above are clamped; purely an estimation aid).
    pub key_domain: u64,
    /// When the write-ahead log of a durable store fsyncs appends
    /// ([`SyncPolicy::Always`] keeps "logged before acknowledged" true
    /// against power failures; the relaxed policies trade a bounded loss
    /// window for throughput). Ignored by in-memory engines.
    pub wal_sync: SyncPolicy,
    /// Write backpressure, stage 1: once the first disk level holds at least
    /// this many runs (flushed buffers the background compactor has not
    /// merged down yet), writers are briefly slowed so the compactor can
    /// catch up. Only consulted when flushes/compactions run on a background
    /// worker; the inline mode compacts to completion on every flush.
    pub l0_slowdown_runs: usize,
    /// Write backpressure, stage 2: once the first disk level holds at least
    /// this many runs, writers *stall* (block) until the compactor drains it
    /// below the threshold. Must be ≥ `l0_slowdown_runs`.
    pub l0_stall_runs: usize,
    /// Memory budget of the shared block cache of decoded pages, in bytes.
    /// `0` (the default) disables caching: every read that reaches the disk
    /// levels pays a device access, which keeps the paper's I/O-count
    /// reproduction exact. A sharded store shares **one** cache of this size
    /// across all shards (hot shards naturally take a larger slice).
    pub block_cache_bytes: usize,
    /// If `true`, flush/compaction output pages are inserted into the block
    /// cache as they are written (*warming*), so reads immediately after a
    /// flush hit without going back to the device. Off by default: warming
    /// competes with genuinely hot read pages for cache space and adds one
    /// page copy per written page on the flush/compaction path.
    pub block_cache_warm_writes: bool,
    /// Which compaction strategy drives background maintenance.
    /// [`CompactionStrategy::Default`] keeps the embedding layer's policy
    /// (FADE for `lethe-core` engines) — existing configurations behave
    /// exactly as before.
    pub compaction_strategy: CompactionStrategy,
}

impl Default for LsmConfig {
    /// The reference configuration of Table 1: `T = 10`, `P = 512` pages,
    /// `B = 4` entries/page, `E = 1024` bytes (16 MB buffer), 10 bits/key.
    fn default() -> Self {
        LsmConfig {
            size_ratio: 10,
            buffer_pages: 512,
            entries_per_page: 4,
            entry_size: 1024,
            bits_per_key: 10.0,
            merge_policy: MergePolicy::Leveling,
            pages_per_delete_tile: 1,
            max_pages_per_file: 256,
            delete_persistence_threshold: None,
            ingestion_rate: 1024,
            auto_advance_clock: true,
            suppress_blind_deletes: false,
            secondary_delete_mode: SecondaryDeleteMode::FullTreeCompaction,
            histogram_buckets: 256,
            key_domain: u64::MAX,
            wal_sync: SyncPolicy::Always,
            l0_slowdown_runs: 8,
            l0_stall_runs: 24,
            block_cache_bytes: 0,
            block_cache_warm_writes: false,
            compaction_strategy: CompactionStrategy::Default,
        }
    }
}

impl LsmConfig {
    /// A small configuration convenient for tests: tiny buffer, small pages.
    pub fn small_for_test() -> Self {
        LsmConfig {
            size_ratio: 4,
            buffer_pages: 4,
            entries_per_page: 4,
            entry_size: 64,
            bits_per_key: 10.0,
            max_pages_per_file: 8,
            histogram_buckets: 64,
            key_domain: 1 << 20,
            ..Default::default()
        }
    }

    /// Buffer capacity `M = P · B · E` in bytes.
    pub fn buffer_capacity_bytes(&self) -> usize {
        self.buffer_pages * self.entries_per_page * self.entry_size
    }

    /// Number of entries the buffer holds when full (`P · B`).
    pub fn buffer_capacity_entries(&self) -> usize {
        self.buffer_pages * self.entries_per_page
    }

    /// Capacity in bytes of disk level `level` (1-based: level 1 is the first
    /// disk level), `M · T^level`.
    pub fn level_capacity_bytes(&self, level: usize) -> u64 {
        let mut cap = self.buffer_capacity_bytes() as u64;
        for _ in 0..level {
            cap = cap.saturating_mul(self.size_ratio as u64);
        }
        cap
    }

    /// Entries per delete tile (`h · B`).
    pub fn entries_per_tile(&self) -> usize {
        self.pages_per_delete_tile * self.entries_per_page
    }

    /// Entries per file (`max_pages_per_file · B`).
    pub fn entries_per_file(&self) -> usize {
        self.max_pages_per_file * self.entries_per_page
    }

    /// Microseconds of logical time per ingested entry (`1/I`).
    pub fn micros_per_ingest(&self) -> u64 {
        (MICROS_PER_SEC / self.ingestion_rate.max(1)).max(1)
    }

    /// Sets the delete persistence threshold from seconds of logical time.
    pub fn with_delete_persistence_secs(mut self, secs: f64) -> Self {
        self.delete_persistence_threshold = Some((secs * MICROS_PER_SEC as f64) as Timestamp);
        self
    }

    /// Validates internal consistency (non-zero knobs, tile divides file).
    pub fn validate(&self) -> Result<(), String> {
        if self.size_ratio < 2 {
            return Err("size_ratio must be at least 2".into());
        }
        if self.buffer_pages == 0 || self.entries_per_page == 0 || self.entry_size == 0 {
            return Err("buffer_pages, entries_per_page and entry_size must be positive".into());
        }
        if self.pages_per_delete_tile == 0 {
            return Err("pages_per_delete_tile (h) must be at least 1".into());
        }
        if self.max_pages_per_file == 0 {
            return Err("max_pages_per_file must be at least 1".into());
        }
        if !self.max_pages_per_file.is_multiple_of(self.pages_per_delete_tile) {
            return Err(format!(
                "pages per file ({}) must be a multiple of pages per delete tile ({})",
                self.max_pages_per_file, self.pages_per_delete_tile
            ));
        }
        if self.bits_per_key <= 0.0 {
            return Err("bits_per_key must be positive".into());
        }
        if self.l0_slowdown_runs == 0 || self.l0_stall_runs < self.l0_slowdown_runs {
            return Err(format!(
                "backpressure thresholds must satisfy 1 <= l0_slowdown_runs ({}) <= l0_stall_runs ({})",
                self.l0_slowdown_runs, self.l0_stall_runs
            ));
        }
        match self.compaction_strategy {
            CompactionStrategy::Default => {}
            CompactionStrategy::SizeTiered { fan_in } => {
                if fan_in < 2 {
                    return Err("size-tiered fan_in must be at least 2".into());
                }
                if self.merge_policy != MergePolicy::Tiering {
                    return Err(
                        "size-tiered compaction requires MergePolicy::Tiering (flushes must \
                         append runs, not merge into the resident level)"
                            .into(),
                    );
                }
            }
            CompactionStrategy::DateTiered { base_window_micros, fan_in, .. } => {
                if base_window_micros == 0 {
                    return Err("date-tiered base_window_micros must be positive".into());
                }
                if fan_in < 2 {
                    return Err("date-tiered fan_in must be at least 2".into());
                }
                if self.merge_policy != MergePolicy::Tiering {
                    return Err(
                        "date-tiered compaction requires MergePolicy::Tiering (flushes must \
                         append runs, not merge into the resident level)"
                            .into(),
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reference_values() {
        let c = LsmConfig::default();
        assert_eq!(c.size_ratio, 10);
        assert_eq!(c.buffer_pages, 512);
        assert_eq!(c.entries_per_page, 4);
        assert_eq!(c.entry_size, 1024);
        // M = P * B * E = 512 * 4 * 1024 = 2 MiB... the paper's Table 1 lists
        // 16 MB for an 8 KB page; our page is B·E = 4 KiB, so M = 2 MiB.
        assert_eq!(c.buffer_capacity_bytes(), 512 * 4 * 1024);
        assert_eq!(c.buffer_capacity_entries(), 2048);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn level_capacities_grow_by_t() {
        let c = LsmConfig::default();
        let m = c.buffer_capacity_bytes() as u64;
        assert_eq!(c.level_capacity_bytes(0), m);
        assert_eq!(c.level_capacity_bytes(1), m * 10);
        assert_eq!(c.level_capacity_bytes(3), m * 1000);
    }

    #[test]
    fn derived_quantities() {
        let mut c = LsmConfig::small_for_test();
        c.pages_per_delete_tile = 2;
        assert_eq!(c.entries_per_tile(), 8);
        assert_eq!(c.entries_per_file(), 32);
        assert_eq!(LsmConfig { ingestion_rate: 1_000_000, ..c.clone() }.micros_per_ingest(), 1);
        assert_eq!(LsmConfig { ingestion_rate: 1024, ..c }.micros_per_ingest(), 976);
    }

    #[test]
    fn with_delete_persistence_secs_sets_threshold() {
        let c = LsmConfig::default().with_delete_persistence_secs(60.0);
        assert_eq!(c.delete_persistence_threshold, Some(60_000_000));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // per-field mutation is the point here
    fn validation_catches_bad_configs() {
        let mut c = LsmConfig::default();
        c.size_ratio = 1;
        assert!(c.validate().is_err());

        let mut c = LsmConfig::default();
        c.pages_per_delete_tile = 0;
        assert!(c.validate().is_err());

        let mut c = LsmConfig::default();
        c.pages_per_delete_tile = 3;
        c.max_pages_per_file = 256; // not a multiple of 3
        assert!(c.validate().is_err());

        let mut c = LsmConfig::default();
        c.bits_per_key = 0.0;
        assert!(c.validate().is_err());

        let mut c = LsmConfig::default();
        c.entries_per_page = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn strategy_validation() {
        // tiered strategies need tiering flushes
        let mut c = LsmConfig {
            compaction_strategy: CompactionStrategy::SizeTiered { fan_in: 4 },
            ..LsmConfig::default()
        };
        assert!(c.validate().is_err());
        c.merge_policy = MergePolicy::Tiering;
        assert!(c.validate().is_ok());
        c.compaction_strategy = CompactionStrategy::SizeTiered { fan_in: 1 };
        assert!(c.validate().is_err());

        let mut c = LsmConfig {
            merge_policy: MergePolicy::Tiering,
            compaction_strategy: CompactionStrategy::DateTiered {
                base_window_micros: 1_000_000,
                fan_in: 4,
                ttl_micros: Some(60_000_000),
            },
            ..LsmConfig::default()
        };
        assert!(c.validate().is_ok());
        c.compaction_strategy =
            CompactionStrategy::DateTiered { base_window_micros: 0, fan_in: 4, ttl_micros: None };
        assert!(c.validate().is_err());
    }
}
