//! The page-retirement choke point.
//!
//! Every engine-path release of a device page goes through this module. The
//! repo lint (`cargo run -p lethe-lint`) bans raw
//! [`StorageBackend::drop_page`] calls everywhere else (outside the
//! cache-invalidating device wrapper in `lethe_storage::cache` and test
//! code), because a drop issued from an arbitrary call site is how two
//! classes of bugs slip in:
//!
//! 1. **Cache resurrection** — dropping on an inner device while a
//!    [`CachedBackend`](lethe_storage::CachedBackend) still holds the page
//!    resident would serve deleted data from memory. Routing every drop
//!    through the engine's *outermost* device (which is the cached wrapper
//!    when a cache is configured) keeps invalidate-before-drop a structural
//!    property instead of a convention.
//! 2. **Premature reclamation** — dropping a page that a pinned snapshot can
//!    still reach. The version set's deferred-reclamation logic
//!    ([`VersionSet::collect_garbage`](crate::version::VersionSet::collect_garbage))
//!    is the only place with enough information to decide a page is
//!    unreachable, and it calls in here once it has.
//!
//! The helpers are deliberately thin: the *policy* (when a page may die)
//! stays with the callers listed below; this module only centralises the
//! *mechanism* so the lint has one place to point at.

use lethe_storage::{PageId, StorageBackend};

/// Releases one page the caller has proven unreachable (reference count
/// reached zero, or the durable manifest does not reference it). Errors on
/// already-missing pages are swallowed: reclamation must be idempotent
/// across crash recovery, which may retire the same page twice.
pub fn retire_page(backend: &dyn StorageBackend, id: PageId) {
    // lint:allow(raw-drop-page): this is the choke point the rule funnels into
    let _ = backend.drop_page(id);
}

/// Releases every page of a file that was compacted away and is referenced
/// by no version, snapshot or reference count any more.
pub fn retire_pages<I: IntoIterator<Item = PageId>>(backend: &dyn StorageBackend, ids: I) -> usize {
    let mut released = 0;
    for id in ids {
        retire_page(backend, id);
        released += 1;
    }
    released
}

/// RAII cover for freshly written pages that are not yet reachable from any
/// table or manifest record.
///
/// Between `backend.write_page(…)` and the moment the resulting id is
/// registered in a durable structure, the only reference to the page is a
/// local variable — any `?`/early return in that window would leak the page
/// until the next full reclamation sweep. Builders therefore route such
/// windows through a reservation: [`add`](Self::add) each id right after
/// the write, and [`defuse`](Self::defuse) once ownership has transferred.
/// If the function unwinds out through an error path instead, `Drop`
/// retires every still-covered page. (The repo lint's `leak-paths` rule
/// checks that every fallible page-writing function does this.)
pub struct PageReservation<'a> {
    backend: &'a dyn StorageBackend,
    ids: Vec<PageId>,
}

impl<'a> PageReservation<'a> {
    /// Opens an empty reservation against the device the pages live on.
    pub fn new(backend: &'a dyn StorageBackend) -> PageReservation<'a> {
        PageReservation { backend, ids: Vec::new() }
    }

    /// Covers one freshly written page.
    pub fn add(&mut self, id: PageId) {
        self.ids.push(id);
    }

    /// Releases the cover without retiring anything: the ids are now owned
    /// by a table / version / manifest record.
    pub fn defuse(mut self) {
        self.ids.clear();
    }
}

impl Drop for PageReservation<'_> {
    fn drop(&mut self) {
        for id in self.ids.drain(..) {
            retire_page(self.backend, id);
        }
    }
}
