//! The page-retirement choke point.
//!
//! Every engine-path release of a device page goes through this module. The
//! repo lint (`cargo run -p lethe-lint`) bans raw
//! [`StorageBackend::drop_page`] calls everywhere else (outside the
//! cache-invalidating device wrapper in `lethe_storage::cache` and test
//! code), because a drop issued from an arbitrary call site is how two
//! classes of bugs slip in:
//!
//! 1. **Cache resurrection** — dropping on an inner device while a
//!    [`CachedBackend`](lethe_storage::CachedBackend) still holds the page
//!    resident would serve deleted data from memory. Routing every drop
//!    through the engine's *outermost* device (which is the cached wrapper
//!    when a cache is configured) keeps invalidate-before-drop a structural
//!    property instead of a convention.
//! 2. **Premature reclamation** — dropping a page that a pinned snapshot can
//!    still reach. The version set's deferred-reclamation logic
//!    ([`VersionSet::collect_garbage`](crate::version::VersionSet::collect_garbage))
//!    is the only place with enough information to decide a page is
//!    unreachable, and it calls in here once it has.
//!
//! The helpers are deliberately thin: the *policy* (when a page may die)
//! stays with the callers listed below; this module only centralises the
//! *mechanism* so the lint has one place to point at.

use lethe_storage::{PageId, StorageBackend};

/// Releases one page the caller has proven unreachable (reference count
/// reached zero, or the durable manifest does not reference it). Errors on
/// already-missing pages are swallowed: reclamation must be idempotent
/// across crash recovery, which may retire the same page twice.
pub fn retire_page(backend: &dyn StorageBackend, id: PageId) {
    // lint:allow(raw-drop-page): this is the choke point the rule funnels into
    let _ = backend.drop_page(id);
}

/// Releases every page of a file that was compacted away and is referenced
/// by no version, snapshot or reference count any more.
pub fn retire_pages<I: IntoIterator<Item = PageId>>(backend: &dyn StorageBackend, ids: I) -> usize {
    let mut released = 0;
    for id in ids {
        retire_page(backend, id);
        released += 1;
    }
    released
}
