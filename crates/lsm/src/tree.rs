//! The LSM tree engine.
//!
//! [`LsmTree`] wires together the memtable, the leveled/tiered on-device
//! structure, a pluggable [`CompactionPolicy`]
//! and the KiWi file layout into a complete storage engine: puts, point and
//! range deletes on the sort key, secondary range deletes on the delete key,
//! point lookups, range scans, flushing and compaction.
//!
//! The same type serves as the state-of-the-art baseline (saturation-driven
//! policies, `h = 1`, full-tree compaction for secondary deletes) and as the
//! substrate that the `lethe-core` crate configures into Lethe (FADE policy,
//! `h > 1`, KiWi page drops).
//!
//! ## Concurrency model
//!
//! The tree is split into a *write surface* (`&mut self`: puts, deletes,
//! flushes, compactions — serialised by the owner, e.g. a shard mutex) and a
//! *read surface* that is lock-free with respect to the writer: disk levels
//! live in an immutable, `Arc`-shared [`VersionSet`] and the write buffer in
//! shared `active`/`frozen` memtables, so [`TreeReader`] handles obtained
//! from [`LsmTree::reader`] serve `get`/`range`/secondary scans from any
//! thread while flushes and compactions run. Structural work is further
//! split into **plan → execute → apply** phases ([`LsmTree::plan_job`],
//! [`JobPlan::execute`], [`LsmTree::apply_job`]): planning and applying need
//! the write lock but are cheap pointer work, while the expensive execute
//! phase (page reads, merging, building output files) runs against pinned
//! immutable state and needs no lock at all. A background worker (see
//! `lethe-core`) drives exactly this cycle; the inline `flush`/`maintain`
//! paths drive the same cycle synchronously.

use crate::compaction::{CompactionPolicy, CompactionTask, TreeView};
use crate::config::{LsmConfig, MergePolicy, SecondaryDeleteMode};
use crate::cursor::{
    probe, EntryCursor, MergeIterator, SharedSliceCursor, SsTableCursor, VecCursor,
};
use crate::level::{Level, Run};
use crate::merge::merge_entries;
use crate::snapshot::SnapshotTracker;
use crate::sstable::{SecondaryDeleteStats, SsTable};
use crate::stats::{ContentSnapshot, TreeStats};
use crate::version::{Version, VersionSet};
use bytes::Bytes;
use crate::batch::WriteBatch;
use lethe_storage::{
    BatchOp, DeleteKey, Entry, EntryKind, FailPoint, Histogram, IoSnapshot, LogicalClock,
    Manifest, ManifestState, MemTable, PageId, Result, SeqNum, SortKey, StorageBackend,
    StorageError, Timestamp, Wal, WalRecord,
};
use lethe_sync::{LockRank, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Safety bound on back-to-back compactions triggered by a single flush.
const MAX_MAINTENANCE_ROUNDS: usize = 10_000;

/// What [`LsmTree::recover`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Files rebuilt from the manifest (Bloom filters and fence pointers
    /// re-derived from their pages).
    pub files_recovered: usize,
    /// Device pages released because the durable manifest state did not
    /// reference them (half-written flush output, pages dropped after the
    /// last committed edit).
    pub pages_released: usize,
    /// WAL records replayed on top of the recovered tree.
    pub wal_records_replayed: usize,
}

/// Who runs flushes and compactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// The classic single-threaded behaviour: a put that fills the buffer
    /// flushes and runs the compaction loop inline before returning.
    #[default]
    Inline,
    /// A filled buffer is only *frozen*; a background worker owned by the
    /// embedding layer drains it through [`LsmTree::plan_job`] /
    /// [`JobPlan::execute`] / [`LsmTree::apply_job`], and the writer applies
    /// backpressure via [`LsmTree::write_stalled`].
    Background,
}

/// Lock-free read-side operation counters (the read surface has no `&mut`
/// access to [`TreeStats`]); folded into [`LsmTree::stats`] on demand.
#[derive(Debug, Default)]
struct ReadCounters {
    point_lookups: AtomicU64,
    range_lookups: AtomicU64,
}

/// An immutable snapshot of a drained write buffer, awaiting its flush.
///
/// Readers consult it between the moment the active memtable is frozen and
/// the moment the flushed version is installed, so no acknowledged write is
/// ever invisible.
#[derive(Debug, Clone)]
struct FrozenBuffer {
    /// Point entries, sorted on the sort key, one (newest) version per key.
    entries: Vec<Entry>,
    /// Range tombstones in insertion order.
    range_tombstones: Vec<Entry>,
    /// Insertion time of the oldest tombstone in the buffer.
    oldest_tombstone_ts: Option<Timestamp>,
    /// WAL position at freeze time: the flush that persists this buffer may
    /// discard exactly the first `wal_upto` records, keeping records that
    /// were appended concurrently with the background flush.
    wal_upto: u64,
}

impl FrozenBuffer {
    fn get(&self, sort_key: SortKey) -> Option<Entry> {
        let point = self
            .entries
            .binary_search_by(|e| e.sort_key.cmp(&sort_key))
            .ok()
            .map(|i| self.entries[i].clone());
        let covering_rt = self
            .range_tombstones
            .iter()
            .filter(|t| t.covers(sort_key))
            .max_by_key(|t| t.seqnum);
        Entry::resolve_point_read(sort_key, point, covering_rt)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn purge_by_delete_key(&mut self, lo: DeleteKey, hi: DeleteKey) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|e| e.is_tombstone() || e.delete_key < lo || e.delete_key >= hi);
        before - self.entries.len()
    }
}

/// Adapter exposing a pinned frozen buffer's point entries as a sorted
/// slice, so a scan streams them through a [`SharedSliceCursor`] instead of
/// copying the buffer.
#[derive(Clone)]
struct FrozenEntries(Arc<FrozenBuffer>);

impl AsRef<[Entry]> for FrozenEntries {
    fn as_ref(&self) -> &[Entry] {
        &self.0.entries
    }
}

/// The shared write-buffer state: the active memtable plus at most one
/// frozen buffer being flushed. Writers mutate `active` under its write
/// lock; readers take brief read locks in the order the data moves
/// (active → frozen → version set), so an entry is always visible in at
/// least one of the three places.
#[derive(Debug)]
struct MemState {
    active: RwLock<MemTable>,
    /// `Arc` so the flush plan pins the buffer with a pointer clone instead
    /// of copying it under the shard lock; the rare in-place mutation
    /// (secondary-delete purge, which runs with the worker paused) goes
    /// through [`Arc::make_mut`].
    frozen: RwLock<Option<Arc<FrozenBuffer>>>,
}

impl Default for MemState {
    fn default() -> Self {
        MemState {
            active: RwLock::new(LockRank::MemtableActive, MemTable::default()),
            frozen: RwLock::new(LockRank::MemtableFrozen, None),
        }
    }
}

/// A cheap-to-clone, `Send + Sync` handle serving snapshot-isolated reads
/// without the tree's write lock.
///
/// Obtained from [`LsmTree::reader`]. Every operation pins the current
/// [`Version`] (one `Arc` clone) and reads the shared memtables under brief
/// read locks, so a reader is never blocked by a running flush or
/// compaction, and never observes a half-committed version: version
/// installation is a single pointer swap, and the pages of a pinned version
/// are not reclaimed until the pin is dropped.
///
/// Consistency: point lookups are linearizable with respect to the writer
/// (a write is visible the moment it is acknowledged). Multi-key operations
/// (`range`, `scan_by_delete_key`) read the buffer and the version at
/// slightly different instants and are therefore *weakly* consistent with
/// concurrent writers — exactly the contract the sharded front-end already
/// documents for fan-out reads.
#[derive(Clone)]
pub struct TreeReader {
    config: LsmConfig,
    backend: Arc<dyn StorageBackend>,
    mem: Arc<MemState>,
    versions: Arc<VersionSet>,
    counters: Arc<ReadCounters>,
}

impl TreeReader {
    /// Point lookup: returns the current value of `sort_key`, or `None` if
    /// the key does not exist or has been deleted.
    pub fn get(&self, sort_key: SortKey) -> Result<Option<Bytes>> {
        self.counters.point_lookups.fetch_add(1, Ordering::Relaxed);
        Ok(match self.get_entry(sort_key)? {
            Some(e) if e.kind == EntryKind::Put => Some(e.value),
            _ => None,
        })
    }

    /// Newest version (possibly a tombstone) of `sort_key`, or `None`.
    fn get_entry(&self, sort_key: SortKey) -> Result<Option<Entry>> {
        if let Some(e) = self.mem.active.read().get(sort_key) {
            return Ok(Some(e));
        }
        if let Some(f) = self.mem.frozen.read().as_ref() {
            if let Some(e) = f.get(sort_key) {
                return Ok(Some(e));
            }
        }
        let version = self.versions.current();
        self.disk_entry(&version, sort_key)
    }

    /// Newest on-device version of `sort_key` within a pinned version.
    fn disk_entry(&self, version: &Version, sort_key: SortKey) -> Result<Option<Entry>> {
        disk_point_lookup(version, self.backend.as_ref(), sort_key)
    }

    /// Builds the streaming merge a sort-key range scan runs on: one cursor
    /// per source (active snapshot, pinned frozen buffer, fence-pruned lazy
    /// file cursors of the pinned version), newest source first, plus every
    /// source's range tombstones for the shadowing window. The returned
    /// version pin must be held for as long as the merge is consumed.
    fn build_range_merge(
        &self,
        lo: SortKey,
        hi: SortKey,
    ) -> Result<(MergeIterator, Arc<Version>)> {
        let mut cursors: Vec<Box<dyn EntryCursor>> = Vec::new();
        let mut rts: Vec<Entry> = Vec::new();
        {
            // the active memtable is mutable, so its in-range slice is the
            // one source a streaming scan snapshots eagerly (bounded by the
            // buffer capacity, not by the scan length)
            let active = self.mem.active.read();
            cursors.push(Box::new(VecCursor::from_sorted(active.range(lo, hi))));
            rts.extend(active.range_tombstones().iter().cloned());
        }
        if let Some(f) = self.mem.frozen.read().as_ref() {
            let start = f.entries.partition_point(|e| e.sort_key < lo);
            let end = f.entries.partition_point(|e| e.sort_key < hi);
            rts.extend(f.range_tombstones.iter().cloned());
            cursors.push(Box::new(SharedSliceCursor::new(
                FrozenEntries(Arc::clone(f)),
                start,
                end,
            )));
        }
        let version = self.versions.current();
        for table in version.overlapping_tables(lo, hi) {
            rts.extend(table.range_tombstones.iter().cloned());
            cursors.push(Box::new(SsTableCursor::new(
                table,
                Arc::clone(&self.backend),
                lo,
                hi,
                false,
            )));
        }
        Ok((MergeIterator::new(cursors, rts, true)?, version))
    }

    /// Range lookup on the sort key: returns the live `(key, value)` pairs in
    /// `[lo, hi)`, newest version per key, in key order.
    ///
    /// Internally this drains [`TreeReader::iter_range`]'s streaming merge;
    /// callers that do not need the whole result at once should use the
    /// iterator directly.
    pub fn range(&self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        self.counters.range_lookups.fetch_add(1, Ordering::Relaxed);
        if hi <= lo {
            return Ok(Vec::new());
        }
        let (mut merge, _pin) = self.build_range_merge(lo, hi)?;
        let mut out = Vec::new();
        while let Some(e) = merge.next_merged()? {
            out.push((e.sort_key, e.value));
        }
        Ok(out)
    }

    /// Streaming range scan over `[lo, hi)`: yields the live `(key, value)`
    /// pairs in key order, newest version per key, decoding file pages
    /// lazily one delete tile at a time as the iterator is advanced — a long
    /// scan that stops early never reads the tail, and no scan materialises
    /// the tables it crosses.
    ///
    /// The iterator owns a stable snapshot taken at creation: the current
    /// version is pinned (its pages cannot be reclaimed by concurrent
    /// flushes, compactions or secondary deletes until the iterator is
    /// dropped) and the write buffer's in-range slice is captured, so the
    /// stream is unaffected by concurrent writes and maintenance.
    pub fn iter_range(&self, lo: SortKey, hi: SortKey) -> Result<RangeIter> {
        self.counters.range_lookups.fetch_add(1, Ordering::Relaxed);
        if hi <= lo {
            return Ok(RangeIter { merge: None, _pin: None });
        }
        let (merge, pin) = self.build_range_merge(lo, hi)?;
        Ok(RangeIter { merge: Some(merge), _pin: Some(pin) })
    }

    /// Secondary range lookup: returns every live entry whose **delete key**
    /// lies in `[d_lo, d_hi)`.
    pub fn secondary_range_scan(&self, d_lo: DeleteKey, d_hi: DeleteKey) -> Result<Vec<Entry>> {
        self.counters.range_lookups.fetch_add(1, Ordering::Relaxed);
        if d_hi <= d_lo {
            return Ok(Vec::new());
        }
        let qualifies =
            |e: &Entry| !e.is_tombstone() && e.delete_key >= d_lo && e.delete_key < d_hi;
        let mut hits: Vec<Entry> = self.mem.active.read().iter().filter(|e| qualifies(e)).cloned().collect();
        if let Some(f) = self.mem.frozen.read().as_ref() {
            hits.extend(f.entries.iter().filter(|e| qualifies(e)).cloned());
        }
        // the install counter is read BEFORE the version is pinned: an
        // install racing these two reads then shows up as a counter
        // mismatch in `verify_newest` (counter already advanced past the
        // captured generation), forcing the fresh re-pin. Read the other
        // way around, a racing install could be counted into `generation`
        // while the pin still holds the pre-install version, and the
        // short-circuit would validate candidates against a stale snapshot.
        let generation = self.versions.installs();
        let version = self.versions.current();
        for level in &version.levels {
            for run in &level.runs {
                for table in run.tables() {
                    // KiWi fence pruning at file granularity: a file whose
                    // delete-key bounds cannot intersect the scanned range
                    // holds no qualifying page, so none of its delete
                    // fences (let alone pages) need to be consulted
                    let meta = &table.meta;
                    if meta.num_entries == 0
                        || meta.max_delete < d_lo
                        || meta.min_delete >= d_hi
                    {
                        continue;
                    }
                    hits.extend(table.secondary_range_scan(d_lo, d_hi, self.backend.as_ref())?);
                }
            }
        }
        // keep only the globally newest version of each key, and only if that
        // version is live and still qualifies
        hits.sort_by(|a, b| a.sort_key.cmp(&b.sort_key).then_with(|| b.seqnum.cmp(&a.seqnum)));
        let mut out: Vec<Entry> = Vec::with_capacity(hits.len());
        for e in hits {
            if out.last().map(|p: &Entry| p.sort_key) == Some(e.sort_key) {
                continue;
            }
            // verify this is the newest version tree-wide (it may have been
            // updated or deleted by a newer entry outside the delete-key
            // range)
            if let Some(newest) = self.verify_newest(&version, generation, e.sort_key)? {
                if newest.seqnum == e.seqnum && newest.kind == EntryKind::Put {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }

    /// The newest tree-wide version of `sort_key`, for re-validating a scan
    /// candidate collected against `pinned` (taken when the version set's
    /// install counter read `generation`).
    ///
    /// The buffered sources are always consulted live (they mutate without
    /// version installs). For the disk portion the collection-time pin is
    /// reused when no version has been installed since — skipping the
    /// per-candidate re-pin (version lock + `Arc` bump) the seed paid on
    /// every key — and only a mismatch falls back to a fresh pin.
    ///
    /// Safety of the short-circuit against a concurrent flush: `apply_job`
    /// installs the new version *before* clearing the frozen slot, and the
    /// frozen slot's lock synchronises this thread with the worker. So if an
    /// entry has left the buffers by the time they are read here, the
    /// covering install has already happened, the counter check below
    /// observes it, and the fresh re-pin finds the entry at its new home. An
    /// acknowledged write can therefore never be missed by both probes.
    fn verify_newest(
        &self,
        pinned: &Arc<Version>,
        generation: u64,
        sort_key: SortKey,
    ) -> Result<Option<Entry>> {
        if let Some(e) = self.mem.active.read().get(sort_key) {
            return Ok(Some(e));
        }
        if let Some(f) = self.mem.frozen.read().as_ref() {
            if let Some(e) = f.get(sort_key) {
                return Ok(Some(e));
            }
        }
        if self.versions.installs() == generation {
            self.disk_entry(pinned, sort_key)
        } else {
            let fresh = self.versions.current();
            self.disk_entry(&fresh, sort_key)
        }
    }

    /// Returns `true` if `sort_key` may exist in the tree (memtable check
    /// plus Bloom probes; no page reads). Used for blind-delete suppression.
    pub fn key_may_exist(&self, sort_key: SortKey) -> Result<bool> {
        if self.mem.active.read().get(sort_key).is_some() {
            return Ok(true);
        }
        if let Some(f) = self.mem.frozen.read().as_ref() {
            if f.get(sort_key).is_some() || !f.range_tombstones.is_empty() {
                return Ok(true);
            }
        }
        let stats = self.backend.stats();
        let version = self.versions.current();
        for level in &version.levels {
            for run in &level.runs {
                for table in run.tables() {
                    if !table.key_in_range(sort_key) {
                        continue;
                    }
                    if !table.range_tombstones.is_empty() {
                        return Ok(true);
                    }
                    if let Some(tile_idx) = table.tile_fences.locate(sort_key) {
                        let tile = &table.tiles[tile_idx];
                        stats.record_bloom_probes(tile.pages.len() as u64);
                        if tile.pages.iter().any(|p| {
                            sort_key >= p.min_sort
                                && sort_key <= p.max_sort
                                && p.bloom.may_contain(sort_key)
                        }) {
                            return Ok(true);
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    /// Pins and returns the current version (white-box snapshot access for
    /// tests and tools).
    pub fn pin_version(&self) -> Arc<Version> {
        self.versions.current()
    }

    /// Number of runs in the first disk level — the write-backpressure
    /// signal, exposed on the reader so the check needs no shard lock.
    pub fn l0_run_count(&self) -> usize {
        self.versions.current().l0_run_count()
    }

    /// True when the writer should stall (full active buffer behind an
    /// unflushed frozen one); see [`LsmTree::write_stalled`]. Exposed on the
    /// reader so backpressure checks need no shard lock.
    pub fn write_stalled(&self) -> bool {
        // active before frozen: the `&&` keeps its first operand's guard
        // alive across the second, so this order must match the lock ranks
        // (MemtableActive < MemtableFrozen) — the reverse order was a real
        // rank inversion against the freeze path
        self.mem.active.read().size_bytes() >= self.config.buffer_capacity_bytes()
            && self.mem.frozen.read().is_some()
    }
}

/// A streaming range scan over a stable snapshot of one tree; obtained from
/// [`TreeReader::iter_range`] (or `Lethe::iter_range` in `lethe-core`).
///
/// Yields `Result<(key, value)>` in ascending key order, newest version per
/// key, tombstones resolved. Pages are decoded lazily as the iterator is
/// advanced, so partial consumption (paging, `take(n)`, early break) only
/// pays for the prefix actually read. The iterator pins the version it was
/// created against: concurrent flushes and compactions can neither change
/// its results nor reclaim the pages it still has to visit. After an I/O
/// error the iterator is fused (yields `None` forever).
pub struct RangeIter {
    merge: Option<MergeIterator>,
    /// Pins the snapshot's disk pages for the lifetime of the scan.
    _pin: Option<Arc<Version>>,
}

impl Iterator for RangeIter {
    type Item = Result<(SortKey, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        let merge = self.merge.as_mut()?;
        match merge.next_merged() {
            Ok(Some(e)) => Some(Ok((e.sort_key, e.value))),
            Ok(None) => {
                self.merge = None;
                None
            }
            Err(e) => {
                self.merge = None;
                Some(Err(e))
            }
        }
    }
}

/// Newest on-device version of `sort_key` within a pinned version, shared
/// by the live reader and frozen snapshots.
fn disk_point_lookup(
    version: &Version,
    backend: &dyn StorageBackend,
    sort_key: SortKey,
) -> Result<Option<Entry>> {
    let stats = backend.stats();
    for level in &version.levels {
        for run in &level.runs {
            // a key normally maps to one file, but range tombstones can
            // stretch a file's range over its neighbours
            let mut candidate: Option<Entry> = None;
            for table in run.tables() {
                if !table.key_in_range(sort_key) {
                    continue;
                }
                if let Some(e) = table.get(sort_key, backend, &stats)? {
                    candidate = match candidate {
                        Some(c) if c.seqnum >= e.seqnum => Some(c),
                        _ => Some(e),
                    };
                }
            }
            if candidate.is_some() {
                return Ok(candidate);
            }
        }
    }
    Ok(None)
}

/// A frozen point-in-time view of one tree, produced by
/// [`LsmTree::capture_snapshot`] while the embedding layer holds the tree's
/// write serialisation (the sharded front-end captures all shards under
/// their engine locks so one seqnum fence covers the whole store).
///
/// The capture is three pointers plus one bounded copy: the active
/// memtable's entries are cloned (bounded by the buffer capacity), the
/// frozen buffer — if one is pending flush — is pinned by `Arc` (the rare
/// in-place mutation goes through `Arc::make_mut`, leaving pinned clones
/// untouched), and the current [`Version`] is pinned, which defers page
/// reclamation of its tables for as long as the snapshot lives. Subsequent
/// writes, flushes, compactions and secondary deletes therefore cannot
/// change what this view returns.
#[derive(Clone)]
pub struct TreeSnapshot {
    backend: Arc<dyn StorageBackend>,
    /// The capture-time active buffer, reusing the frozen-buffer shape so
    /// scans stream it through the same shared-slice cursor.
    active: Arc<FrozenBuffer>,
    frozen: Option<Arc<FrozenBuffer>>,
    version: Arc<Version>,
}

impl TreeSnapshot {
    /// Point lookup at the snapshot: the value of `sort_key` as of capture
    /// time, or `None` if it did not exist or was deleted.
    pub fn get(&self, sort_key: SortKey) -> Result<Option<Bytes>> {
        Ok(match self.get_entry(sort_key)? {
            Some(e) if e.kind == EntryKind::Put => Some(e.value),
            _ => None,
        })
    }

    /// Newest captured version (possibly a tombstone) of `sort_key`.
    fn get_entry(&self, sort_key: SortKey) -> Result<Option<Entry>> {
        if let Some(e) = self.active.get(sort_key) {
            return Ok(Some(e));
        }
        if let Some(f) = &self.frozen {
            if let Some(e) = f.get(sort_key) {
                return Ok(Some(e));
            }
        }
        disk_point_lookup(&self.version, self.backend.as_ref(), sort_key)
    }

    /// Builds the k-way merge of the captured sources over `[lo, hi)`,
    /// newest source first — the frozen twin of
    /// [`TreeReader::build_range_merge`]. `drop_tombstones` selects between
    /// the user-facing view (resolved, tombstones consumed) and the
    /// checkpoint stream (full entries, tombstones retained).
    fn build_merge(&self, lo: SortKey, hi: SortKey, drop_tombstones: bool) -> Result<MergeIterator> {
        let mut cursors: Vec<Box<dyn EntryCursor>> = Vec::new();
        let mut rts: Vec<Entry> = Vec::new();
        for buf in [Some(&self.active), self.frozen.as_ref()].into_iter().flatten() {
            let start = buf.entries.partition_point(|e| e.sort_key < lo);
            let end = buf.entries.partition_point(|e| e.sort_key < hi);
            rts.extend(buf.range_tombstones.iter().cloned());
            cursors.push(Box::new(SharedSliceCursor::new(FrozenEntries(Arc::clone(buf)), start, end)));
        }
        for table in self.version.overlapping_tables(lo, hi) {
            rts.extend(table.range_tombstones.iter().cloned());
            cursors.push(Box::new(SsTableCursor::new(
                table,
                Arc::clone(&self.backend),
                lo,
                hi,
                false,
            )));
        }
        MergeIterator::new(cursors, rts, drop_tombstones)
    }

    /// Range lookup at the snapshot: live `(key, value)` pairs in `[lo, hi)`
    /// as of capture time, newest version per key, in key order.
    pub fn range(&self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        if hi <= lo {
            return Ok(Vec::new());
        }
        let mut merge = self.build_merge(lo, hi, true)?;
        let mut out = Vec::new();
        while let Some(e) = merge.next_merged()? {
            out.push((e.sort_key, e.value));
        }
        Ok(out)
    }

    /// Streaming range scan over `[lo, hi)` at the snapshot: same contract
    /// as [`TreeReader::iter_range`], but against the captured state.
    pub fn iter_range(&self, lo: SortKey, hi: SortKey) -> Result<RangeIter> {
        if hi <= lo {
            return Ok(RangeIter { merge: None, _pin: None });
        }
        let merge = self.build_merge(lo, hi, true)?;
        Ok(RangeIter { merge: Some(merge), _pin: Some(Arc::clone(&self.version)) })
    }

    /// The checkpoint source stream: every entry of the snapshot in sort-key
    /// order, newest version per key, **retaining tombstones** and their
    /// delete keys and seqnums, so a store rebuilt from it is byte-identical
    /// to the snapshot view (including not resurrecting deleted history a
    /// restore-side compaction has yet to persist).
    pub fn entry_merge(&self) -> Result<MergeIterator> {
        self.build_merge(SortKey::MIN, SortKey::MAX, false)
    }

    /// Every range tombstone visible in this snapshot, from all captured
    /// sources (checkpoints persist them alongside the point entries).
    pub fn all_range_tombstones(&self) -> Vec<Entry> {
        let mut rts: Vec<Entry> = Vec::new();
        for buf in [Some(&self.active), self.frozen.as_ref()].into_iter().flatten() {
            rts.extend(buf.range_tombstones.iter().cloned());
        }
        for level in &self.version.levels {
            for run in &level.runs {
                for table in run.tables() {
                    rts.extend(table.range_tombstones.iter().cloned());
                }
            }
        }
        rts.sort_by(|a, b| a.sort_key.cmp(&b.sort_key).then(a.seqnum.cmp(&b.seqnum)));
        rts.dedup_by(|a, b| a.sort_key == b.sort_key && a.seqnum == b.seqnum);
        rts
    }

    /// Insertion time of the oldest tombstone visible in the snapshot, for
    /// the FADE age accounting of files a checkpoint builds from it.
    pub fn oldest_tombstone_ts(&self) -> Option<Timestamp> {
        let mut oldest = self.active.oldest_tombstone_ts;
        if let Some(f) = &self.frozen {
            oldest = min_opt(oldest, f.oldest_tombstone_ts);
        }
        for level in &self.version.levels {
            for run in &level.runs {
                for table in run.tables() {
                    oldest = min_opt(oldest, table.meta.oldest_tombstone_ts);
                }
            }
        }
        oldest
    }

    /// Secondary range scan at the snapshot: every entry live at capture
    /// time whose **delete key** lies in `[d_lo, d_hi)`.
    pub fn scan_by_delete_key(&self, d_lo: DeleteKey, d_hi: DeleteKey) -> Result<Vec<Entry>> {
        if d_hi <= d_lo {
            return Ok(Vec::new());
        }
        let qualifies =
            |e: &&Entry| !e.is_tombstone() && e.delete_key >= d_lo && e.delete_key < d_hi;
        let mut hits: Vec<Entry> = self.active.entries.iter().filter(qualifies).cloned().collect();
        if let Some(f) = &self.frozen {
            hits.extend(f.entries.iter().filter(qualifies).cloned());
        }
        for level in &self.version.levels {
            for run in &level.runs {
                for table in run.tables() {
                    // KiWi fence pruning at file granularity, as in the live
                    // reader
                    let meta = &table.meta;
                    if meta.num_entries == 0 || meta.max_delete < d_lo || meta.min_delete >= d_hi
                    {
                        continue;
                    }
                    hits.extend(table.secondary_range_scan(d_lo, d_hi, self.backend.as_ref())?);
                }
            }
        }
        // keep only the snapshot-wide newest version of each key, and only
        // if that version is live and still qualifies. Unlike the live
        // reader there is no install race to re-validate against: the
        // captured sources are immutable, so the snapshot's own point
        // lookup is the authority.
        hits.sort_by(|a, b| a.sort_key.cmp(&b.sort_key).then_with(|| b.seqnum.cmp(&a.seqnum)));
        let mut out: Vec<Entry> = Vec::with_capacity(hits.len());
        for e in hits {
            if out.last().map(|p: &Entry| p.sort_key) == Some(e.sort_key) {
                continue;
            }
            if let Some(newest) = self.get_entry(e.sort_key)? {
                if newest.seqnum == e.seqnum && newest.kind == EntryKind::Put {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }
}

/// Everything the lock-free execute phase needs to build output files:
/// captured from the tree at plan time so no lock is held while pages are
/// read, merged and written.
#[derive(Clone)]
pub struct BuildCtx {
    config: LsmConfig,
    backend: Arc<dyn StorageBackend>,
    now: Timestamp,
    next_file_id: Arc<AtomicU64>,
}

/// The structural decision of one unit of maintenance work, taken under the
/// write lock against a pinned version. Executing it performs the expensive
/// I/O without any lock; applying it back under the write lock commits the
/// result atomically (manifest edit + version install).
pub struct JobPlan {
    kind: JobKind,
    drop_tombstones: bool,
}

enum JobKind {
    /// Persist the frozen write buffer into the first disk level.
    Flush {
        /// The pinned immutable buffer (shared with the frozen slot, so the
        /// plan phase is a pointer clone; the entry copy for the merge
        /// happens in the lock-free execute phase).
        buffer: Arc<FrozenBuffer>,
        /// Level-0 tables sort-merged with the buffer (leveling only).
        resident: Vec<Arc<SsTable>>,
        tiering: bool,
    },
    /// Merge files of `level` into `dst_level` (leveling partial/multi
    /// compaction; FADE's delete-driven trigger passes every TTL-expired
    /// file of the level in one job).
    Files {
        level: usize,
        dst_level: usize,
        sources: Vec<Arc<SsTable>>,
        overlapping: Vec<Arc<SsTable>>,
        ttl_trigger: bool,
    },
    /// Merge every run of `level` into one run of `level + 1` (tiering).
    Tier { level: usize, victims: Vec<Arc<SsTable>> },
    /// Merge the `run_count` adjacent runs of `level` starting at run index
    /// `start` (pinned as `victims`) into one run that replaces them in
    /// place (the tiered strategies' subset merge).
    MergeRuns { level: usize, victims: Vec<Arc<SsTable>>, start: usize, run_count: usize },
    /// Retire `victims` from every level without reading them (a date-tiered
    /// whole-window TTL expiry). Executes as a no-op — zero pages read or
    /// written — and commits as one atomic version install.
    Drop { victims: Vec<Arc<SsTable>> },
    /// Read, merge and rewrite the entire tree into its last level.
    Full {
        victims: Vec<Arc<SsTable>>,
        deepest: usize,
        delete_key_filter: Option<(DeleteKey, DeleteKey)>,
    },
}

impl JobPlan {
    /// Human-readable job kind (worker diagnostics).
    pub fn describe(&self) -> &'static str {
        match &self.kind {
            JobKind::Flush { .. } => "flush",
            JobKind::Files { .. } => "compact-files",
            JobKind::Tier { .. } => "compact-tier",
            JobKind::MergeRuns { .. } => "merge-runs",
            JobKind::Drop { .. } => "drop-files",
            JobKind::Full { .. } => "full-tree",
        }
    }

    /// True if this plan persists the frozen write buffer.
    pub fn is_flush(&self) -> bool {
        matches!(self.kind, JobKind::Flush { .. })
    }

    /// The execute phase: reads the input pages, merges, and builds the
    /// output files on the device. Requires **no** tree lock — all inputs
    /// are immutable (pinned `Arc<SsTable>`s and the pinned frozen buffer)
    /// and the device is thread-safe. The output references freshly written
    /// pages that no version knows about yet; it becomes visible only via
    /// [`LsmTree::apply_job`].
    ///
    /// The merge is *streaming*: input files are read through lazy per-tile
    /// cursors (cache-bypassing `nofill` reads, like every bulk maintenance
    /// scan) into a heap merge, and output files are cut as the stream
    /// passes each file-size boundary. Peak memory is one delete tile per
    /// input plus one output file's entries — independent of the total
    /// number of input entries, so arbitrarily large compactions run in
    /// bounded space.
    pub fn execute(&self, ctx: &BuildCtx) -> Result<JobOutput> {
        match &self.kind {
            JobKind::Flush { buffer, resident, tiering } => {
                if *tiering {
                    // the flushed buffer becomes a fresh run as-is (no
                    // merge, no dedup — the buffer already holds one
                    // version per key)
                    let mut builder = TableStreamBuilder::new(
                        ctx,
                        buffer.range_tombstones.clone(),
                        buffer.oldest_tombstone_ts,
                    );
                    for e in &buffer.entries {
                        builder.push(e.clone())?;
                    }
                    return Ok(JobOutput { tables: builder.finish()?, input_entries: 0 });
                }
                // greedy sort-merge with the resident run of level 1; the
                // pinned buffer streams without being copied
                let mut cursors: Vec<Box<dyn EntryCursor>> =
                    Vec::with_capacity(1 + resident.len());
                cursors.push(Box::new(SharedSliceCursor::new(
                    FrozenEntries(Arc::clone(buffer)),
                    0,
                    buffer.entries.len(),
                )));
                let mut all_rts = buffer.range_tombstones.clone();
                let mut oldest = buffer.oldest_tombstone_ts;
                for table in resident {
                    cursors.push(Box::new(SsTableCursor::full(
                        Arc::clone(table),
                        Arc::clone(&ctx.backend),
                        true,
                    )));
                    all_rts.extend(table.range_tombstones.iter().cloned());
                    oldest = min_opt(oldest, table.meta.oldest_tombstone_ts);
                }
                let tables = stream_merge_build(
                    ctx,
                    cursors,
                    all_rts,
                    oldest,
                    self.drop_tombstones,
                    None,
                )?;
                Ok(JobOutput { tables, input_entries: 0 })
            }
            JobKind::Files { sources, overlapping, .. } => {
                let inputs: Vec<&Arc<SsTable>> =
                    sources.iter().chain(overlapping.iter()).collect();
                merge_and_build(ctx, &inputs, self.drop_tombstones, None)
            }
            JobKind::Tier { victims, .. } => merge_and_build(
                ctx,
                &victims.iter().collect::<Vec<_>>(),
                self.drop_tombstones,
                None,
            ),
            JobKind::MergeRuns { victims, .. } => merge_and_build(
                ctx,
                &victims.iter().collect::<Vec<_>>(),
                self.drop_tombstones,
                None,
            ),
            // a whole-file drop reads and writes nothing: the entire effect
            // is the apply phase's version/manifest edit
            JobKind::Drop { .. } => Ok(JobOutput { tables: Vec::new(), input_entries: 0 }),
            JobKind::Full { victims, delete_key_filter, .. } => merge_and_build(
                ctx,
                &victims.iter().collect::<Vec<_>>(),
                self.drop_tombstones,
                *delete_key_filter,
            ),
        }
    }
}

/// The output of [`JobPlan::execute`]: freshly built files awaiting
/// [`LsmTree::apply_job`].
pub struct JobOutput {
    tables: Vec<Arc<SsTable>>,
    input_entries: u64,
}

/// Streams a merged, sorted entry sequence into successive output files
/// (each at most `max_pages_per_file` pages) without ever holding more than
/// one file's entries. File ids come from the shared atomic allocator so
/// concurrent builders never collide.
///
/// Range tombstones (the small, already-in-memory survivors of the merge)
/// are attached to the output file whose key range their start falls into;
/// the final file absorbs whatever is left, exactly like the seed's
/// materialising builder.
struct TableStreamBuilder<'a> {
    ctx: &'a BuildCtx,
    per_file: usize,
    chunk: Vec<Entry>,
    /// Surviving range tombstones not yet attached, sorted by start key.
    rts_remaining: Vec<Entry>,
    oldest_tombstone_ts: Option<Timestamp>,
    tables: Vec<Arc<SsTable>>,
}

impl<'a> TableStreamBuilder<'a> {
    fn new(
        ctx: &'a BuildCtx,
        mut range_tombstones: Vec<Entry>,
        oldest_tombstone_ts: Option<Timestamp>,
    ) -> Self {
        range_tombstones.sort_by_key(|e| e.sort_key);
        TableStreamBuilder {
            per_file: ctx.config.entries_per_file().max(1),
            ctx,
            chunk: Vec::new(),
            rts_remaining: range_tombstones,
            oldest_tombstone_ts,
            tables: Vec::new(),
        }
    }

    /// Appends the next entry of the merged stream (must arrive in sort-key
    /// order), cutting a file whenever one is full.
    fn push(&mut self, e: Entry) -> Result<()> {
        if self.chunk.len() >= self.per_file {
            self.flush_file(false)?;
        }
        probe::add(1);
        self.chunk.push(e);
        Ok(())
    }

    /// Builds one output file from the accumulated chunk. A non-final file
    /// takes the pending range tombstones starting within its key range; the
    /// final file absorbs all that remain.
    fn flush_file(&mut self, last: bool) -> Result<()> {
        // nothing to build — except a final rts-only file when point entries
        // ran out but surviving range tombstones remain
        let rts_only_file = last && !self.rts_remaining.is_empty();
        if self.chunk.is_empty() && !rts_only_file {
            return Ok(());
        }
        let rts: Vec<Entry> = if last {
            std::mem::take(&mut self.rts_remaining)
        } else {
            let upper = self.chunk.last().map(|e| e.sort_key).unwrap_or(0);
            let split = self.rts_remaining.partition_point(|rt| rt.sort_key <= upper);
            let keep = self.rts_remaining.split_off(split);
            std::mem::replace(&mut self.rts_remaining, keep)
        };
        let chunk = std::mem::take(&mut self.chunk);
        probe::sub(chunk.len() as u64);
        let has_tombstones = !rts.is_empty() || chunk.iter().any(|e| e.is_tombstone());
        let id = self.ctx.next_file_id.fetch_add(1, Ordering::Relaxed);
        let table = SsTable::build(
            id,
            chunk,
            rts,
            self.ctx.now,
            if has_tombstones { self.oldest_tombstone_ts } else { None },
            &self.ctx.config,
            self.ctx.backend.as_ref(),
        )?;
        if table.meta.num_entries > 0 {
            self.tables.push(Arc::new(table));
        }
        Ok(())
    }

    /// Cuts the final file (which absorbs the remaining range tombstones)
    /// and returns every file built.
    fn finish(mut self) -> Result<Vec<Arc<SsTable>>> {
        self.flush_file(true)?;
        Ok(self.tables)
    }
}

/// Drives `cursors` through a streaming heap merge into a
/// [`TableStreamBuilder`]: the shared tail of every execute arm.
/// `delete_key_filter` additionally drops surviving puts whose delete key
/// falls in the range (the full-tree secondary-delete baseline).
fn stream_merge_build(
    ctx: &BuildCtx,
    cursors: Vec<Box<dyn EntryCursor>>,
    range_tombstones: Vec<Entry>,
    oldest: Option<Timestamp>,
    drop_tombstones: bool,
    delete_key_filter: Option<(DeleteKey, DeleteKey)>,
) -> Result<Vec<Arc<SsTable>>> {
    let oldest = if drop_tombstones { None } else { oldest };
    let surviving_rts = if drop_tombstones { Vec::new() } else { range_tombstones.clone() };
    let mut merge = MergeIterator::new(cursors, range_tombstones, drop_tombstones)?;
    let mut builder = TableStreamBuilder::new(ctx, surviving_rts, oldest);
    while let Some(e) = merge.next_merged()? {
        if let Some((d_lo, d_hi)) = delete_key_filter {
            if !e.is_tombstone() && e.delete_key >= d_lo && e.delete_key < d_hi {
                continue;
            }
        }
        builder.push(e)?;
    }
    builder.finish()
}

/// Merges and rebuilds a set of input files through lazy per-tile cursors —
/// the shared body of the Files, Tier and Full execute arms.
fn merge_and_build(
    ctx: &BuildCtx,
    tables: &[&Arc<SsTable>],
    drop_tombstones: bool,
    delete_key_filter: Option<(DeleteKey, DeleteKey)>,
) -> Result<JobOutput> {
    let mut cursors: Vec<Box<dyn EntryCursor>> = Vec::with_capacity(tables.len());
    let mut rts = Vec::new();
    let mut oldest: Option<Timestamp> = None;
    let mut input_entries = 0u64;
    for table in tables {
        cursors.push(Box::new(SsTableCursor::full(
            Arc::clone(table),
            Arc::clone(&ctx.backend),
            true,
        )));
        rts.extend(table.range_tombstones.iter().cloned());
        oldest = min_opt(oldest, table.meta.oldest_tombstone_ts);
        input_entries += table.meta.num_entries;
    }
    let tables =
        stream_merge_build(ctx, cursors, rts, oldest, drop_tombstones, delete_key_filter)?;
    Ok(JobOutput { tables, input_entries })
}

fn min_opt(a: Option<Timestamp>, b: Option<Timestamp>) -> Option<Timestamp> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// A complete LSM storage engine instance.
pub struct LsmTree {
    config: LsmConfig,
    backend: Arc<dyn StorageBackend>,
    clock: LogicalClock,
    policy: Box<dyn CompactionPolicy>,
    mem: Arc<MemState>,
    /// Insertion time of the oldest tombstone currently in the active buffer.
    buffer_oldest_tombstone_ts: Option<Timestamp>,
    versions: Arc<VersionSet>,
    /// Sequence-number allocator. Shared across every shard of a sharded
    /// store so one cross-shard batch commits under one seqnum range.
    next_seqnum: Arc<AtomicU64>,
    /// Cross-shard batch ids proven committed by the batch-commit log;
    /// replay rolls back any `WalRecord::Batch { id: Some(_), .. }` whose id
    /// is missing here (prepared but never committed).
    committed_batches: HashSet<u64>,
    /// Every cross-shard batch id seen in the WAL during recovery (committed
    /// or rolled back). The sharded front-end unions these across shards to
    /// compact its batch-commit log down to ids some WAL still references.
    replayed_batch_ids: HashSet<u64>,
    next_file_id: Arc<AtomicU64>,
    /// Live-snapshot registry. Shared across every shard of a sharded store
    /// (like the seqnum allocator) so one cross-shard snapshot gates
    /// tombstone GC in all shards at once.
    snapshots: Arc<SnapshotTracker>,
    stats: TreeStats,
    counters: Arc<ReadCounters>,
    reader: TreeReader,
    sort_key_histogram: Histogram,
    delete_key_histogram: Histogram,
    wal: Option<Box<dyn Wal>>,
    manifest: Option<Manifest>,
    mode: MaintenanceMode,
    /// Crash-injection hook for the tree's own commit steps (currently the
    /// whole-file-drop commit); disarmed in production.
    failpoint: Option<FailPoint>,
}

impl LsmTree {
    /// Creates an engine on `backend` with the given compaction policy.
    pub fn new(
        config: LsmConfig,
        backend: Arc<dyn StorageBackend>,
        clock: LogicalClock,
        policy: Box<dyn CompactionPolicy>,
    ) -> Result<Self> {
        config.validate().map_err(StorageError::InvalidOperation)?;
        let domain = config.key_domain.max(2);
        let mem = Arc::new(MemState::default());
        let versions = Arc::new(VersionSet::new());
        let counters = Arc::new(ReadCounters::default());
        let reader = TreeReader {
            config: config.clone(),
            backend: Arc::clone(&backend),
            mem: Arc::clone(&mem),
            versions: Arc::clone(&versions),
            counters: Arc::clone(&counters),
        };
        Ok(LsmTree {
            sort_key_histogram: Histogram::new(0, domain, config.histogram_buckets),
            delete_key_histogram: Histogram::new(0, domain, config.histogram_buckets),
            config,
            backend,
            clock,
            policy,
            mem,
            buffer_oldest_tombstone_ts: None,
            versions,
            next_seqnum: Arc::new(AtomicU64::new(1)),
            committed_batches: HashSet::new(),
            replayed_batch_ids: HashSet::new(),
            next_file_id: Arc::new(AtomicU64::new(1)),
            snapshots: Arc::new(SnapshotTracker::new()),
            stats: TreeStats::default(),
            counters,
            reader,
            wal: None,
            manifest: None,
            mode: MaintenanceMode::Inline,
            failpoint: None,
        })
    }

    /// Attaches a crash-injection failpoint checked at the tree's own commit
    /// sites (`drop.commit`, `drop.retire` — the whole-file-drop steps).
    /// Share the same [`FailPoint`] with the backend, WAL and manifest so one
    /// armed site crashes whichever layer reaches it first.
    pub fn with_failpoint(mut self, fp: FailPoint) -> Self {
        self.failpoint = Some(fp);
        self
    }

    /// Attaches a write-ahead log; every subsequent mutation is logged before
    /// it is buffered.
    pub fn with_wal(mut self, wal: Box<dyn Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Attaches a durable manifest; every subsequent flush, compaction and
    /// secondary page drop commits an edit describing the new tree state
    /// before the WAL is allowed to forget the covered records. Attach it
    /// *before* calling [`LsmTree::recover`] so the recorded state is
    /// rebuilt first.
    pub fn with_manifest(mut self, manifest: Manifest) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// Shares a sequence-number allocator with other trees (the shards of
    /// one store), so every shard draws from one monotonic seqnum space and
    /// a cross-shard batch commits under a single seqnum range. Call before
    /// [`LsmTree::recover`]; recovery raises the shared counter with
    /// `fetch_max`, never lowers it.
    pub fn with_seqnum_allocator(mut self, alloc: Arc<AtomicU64>) -> Self {
        alloc.fetch_max(self.next_seqnum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.next_seqnum = alloc;
        self
    }

    /// Shares a live-snapshot tracker with other trees (the shards of one
    /// store): one registered snapshot fence gates tombstone GC in every
    /// shard at once.
    pub fn with_snapshot_tracker(mut self, tracker: Arc<SnapshotTracker>) -> Self {
        self.snapshots = tracker;
        self
    }

    /// The tree's live-snapshot tracker.
    pub fn snapshot_tracker(&self) -> &Arc<SnapshotTracker> {
        &self.snapshots
    }

    /// The next sequence number this tree will assign — every write applied
    /// so far carries a strictly smaller one. Loaded from the (possibly
    /// shared) allocator; read it under the tree's write serialisation when
    /// it must fence a consistent cut, as the sharded snapshot path does.
    pub fn next_seqnum(&self) -> SeqNum {
        self.next_seqnum.load(Ordering::Relaxed)
    }

    /// Captures a frozen point-in-time view of this tree.
    ///
    /// Call while holding the tree's write serialisation (the shard's
    /// engine lock in the sharded store): under it no write, flush commit
    /// or version install can interleave, so the three captured sources
    /// (active clone, pinned frozen buffer, pinned version) describe one
    /// instant. The returned [`TreeSnapshot`] is immutable and reads
    /// without any tree lock. The caller is responsible for registering
    /// the covering seqnum fence with the [`SnapshotTracker`] so tombstone
    /// GC is gated while the view is alive.
    pub fn capture_snapshot(&self) -> TreeSnapshot {
        let (entries, range_tombstones) = {
            let active = self.mem.active.read();
            (active.iter().cloned().collect::<Vec<Entry>>(), active.range_tombstones().to_vec())
        };
        let frozen = self.mem.frozen.read().clone();
        TreeSnapshot {
            backend: Arc::clone(&self.backend),
            active: Arc::new(FrozenBuffer {
                entries,
                range_tombstones,
                oldest_tombstone_ts: self.buffer_oldest_tombstone_ts,
                wal_upto: 0,
            }),
            frozen,
            version: self.versions.current(),
        }
    }

    /// Provides the set of cross-shard batch ids the batch-commit log proves
    /// committed. Call before [`LsmTree::recover`]: WAL replay applies a
    /// `WalRecord::Batch { id: Some(id), .. }` slice only when `id` is in
    /// this set, rolling back batches that prepared but never committed.
    pub fn set_committed_batches(&mut self, ids: HashSet<u64>) {
        self.committed_batches = ids;
    }

    /// The cross-shard batch ids this tree's WAL still carried at recovery
    /// time (committed or rolled back). Empty until [`LsmTree::recover`] runs
    /// and for trees that never logged a cross-shard slice.
    pub fn wal_batch_ids(&self) -> &HashSet<u64> {
        &self.replayed_batch_ids
    }

    /// Selects who runs flushes and compactions (default
    /// [`MaintenanceMode::Inline`]).
    pub fn set_maintenance_mode(&mut self, mode: MaintenanceMode) {
        self.mode = mode;
    }

    /// The current maintenance mode.
    pub fn maintenance_mode(&self) -> MaintenanceMode {
        self.mode
    }

    /// Returns a cheap-to-clone handle serving lock-free snapshot reads; see
    /// [`TreeReader`].
    pub fn reader(&self) -> TreeReader {
        self.reader.clone()
    }

    /// Recovers a freshly-constructed engine from its durable artifacts:
    /// rebuilds levels, runs and files from the attached manifest (re-deriving
    /// Bloom filters and fence pointers from page contents), releases device
    /// pages the manifest does not reference (half-written flush output,
    /// pages dropped after the last manifest edit), then replays the WAL on
    /// top through the internal replay path. The WAL is *not* truncated here:
    /// its records stay until the next flush commits a manifest edit that
    /// covers them, so a crash during or right after recovery loses nothing.
    pub fn recover(&mut self, wal: &dyn Wal) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        if !self.versions.current().levels.is_empty()
            || !self.mem.active.read().is_empty()
            || self.mem.frozen.read().is_some()
        {
            return Err(StorageError::InvalidOperation(
                "recover() requires a freshly-constructed (empty) tree".into(),
            ));
        }
        if let Some(manifest) = &self.manifest {
            let state = manifest.state().clone();
            self.next_file_id.fetch_max(state.next_file_id, Ordering::Relaxed);
            self.next_seqnum.fetch_max(state.next_seqnum, Ordering::Relaxed);
            self.clock.advance_to(state.clock_micros);
            let mut levels = Vec::with_capacity(state.levels.len());
            for level_desc in &state.levels {
                let mut level = Level::new();
                for run_desc in level_desc {
                    let mut tables = Vec::with_capacity(run_desc.len());
                    for fd in run_desc {
                        let table = SsTable::recover(fd, &self.config, self.backend.as_ref())?;
                        self.next_file_id.fetch_max(fd.id + 1, Ordering::Relaxed);
                        self.next_seqnum.fetch_max(fd.max_seqnum + 1, Ordering::Relaxed);
                        report.files_recovered += 1;
                        self.versions.register_table(&table);
                        tables.push(Arc::new(table));
                    }
                    level.runs.push(Run::new(tables));
                }
                level.prune_empty_runs();
                levels.push(level);
            }
            // the device scan resurfaces every frame in the data file; drop
            // whatever the durable state does not reference
            let referenced: HashSet<PageId> =
                state.files().flat_map(|f| f.tiles.iter().flatten().copied()).collect();
            for id in self.backend.page_ids() {
                if !referenced.contains(&id) {
                    crate::reclaim::retire_page(self.backend.as_ref(), id);
                    report.pages_released += 1;
                }
            }
            self.versions.install(levels);
        }
        report.wal_records_replayed = self.recover_from(wal)?;
        Ok(report)
    }

    /// Replays a WAL into the engine through the internal replay path:
    /// unlike the public write path it never suppresses a logged tombstone as
    /// blind, never re-counts ingest statistics or histograms (they were
    /// counted when the record was first acknowledged), and re-applies each
    /// record at its *logged* timestamp instead of re-stamping it.
    pub fn recover_from(&mut self, wal: &dyn Wal) -> Result<usize> {
        let records = wal.replay()?;
        let n = records.len();
        for r in records {
            self.replay_record(r)?;
        }
        Ok(n)
    }

    /// Applies one logged record to the buffer, bypassing acknowledgement-time
    /// bookkeeping (see [`LsmTree::recover_from`]).
    fn replay_record(&mut self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::Put { sort_key, delete_key, value, ts } => {
                self.clock.advance_to(ts);
                let seq = self.next_seq();
                self.mem.active.write().put(sort_key, delete_key, seq, value);
            }
            WalRecord::Delete { sort_key, ts } => {
                self.clock.advance_to(ts);
                let seq = self.next_seq();
                self.buffer_oldest_tombstone_ts.get_or_insert(ts);
                self.mem.active.write().delete(sort_key, seq);
            }
            WalRecord::DeleteRange { start, end, ts } => {
                if end <= start {
                    return Ok(());
                }
                self.clock.advance_to(ts);
                let seq = self.next_seq();
                self.buffer_oldest_tombstone_ts.get_or_insert(ts);
                self.mem.active.write().delete_range(start, end, seq);
            }
            WalRecord::SecondaryDelete { d_lo, d_hi, ts } => {
                self.clock.advance_to(ts);
                // re-purges buffered entries replayed so far and re-drops
                // any on-device pages the pre-crash run did not get to
                // (idempotent on the ones it did)
                self.apply_secondary_range_delete(d_lo, d_hi)?;
            }
            WalRecord::Batch { id, ops, ts } => {
                // a prepared cross-shard slice replays only when the batch
                // commit log proves its id committed; otherwise the whole
                // slice rolls back — a batch is never half-applied
                if let Some(id) = id {
                    self.replayed_batch_ids.insert(id);
                    if !self.committed_batches.contains(&id) {
                        return Ok(());
                    }
                }
                self.clock.advance_to(ts);
                self.apply_batch_ops(&ops, ts, false)?;
            }
        }
        self.maybe_flush()
    }

    // ----------------------------------------------------------------- writes

    /// Inserts (or updates) `sort_key` with the given delete key and value.
    pub fn put(&mut self, sort_key: SortKey, delete_key: DeleteKey, value: Bytes) -> Result<()> {
        self.advance_clock_for_ingest();
        let now = self.clock.now();
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::Put { sort_key, delete_key, value: value.clone(), ts: now })?;
        }
        let seq = self.next_seq();
        let entry = Entry::put(sort_key, delete_key, seq, value);
        self.stats.record_ingest(entry.encoded_size() as u64);
        self.sort_key_histogram.add(sort_key);
        self.delete_key_histogram.add(delete_key);
        self.mem.active.write().put(sort_key, delete_key, seq, entry.value);
        self.maybe_flush()
    }

    /// Issues a point delete for `sort_key`. Returns `false` when the delete
    /// was suppressed as *blind* (the key cannot exist anywhere in the tree —
    /// only checked when `suppress_blind_deletes` is enabled).
    pub fn delete(&mut self, sort_key: SortKey) -> Result<bool> {
        self.advance_clock_for_ingest();
        if self.config.suppress_blind_deletes && !self.key_may_exist(sort_key)? {
            self.stats.blind_deletes_suppressed += 1;
            return Ok(false);
        }
        let now = self.clock.now();
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::Delete { sort_key, ts: now })?;
        }
        let seq = self.next_seq();
        let entry = Entry::point_tombstone(sort_key, seq);
        self.stats.record_ingest(entry.encoded_size() as u64);
        self.stats.point_deletes_issued += 1;
        self.buffer_oldest_tombstone_ts.get_or_insert(now);
        self.mem.active.write().delete(sort_key, seq);
        self.maybe_flush()?;
        Ok(true)
    }

    /// Issues a range delete on the **sort key** for `[start, end)`.
    pub fn delete_range(&mut self, start: SortKey, end: SortKey) -> Result<()> {
        if end <= start {
            return Ok(());
        }
        self.advance_clock_for_ingest();
        let now = self.clock.now();
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::DeleteRange { start, end, ts: now })?;
        }
        let seq = self.next_seq();
        let entry = Entry::range_tombstone(start, end, seq);
        self.stats.record_ingest(entry.encoded_size() as u64);
        self.stats.range_deletes_issued += 1;
        self.buffer_oldest_tombstone_ts.get_or_insert(now);
        self.mem.active.write().delete_range(start, end, seq);
        self.maybe_flush()
    }

    /// Executes a secondary range delete: removes every entry whose **delete
    /// key** lies in `[d_lo, d_hi)`, using the strategy selected by
    /// [`LsmConfig::secondary_delete_mode`]. Logged to the WAL before it
    /// runs: the purge of *buffered* entries would otherwise be resurrected
    /// by replaying their still-logged puts after a crash.
    pub fn secondary_range_delete(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::SecondaryDelete { d_lo, d_hi, ts: self.clock.now() })?;
        }
        self.stats.secondary_range_deletes += 1;
        let result = self.apply_secondary_range_delete(d_lo, d_hi)?;
        self.stats.secondary_delete.merge(&result);
        Ok(result)
    }

    // ----------------------------------------------------------------- batches

    /// Atomically applies `batch`: the whole batch is logged as **one** WAL
    /// frame (crash recovery replays it entirely or discards it entirely —
    /// a torn tail can never split it), made durable per the sync policy,
    /// and its point operations are applied to the write buffer under a
    /// single memtable write lock (concurrent readers never observe a
    /// prefix). Operations apply in insertion order under one commit
    /// timestamp and consecutive sequence numbers. An empty batch is a
    /// no-op.
    pub fn write_batch(&mut self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let ts = self.stage_batch(batch.ops(), None)?;
        self.wal_commit()?;
        self.apply_batch(batch.into_ops(), ts)
    }

    /// Stages `ops` in the WAL as one atomic batch frame **without** the
    /// sync-policy barrier. A group-commit leader stages every queued batch
    /// with this, pays one [`LsmTree::wal_commit`] for the combined tail,
    /// then applies each batch at the returned commit timestamp with
    /// [`LsmTree::apply_batch`]. `id` tags a prepared cross-shard slice
    /// (replay holds it back until the batch-commit log shows `id`);
    /// `None` marks the frame itself as the commit point.
    pub fn stage_batch(&mut self, ops: &[BatchOp], id: Option<u64>) -> Result<Timestamp> {
        self.advance_clock_for_ingest();
        let now = self.clock.now();
        if let Some(wal) = &self.wal {
            wal.append_nosync(WalRecord::Batch { id, ops: ops.to_vec(), ts: now })?;
        }
        Ok(now)
    }

    /// One durability barrier covering everything staged since the last
    /// commit (the group-commit fsync). A no-op without a WAL.
    pub fn wal_commit(&mut self) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.commit()?;
        }
        Ok(())
    }

    /// Applies a staged batch to the write buffer at its commit timestamp.
    pub fn apply_batch(&mut self, ops: Vec<BatchOp>, ts: Timestamp) -> Result<()> {
        self.apply_batch_ops(&ops, ts, true)?;
        self.maybe_flush()
    }

    /// Applies batch operations in order. Consecutive point operations
    /// (puts, deletes) are applied under a single memtable write lock so
    /// concurrent readers observe them all-or-nothing; a secondary range
    /// delete releases the guard (it touches the frozen buffer and the
    /// version set) — it only purges data that predates the batch. With
    /// `ack_time` false (WAL replay) the acknowledgement-time bookkeeping
    /// (ingest stats, histograms) is skipped, mirroring the single-op
    /// replay arms.
    fn apply_batch_ops(&mut self, ops: &[BatchOp], ts: Timestamp, ack_time: bool) -> Result<()> {
        let mem = Arc::clone(&self.mem);
        let alloc = Arc::clone(&self.next_seqnum);
        let mut i = 0;
        while i < ops.len() {
            match &ops[i] {
                BatchOp::SecondaryDelete { d_lo, d_hi } => {
                    if ack_time {
                        self.stats.secondary_range_deletes += 1;
                    }
                    let result = self.apply_secondary_range_delete(*d_lo, *d_hi)?;
                    if ack_time {
                        self.stats.secondary_delete.merge(&result);
                    }
                    i += 1;
                }
                _ => {
                    let run_end = ops[i..]
                        .iter()
                        .position(|o| matches!(o, BatchOp::SecondaryDelete { .. }))
                        .map_or(ops.len(), |p| i + p);
                    let mut active = mem.active.write();
                    for op in &ops[i..run_end] {
                        let seq = alloc.fetch_add(1, Ordering::Relaxed);
                        match op {
                            BatchOp::Put { sort_key, delete_key, value } => {
                                if ack_time {
                                    let entry =
                                        Entry::put(*sort_key, *delete_key, seq, value.clone());
                                    self.stats.record_ingest(entry.encoded_size() as u64);
                                    self.sort_key_histogram.add(*sort_key);
                                    self.delete_key_histogram.add(*delete_key);
                                }
                                active.put(*sort_key, *delete_key, seq, value.clone());
                            }
                            BatchOp::Delete { sort_key } => {
                                if ack_time {
                                    let entry = Entry::point_tombstone(*sort_key, seq);
                                    self.stats.record_ingest(entry.encoded_size() as u64);
                                    self.stats.point_deletes_issued += 1;
                                }
                                self.buffer_oldest_tombstone_ts.get_or_insert(ts);
                                active.delete(*sort_key, seq);
                            }
                            BatchOp::SecondaryDelete { .. } => {
                                // lint:allow(no-panic): the op split above routes these out
                                unreachable!("split above")
                            }
                        }
                    }
                    i = run_end;
                }
            }
        }
        Ok(())
    }

    /// The logging- and statistics-free body of a secondary range delete,
    /// shared by the public path and WAL replay.
    fn apply_secondary_range_delete(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        // the buffered portion (active and frozen) is purged in place in
        // both modes
        self.mem.active.write().purge_by_delete_key(d_lo, d_hi);
        if let Some(f) = self.mem.frozen.write().as_mut() {
            Arc::make_mut(f).purge_by_delete_key(d_lo, d_hi);
        }
        match self.config.secondary_delete_mode {
            SecondaryDeleteMode::KiwiPageDrops => self.secondary_delete_with_drops(d_lo, d_hi),
            SecondaryDeleteMode::FullTreeCompaction => {
                self.secondary_delete_with_full_compaction(d_lo, d_hi)
            }
        }
    }

    /// KiWi page drops, committed as one new version: fully-covered pages
    /// are never read, partially-covered pages are rewritten, and the
    /// obsolete pages are retired through the version set so concurrently
    /// pinned snapshots stay readable until they are released.
    fn secondary_delete_with_drops(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        let now = self.clock.now();
        let mut total = SecondaryDeleteStats::default();
        let mut levels = self.versions.current().levels.clone();
        let mut retired: Vec<Arc<SsTable>> = Vec::new();
        let mut replacements: Vec<Arc<SsTable>> = Vec::new();
        for level in &mut levels {
            for run in &mut level.runs {
                let ids: Vec<u64> = run.tables().iter().map(|t| t.meta.id).collect();
                for id in ids {
                    let table = match run.find_by_id(id) {
                        Some(t) => Arc::clone(t),
                        None => continue,
                    };
                    if table.meta.num_entries == 0
                        || table.meta.max_delete < d_lo
                        || table.meta.min_delete >= d_hi
                    {
                        continue;
                    }
                    // the obsolete-page list is implied by the reference
                    // counts: retiring the original releases exactly the
                    // pages its replacement does not share
                    let (replacement, stats, _obsolete) = table.secondary_range_delete(
                        d_lo,
                        d_hi,
                        &self.config,
                        self.backend.as_ref(),
                        now,
                    )?;
                    total.merge(&stats);
                    let replacement = replacement.map(Arc::new);
                    if let Some(r) = &replacement {
                        replacements.push(Arc::clone(r));
                    }
                    run.replace(id, replacement);
                    retired.push(table);
                }
            }
            level.prune_empty_runs();
        }
        self.commit_version(levels, &replacements, retired)?;
        Ok(total)
    }

    fn secondary_delete_with_full_compaction(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        // the state-of-the-art path: read, merge and rewrite the whole tree
        let mut stats = SecondaryDeleteStats::default();
        let before = self.versions.current();
        let before_entries: u64 = before.levels.iter().map(|l| l.total_entries()).sum();
        drop(before);
        self.full_tree_compaction_filtered(Some((d_lo, d_hi)))?;
        let after = self.versions.current();
        let after_entries: u64 = after.levels.iter().map(|l| l.total_entries()).sum();
        stats.entries_deleted = before_entries.saturating_sub(after_entries);
        // every surviving page was read and rewritten
        stats.partial_page_drops =
            after.levels.iter().flat_map(|l| l.all_tables()).map(|t| t.page_count() as u64).sum();
        Ok(stats)
    }

    /// Forces a full-tree compaction (reads, merges and rewrites every file
    /// into the last level). This is the operation Lethe is designed to make
    /// unnecessary; it is exposed for the baselines and experiments.
    pub fn force_full_compaction(&mut self) -> Result<()> {
        self.full_tree_compaction_filtered(None)
    }

    fn full_tree_compaction_filtered(
        &mut self,
        delete_key_range: Option<(DeleteKey, DeleteKey)>,
    ) -> Result<()> {
        let plan = match self.plan_full(delete_key_range) {
            Some(p) => p,
            None => return Ok(()),
        };
        let ctx = self.build_ctx();
        let out = plan.execute(&ctx)?;
        self.apply_job(plan, out)?;
        Ok(())
    }

    // ----------------------------------------------------------------- reads

    /// Point lookup: returns the current value of `sort_key`, or `None` if
    /// the key does not exist or has been deleted. Lock-free with respect to
    /// flushes and compactions (see [`TreeReader`]).
    pub fn get(&self, sort_key: SortKey) -> Result<Option<Bytes>> {
        self.reader.get(sort_key)
    }

    /// Range lookup on the sort key: returns the live `(key, value)` pairs in
    /// `[lo, hi)`, newest version per key, in key order.
    pub fn range(&self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        self.reader.range(lo, hi)
    }

    /// Secondary range lookup: returns every live entry whose **delete key**
    /// lies in `[d_lo, d_hi)`.
    pub fn secondary_range_scan(&self, d_lo: DeleteKey, d_hi: DeleteKey) -> Result<Vec<Entry>> {
        self.reader.secondary_range_scan(d_lo, d_hi)
    }

    /// Returns `true` if `sort_key` may exist in the tree (memtable check
    /// plus Bloom probes; no page reads). Used for blind-delete suppression.
    pub fn key_may_exist(&self, sort_key: SortKey) -> Result<bool> {
        self.reader.key_may_exist(sort_key)
    }

    // ------------------------------------------------------------ flush/compact

    fn next_seq(&mut self) -> SeqNum {
        self.next_seqnum.fetch_add(1, Ordering::Relaxed)
    }

    fn advance_clock_for_ingest(&self) {
        if self.config.auto_advance_clock {
            self.clock.advance_micros(self.config.micros_per_ingest());
        }
    }

    /// Describes a prospective tree state for the manifest.
    fn describe_state(&self, levels: &[Level]) -> ManifestState {
        ManifestState {
            next_file_id: self.next_file_id.load(Ordering::Relaxed),
            next_seqnum: self.next_seqnum.load(Ordering::Relaxed),
            clock_micros: self.clock.now(),
            levels: levels
                .iter()
                .map(|l| {
                    l.runs
                        .iter()
                        .map(|r| r.tables().iter().map(|t| t.describe()).collect())
                        .collect()
                })
                .collect(),
        }
    }

    /// Commits `levels` to the attached manifest (if any): syncs the device
    /// first so the manifest never references pages that could be lost, then
    /// appends the edit. A no-op without a manifest. Called *before* the
    /// version is installed, so a failed commit leaves the in-memory tree
    /// unchanged.
    fn commit_manifest_for(&mut self, levels: &[Level]) -> Result<()> {
        if self.manifest.is_none() {
            return Ok(());
        }
        self.backend.sync()?;
        let state = self.describe_state(levels);
        // lint:allow(no-panic): the is_none() early-return above guarantees presence
        self.manifest.as_mut().expect("manifest presence checked above").commit(state)
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.mem.active.read().size_bytes() >= self.config.buffer_capacity_bytes() {
            match self.mode {
                MaintenanceMode::Inline => {
                    self.flush()?;
                    self.maintain()?;
                }
                MaintenanceMode::Background => {
                    // only freeze — the worker flushes; if the frozen slot is
                    // still occupied the embedding layer stalls the writer
                    self.freeze()?;
                }
            }
        }
        Ok(())
    }

    /// Moves the active buffer into the frozen slot, making it immutable and
    /// ready to flush. Returns `false` if the active buffer is empty or the
    /// frozen slot is still occupied by an unflushed buffer. Readers never
    /// observe a gap: the frozen slot is populated before the active lock is
    /// released.
    pub fn freeze(&mut self) -> Result<bool> {
        if self.mem.frozen.read().is_some() {
            return Ok(false);
        }
        let wal_upto = match &self.wal {
            Some(w) => w.position()?,
            None => 0,
        };
        let mut active = self.mem.active.write();
        if active.is_empty() {
            return Ok(false);
        }
        let (entries, range_tombstones) = active.drain_sorted();
        let oldest_tombstone_ts = self.buffer_oldest_tombstone_ts.take();
        *self.mem.frozen.write() = Some(Arc::new(FrozenBuffer {
            entries,
            range_tombstones,
            oldest_tombstone_ts,
            wal_upto,
        }));
        Ok(true)
    }

    /// True if a frozen buffer is waiting to be flushed.
    pub fn has_frozen(&self) -> bool {
        self.mem.frozen.read().is_some()
    }

    /// True when the writer should stall: the active buffer is full *and*
    /// the frozen slot is still occupied (the background flush has not
    /// caught up). The embedding layer blocks the writer until the worker
    /// clears the frozen slot. Delegates to the reader so the read and
    /// write surfaces can never disagree on the condition.
    pub fn write_stalled(&self) -> bool {
        self.reader.write_stalled()
    }

    /// Number of runs in the first disk level (the slowdown/stall
    /// backpressure signal; see [`LsmConfig::l0_slowdown_runs`]).
    pub fn l0_run_count(&self) -> usize {
        self.reader.l0_run_count()
    }

    /// Flushes the write buffer (frozen remainder first, then the active
    /// buffer) to the first disk level. A no-op when nothing is buffered.
    ///
    /// Durability ordering: the flushed files' pages are synced and a
    /// manifest edit describing the new tree state is committed **before**
    /// the WAL records it covers are discarded, so at no instant is an
    /// acknowledged write covered by neither log.
    pub fn flush(&mut self) -> Result<()> {
        if self.has_frozen() {
            self.flush_frozen()?;
        }
        if self.freeze()? {
            self.flush_frozen()?;
        }
        Ok(())
    }

    /// Plans, executes and applies the flush of the frozen buffer inline.
    fn flush_frozen(&mut self) -> Result<()> {
        let plan = match self.plan_flush() {
            Some(p) => p,
            None => return Ok(()),
        };
        let ctx = self.build_ctx();
        let out = plan.execute(&ctx)?;
        self.apply_job(plan, out)?;
        Ok(())
    }

    /// Runs the compaction loop inline: repeatedly asks the policy for work
    /// until it reports none is needed.
    pub fn maintain(&mut self) -> Result<()> {
        for _ in 0..MAX_MAINTENANCE_ROUNDS {
            let plan = match self.plan_compaction() {
                Some(p) => p,
                None => break,
            };
            let ctx = self.build_ctx();
            let out = plan.execute(&ctx)?;
            if !self.apply_job(plan, out)? {
                break;
            }
        }
        Ok(())
    }

    /// Captures the context the lock-free execute phase needs.
    pub fn build_ctx(&self) -> BuildCtx {
        BuildCtx {
            config: self.config.clone(),
            backend: Arc::clone(&self.backend),
            now: self.clock.now(),
            next_file_id: Arc::clone(&self.next_file_id),
        }
    }

    /// Plans the next unit of maintenance work, flush first: the frozen
    /// buffer if one is waiting (when `include_flush`), otherwise whatever
    /// compaction the policy picks. Returns `None` when the tree needs no
    /// work right now. The plan pins its inputs; execute it without the
    /// lock via [`JobPlan::execute`] and commit with [`LsmTree::apply_job`].
    pub fn plan_job(&mut self, include_flush: bool) -> Option<JobPlan> {
        if include_flush {
            if let Some(p) = self.plan_flush() {
                return Some(p);
            }
        }
        self.plan_compaction()
    }

    /// True while a live snapshot pins history older than the newest write.
    /// Conservative fence: the current `next_seqnum` — any snapshot taken
    /// before the latest write blocks drops, and a snapshot with no writes
    /// after it (which already observes every tombstone) does not.
    fn tombstone_gc_gated(&self) -> bool {
        !self.snapshots.may_drop_tombstones(self.next_seqnum.load(Ordering::Relaxed))
    }

    /// Applies the snapshot gate to a planned job's tombstone-drop decision,
    /// counting each suppression so the delete-persistence accounting can
    /// show that `D_th` was deliberately suspended rather than violated.
    fn gate_tombstone_drop(&mut self, want_drop: bool) -> bool {
        if want_drop && self.tombstone_gc_gated() {
            self.stats.tombstone_gc_delayed += 1;
            return false;
        }
        want_drop
    }

    fn plan_flush(&mut self) -> Option<JobPlan> {
        let buffer = Arc::clone(self.mem.frozen.read().as_ref()?);
        let tiering = self.config.merge_policy == MergePolicy::Tiering;
        let version = self.versions.current();
        let (resident, drop_tombstones) = if tiering {
            (Vec::new(), false)
        } else {
            let resident: Vec<Arc<SsTable>> = version
                .levels
                .first()
                .map(|l| l.all_tables().cloned().collect())
                .unwrap_or_default();
            let drop = version.deepest_nonempty_level().is_none_or(|d| d == 0);
            (resident, drop)
        };
        let drop_tombstones = self.gate_tombstone_drop(drop_tombstones);
        Some(JobPlan { kind: JobKind::Flush { buffer, resident, tiering }, drop_tombstones })
    }

    fn plan_compaction(&mut self) -> Option<JobPlan> {
        let version = self.versions.current();
        self.policy.on_tree_growth(version.levels.len());
        let task = {
            let view = TreeView {
                levels: &version.levels,
                capacities: (0..version.levels.len())
                    .map(|i| self.config.level_capacity_bytes(i + 1))
                    .collect(),
                now: self.clock.now(),
                config: &self.config,
                sort_key_histogram: &self.sort_key_histogram,
                tombstone_gc_gated: self.tombstone_gc_gated(),
            };
            self.policy.pick(&view)?
        };
        match task {
            CompactionTask::LeveledPartial { level, file_id } => {
                self.plan_files(&version, level, &[file_id])
            }
            CompactionTask::LeveledMulti { level, file_ids } => {
                self.plan_files(&version, level, &file_ids)
            }
            CompactionTask::TieredLevel { level } => {
                let victims: Vec<Arc<SsTable>> =
                    version.levels.get(level)?.all_tables().cloned().collect();
                if victims.is_empty() {
                    return None;
                }
                // Tiering merges only the source level's runs; runs already
                // resident in deeper levels are not part of the merge, so
                // tombstones may only be discarded when *nothing* exists at
                // the destination level or below — otherwise an older
                // version they cover could resurface.
                let deepest_other = (0..version.levels.len())
                    .rev()
                    .find(|&i| i != level && !version.levels[i].is_empty());
                let drop_tombstones =
                    self.gate_tombstone_drop(deepest_other.is_none_or(|d| d < level + 1));
                Some(JobPlan { kind: JobKind::Tier { level, victims }, drop_tombstones })
            }
            CompactionTask::MergeRuns { level, file_ids } => {
                self.plan_merge_runs(&version, level, &file_ids)
            }
            CompactionTask::DropFiles { file_ids } => self.plan_drop_files(&version, &file_ids),
            CompactionTask::FullTree => self.plan_full(None),
        }
    }

    /// Plans a tiered subset merge: whole runs of `level`, contiguous in its
    /// run list and jointly holding exactly `file_ids`, merged into one run
    /// that replaces them in place. Rejects partial runs and non-adjacent
    /// selections — merging around a surviving run of intermediate recency
    /// would invert the version order reads depend on.
    fn plan_merge_runs(
        &mut self,
        version: &Version,
        level: usize,
        file_ids: &[u64],
    ) -> Option<JobPlan> {
        if file_ids.is_empty() {
            return None;
        }
        let l = version.levels.get(level)?;
        let want: HashSet<u64> = file_ids.iter().copied().collect();
        let mut picked: Vec<usize> = Vec::new();
        for (i, run) in l.runs.iter().enumerate() {
            let selected = run.tables().iter().filter(|t| want.contains(&t.meta.id)).count();
            if selected == 0 {
                continue;
            }
            if selected != run.len() {
                return None; // partial run selected
            }
            picked.push(i);
        }
        let (start, end) = (*picked.first()?, *picked.last()? + 1);
        if picked.len() != end - start {
            return None; // non-adjacent runs selected
        }
        let covered: usize = picked.iter().map(|&i| l.runs[i].len()).sum();
        if covered != want.len() {
            return None; // some wanted id is not in this level
        }
        let run_count = end - start;
        let victims: Vec<Arc<SsTable>> =
            l.runs[start..end].iter().flat_map(|r| r.tables().iter().cloned()).collect();
        // The merge may persist tombstones only when it covers the oldest
        // data of the tree: the segment reaches the level's oldest run and
        // every deeper level is empty.
        let oldest = end == l.runs.len()
            && version.levels.iter().skip(level + 1).all(|deeper| deeper.is_empty());
        let drop_tombstones = self.gate_tombstone_drop(oldest);
        Some(JobPlan {
            kind: JobKind::MergeRuns { level, victims, start, run_count },
            drop_tombstones,
        })
    }

    /// Plans a whole-file drop of `file_ids`, resolved across all levels.
    /// Routed through the snapshot gate: while a live snapshot pins history
    /// the plan is refused and the delay is counted in
    /// `TreeStats::tombstone_gc_delayed` — the expired files stay in place
    /// (and readable) until the snapshot is released.
    fn plan_drop_files(&mut self, version: &Version, file_ids: &[u64]) -> Option<JobPlan> {
        if file_ids.is_empty() {
            return None;
        }
        let victims: Vec<Arc<SsTable>> = file_ids
            .iter()
            .filter_map(|id| {
                version
                    .levels
                    .iter()
                    .find_map(|l| l.runs.iter().find_map(|r| r.find_by_id(*id).map(Arc::clone)))
            })
            .collect();
        if victims.len() != file_ids.len() {
            return None;
        }
        // A drop erases data versions outright, which is only invisible to
        // readers because the TTL already expired them; a held snapshot must
        // still see the expired window, so the gate defers the whole job.
        if !self.gate_tombstone_drop(true) {
            return None;
        }
        Some(JobPlan { kind: JobKind::Drop { victims }, drop_tombstones: false })
    }

    /// Plans a leveling compaction of `file_ids` out of `level`, mirroring
    /// FADE's placement rules: TTL-driven jobs on an unsaturated deepest
    /// level rewrite in place, everything else spills to `level + 1`.
    fn plan_files(&mut self, version: &Version, level: usize, file_ids: &[u64]) -> Option<JobPlan> {
        let sources: Vec<Arc<SsTable>> = {
            let run = version.levels.get(level)?.runs.first()?;
            file_ids.iter().filter_map(|id| run.find_by_id(*id).map(Arc::clone)).collect()
        };
        if sources.is_empty() {
            return None;
        }
        let now = self.clock.now();
        let ttl_trigger = self
            .config
            .delete_persistence_threshold
            .map(|dth| {
                sources.iter().any(|s| s.has_tombstones() && s.tombstone_age(now) >= dth / 2)
            })
            .unwrap_or(false);

        let deepest = version.deepest_nonempty_level().unwrap_or(level);
        // Files picked from the deepest level while that level still has
        // headroom are being compacted only to persist their tombstones (a
        // TTL-driven compaction): rewrite them in place instead of growing
        // the tree by a level. A saturated deepest level still spills down.
        let saturated =
            version.levels[level].total_bytes() > self.config.level_capacity_bytes(level + 1);
        let dst_level = if level == deepest && !saturated { level } else { level + 1 };

        let overlapping: Vec<Arc<SsTable>> = if dst_level == level {
            Vec::new()
        } else {
            version
                .levels
                .get(dst_level)
                .and_then(|l| l.runs.first())
                .map(|r| {
                    r.tables()
                        .iter()
                        .filter(|t| sources.iter().any(|s| t.overlaps_table(s)))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };

        let drop_tombstones = self.gate_tombstone_drop(dst_level >= deepest);
        Some(JobPlan {
            kind: JobKind::Files { level, dst_level, sources, overlapping, ttl_trigger },
            drop_tombstones,
        })
    }

    fn plan_full(&mut self, delete_key_filter: Option<(DeleteKey, DeleteKey)>) -> Option<JobPlan> {
        let version = self.versions.current();
        let deepest = version.deepest_nonempty_level()?;
        let victims: Vec<Arc<SsTable>> =
            version.levels.iter().flat_map(|l| l.all_tables().cloned()).collect();
        let drop_tombstones = self.gate_tombstone_drop(true);
        Some(JobPlan {
            kind: JobKind::Full { victims, deepest, delete_key_filter },
            drop_tombstones,
        })
    }

    /// Commits an executed job: splices the output into a copy of the
    /// current levels, commits the manifest edit, installs the new version
    /// (one atomic pointer swap — readers see the old or the new tree, never
    /// a mixture), retires the replaced files for deferred page reclamation,
    /// and — for flushes — clears the frozen buffer and discards the covered
    /// WAL prefix.
    ///
    /// Returns `false` (and releases the output's pages) if the tree changed
    /// structurally since the plan was taken and the job no longer applies —
    /// this cannot happen under the serialisation discipline (one worker per
    /// tree; foreground structural operations pause the worker) but is
    /// checked anyway so a discipline bug degrades to wasted work, never to
    /// resurrected data.
    pub fn apply_job(&mut self, plan: JobPlan, out: JobOutput) -> Result<bool> {
        let current = self.versions.current();
        let mut levels = current.levels.clone();
        let JobPlan { kind, .. } = plan;
        match kind {
            JobKind::Flush { buffer, resident, tiering } => {
                let wal_upto = buffer.wal_upto;
                if self.mem.frozen.read().is_none() {
                    self.abort_output(out);
                    return Ok(false);
                }
                if levels.is_empty() {
                    levels.push(Level::new());
                }
                let new_tables = out.tables.clone();
                if tiering {
                    // the flushed buffer becomes a fresh run (newest first)
                    if !out.tables.is_empty() {
                        levels[0].runs.insert(0, Run::new(out.tables));
                    }
                } else {
                    // the merge consumed the resident run: verify it is
                    // still exactly what the plan pinned
                    let have: Vec<u64> = levels[0].all_tables().map(|t| t.meta.id).collect();
                    let planned: Vec<u64> = resident.iter().map(|t| t.meta.id).collect();
                    if have != planned {
                        self.abort_output(out);
                        return Ok(false);
                    }
                    levels[0] = Level::new();
                    if !out.tables.is_empty() {
                        levels[0].runs.push(Run::new(out.tables));
                    }
                }
                let flushed_bytes: u64 = new_tables.iter().map(|t| t.meta.data_bytes).sum();
                self.commit_version(levels, &new_tables, resident)?;
                *self.mem.frozen.write() = None;
                self.stats.flushes += 1;
                self.stats.bytes_flushed += flushed_bytes;
                if let Some(wal) = &self.wal {
                    wal.truncate_prefix(wal_upto)?;
                }
                Ok(true)
            }
            JobKind::Files { level, dst_level, sources, overlapping, ttl_trigger } => {
                let source_ids: Vec<u64> = sources.iter().map(|t| t.meta.id).collect();
                let overlap_ids: Vec<u64> = overlapping.iter().map(|t| t.meta.id).collect();
                let ids_present = |run: Option<&Run>, ids: &[u64]| {
                    ids.iter().all(|id| run.is_some_and(|r| r.find_by_id(*id).is_some()))
                };
                if !ids_present(levels.get(level).and_then(|l| l.runs.first()), &source_ids)
                    || !ids_present(levels.get(dst_level).and_then(|l| l.runs.first()), &overlap_ids)
                {
                    self.abort_output(out);
                    return Ok(false);
                }
                while levels.len() <= dst_level {
                    levels.push(Level::new());
                }
                if let Some(run) = levels[level].runs.first_mut() {
                    run.remove_ids(&source_ids);
                }
                levels[level].prune_empty_runs();
                if dst_level != level {
                    if let Some(run) = levels[dst_level].runs.first_mut() {
                        run.remove_ids(&overlap_ids);
                    }
                    levels[dst_level].prune_empty_runs();
                }
                let new_tables = out.tables.clone();
                if !out.tables.is_empty() {
                    if levels[dst_level].runs.is_empty() {
                        levels[dst_level].runs.push(Run::default());
                    }
                    levels[dst_level].runs[0].add_tables(out.tables);
                }
                let retired: Vec<Arc<SsTable>> =
                    sources.into_iter().chain(overlapping).collect();
                let written: u64 = new_tables.iter().map(|t| t.meta.data_bytes).sum();
                self.commit_version(levels, &new_tables, retired)?;
                self.stats.compactions += 1;
                if ttl_trigger {
                    self.stats.ttl_triggered_compactions += 1;
                }
                self.stats.entries_compacted += out.input_entries;
                self.stats.bytes_compacted += written;
                Ok(true)
            }
            JobKind::Tier { level, victims } => {
                let have: Vec<u64> =
                    levels.get(level).map(|l| l.all_tables().map(|t| t.meta.id).collect()).unwrap_or_default();
                let planned: Vec<u64> = victims.iter().map(|t| t.meta.id).collect();
                if have != planned {
                    self.abort_output(out);
                    return Ok(false);
                }
                levels[level].runs.clear();
                while levels.len() <= level + 1 {
                    levels.push(Level::new());
                }
                let new_tables = out.tables.clone();
                if !out.tables.is_empty() {
                    levels[level + 1].runs.insert(0, Run::new(out.tables));
                }
                let written: u64 = new_tables.iter().map(|t| t.meta.data_bytes).sum();
                self.commit_version(levels, &new_tables, victims)?;
                self.stats.compactions += 1;
                self.stats.entries_compacted += out.input_entries;
                self.stats.bytes_compacted += written;
                Ok(true)
            }
            JobKind::MergeRuns { level, victims, start, run_count } => {
                // runs `start..start + run_count` of `level` must still be
                // exactly the runs the plan pinned
                let planned: Vec<u64> = victims.iter().map(|t| t.meta.id).collect();
                let have: Vec<u64> = levels
                    .get(level)
                    .filter(|l| l.runs.len() >= start + run_count)
                    .map(|l| {
                        l.runs[start..start + run_count]
                            .iter()
                            .flat_map(|r| r.tables().iter().map(|t| t.meta.id))
                            .collect()
                    })
                    .unwrap_or_default();
                if have != planned {
                    self.abort_output(out);
                    return Ok(false);
                }
                let new_tables = out.tables.clone();
                // the merged run takes the segment's position, preserving
                // the level's recency order around it
                let replacement =
                    if out.tables.is_empty() { None } else { Some(Run::new(out.tables)) };
                levels[level].runs.splice(start..start + run_count, replacement);
                let written: u64 = new_tables.iter().map(|t| t.meta.data_bytes).sum();
                self.commit_version(levels, &new_tables, victims)?;
                self.stats.compactions += 1;
                self.stats.entries_compacted += out.input_entries;
                self.stats.bytes_compacted += written;
                Ok(true)
            }
            JobKind::Drop { victims } => {
                let ids: Vec<u64> = victims.iter().map(|t| t.meta.id).collect();
                let all_present = ids.iter().all(|id| {
                    levels.iter().any(|l| l.runs.iter().any(|r| r.find_by_id(*id).is_some()))
                });
                if !all_present {
                    self.abort_output(out);
                    return Ok(false);
                }
                for l in &mut levels {
                    for run in &mut l.runs {
                        run.remove_ids(&ids);
                    }
                    l.prune_empty_runs();
                }
                // Inlined commit tail (instead of `commit_version`) so crash
                // injection can land between the two durability steps of a
                // drop: the manifest edit that forgets the files must be
                // committed *before* their pages are retired — the reverse
                // order could reclaim pages a recovered manifest still
                // references.
                if let Some(fp) = &self.failpoint {
                    fp.check("drop.commit")?;
                }
                self.commit_or_release(&levels, &[])?;
                if let Some(fp) = &self.failpoint {
                    fp.check("drop.retire")?;
                }
                self.versions.install(levels);
                for t in &victims {
                    self.versions.retire_table(Arc::clone(t));
                }
                self.versions.collect_garbage(self.backend.as_ref());
                self.stats.whole_file_drops += victims.len() as u64;
                Ok(true)
            }
            JobKind::Full { victims, deepest, .. } => {
                let have: usize = levels.iter().map(|l| l.file_count()).sum();
                if have != victims.len() {
                    self.abort_output(out);
                    return Ok(false);
                }
                for level in &mut levels {
                    *level = Level::new();
                }
                while levels.len() <= deepest {
                    levels.push(Level::new());
                }
                let new_tables = out.tables.clone();
                if !out.tables.is_empty() {
                    levels[deepest].runs.push(Run::new(out.tables));
                }
                let written: u64 = new_tables.iter().map(|t| t.meta.data_bytes).sum();
                self.commit_version(levels, &new_tables, victims)?;
                self.stats.compactions += 1;
                self.stats.full_tree_compactions += 1;
                self.stats.entries_compacted += out.input_entries;
                self.stats.bytes_compacted += written;
                Ok(true)
            }
        }
    }

    /// Releases the pages of a job output that will never be installed
    /// (skipping any page shared with a live, registered table).
    fn abort_output(&self, out: JobOutput) {
        for t in out.tables {
            self.versions.release_unregistered_pages(&t, self.backend.as_ref());
        }
    }

    /// Commits `levels` to the manifest; if the commit fails, the freshly
    /// built `new_tables` are released before the error propagates (the
    /// version is never installed, so nothing references their pages and
    /// they would otherwise leak until a reopen's unreferenced-page GC).
    fn commit_or_release(&mut self, levels: &[Level], new_tables: &[Arc<SsTable>]) -> Result<()> {
        match self.commit_manifest_for(levels) {
            Ok(()) => Ok(()),
            Err(e) => {
                for t in new_tables {
                    // skip pages shared with live tables: a secondary-delete
                    // replacement keeps the original's surviving pages, and
                    // the original is still installed after a failed commit
                    self.versions.release_unregistered_pages(t, self.backend.as_ref());
                }
                Err(e)
            }
        }
    }

    /// The shared commit tail of every structural change: manifest edit
    /// (releasing `new_tables` if it fails), page-reference registration,
    /// atomic version install, retirement of the replaced file objects, and
    /// a garbage-collection pass. Used by every [`LsmTree::apply_job`]
    /// branch and by the secondary-delete page-drop path, so the commit
    /// ordering lives in exactly one place.
    fn commit_version(
        &mut self,
        levels: Vec<Level>,
        new_tables: &[Arc<SsTable>],
        retired: Vec<Arc<SsTable>>,
    ) -> Result<()> {
        self.commit_or_release(&levels, new_tables)?;
        for t in new_tables {
            self.versions.register_table(t);
        }
        self.versions.install(levels);
        for t in retired {
            self.versions.retire_table(t);
        }
        self.versions.collect_garbage(self.backend.as_ref());
        Ok(())
    }

    // ---------------------------------------------------------- introspection

    /// Engine configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// The logical clock driving TTLs and tombstone ages.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Lifetime operation counters (write-side counters plus the lock-free
    /// read-side lookup counters, folded together).
    pub fn stats(&self) -> TreeStats {
        let mut s = self.stats.clone();
        s.point_lookups += self.counters.point_lookups.load(Ordering::Relaxed);
        s.range_lookups += self.counters.range_lookups.load(Ordering::Relaxed);
        s
    }

    /// Snapshot of the device's I/O counters, with the WAL's and the
    /// manifest's durability barriers folded into `fsyncs` (the backend
    /// counts its own).
    pub fn io_snapshot(&self) -> IoSnapshot {
        let mut snap = self.backend.stats().snapshot();
        if let Some(wal) = &self.wal {
            snap.fsyncs += wal.fsync_count();
        }
        if let Some(manifest) = &self.manifest {
            snap.fsyncs += manifest.fsync_count();
        }
        snap
    }

    /// Durability barriers issued by the attached WAL (0 without one).
    /// Group commit exists to keep this sublinear in the record count.
    pub fn wal_fsync_count(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.fsync_count())
    }

    /// The storage device the tree writes to.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The version set publishing the disk levels (white-box access for
    /// tests: install counts, pinned snapshots, garbage length).
    pub fn versions(&self) -> &Arc<VersionSet> {
        &self.versions
    }

    /// Number of disk levels currently allocated.
    pub fn level_count(&self) -> usize {
        self.versions.current().levels.len()
    }

    /// Number of files per level (index 0 = first disk level).
    pub fn files_per_level(&self) -> Vec<usize> {
        self.versions.current().levels.iter().map(|l| l.file_count()).collect()
    }

    /// Total entries currently stored on disk (including tombstones and
    /// stale versions).
    pub fn disk_entries(&self) -> u64 {
        self.versions.current().levels.iter().map(|l| l.total_entries()).sum()
    }

    /// Total bytes currently stored on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.versions.current().levels.iter().map(|l| l.total_bytes()).sum()
    }

    /// Number of entries currently buffered in memory (active + frozen).
    pub fn buffered_entries(&self) -> usize {
        self.mem.active.read().len()
            + self.mem.frozen.read().as_ref().map(|f| f.len()).unwrap_or(0)
    }

    /// A copy of the current disk levels (used by policies' tests, KiWi
    /// planning and the benchmark harness for white-box inspection; the
    /// `Arc`-shared files make this cheap).
    pub fn levels(&self) -> Vec<Level> {
        self.versions.current().levels.clone()
    }

    /// Write amplification so far (paper §3.2.3): device bytes written beyond
    /// the bytes of new/modified data, relative to the latter.
    pub fn write_amplification(&self) -> f64 {
        self.stats().write_amplification(self.io_snapshot().bytes_written)
    }

    /// In-memory footprint of all filters and fence pointers, in bytes.
    pub fn metadata_footprint(&self) -> u64 {
        self.versions
            .current()
            .levels
            .iter()
            .flat_map(|l| l.all_tables())
            .map(|t| t.memory_footprint() as u64)
            .sum()
    }

    /// Produces a measurement-time snapshot of the tree contents: space
    /// amplification inputs, tombstone counts and tombstone-age distribution.
    ///
    /// Note: this reads every page of the tree through the backend, so take
    /// an [`LsmTree::io_snapshot`] *before* calling it if you are measuring
    /// I/O activity.
    pub fn snapshot_contents(&self) -> Result<ContentSnapshot> {
        let now = self.clock.now();
        let mut all: Vec<Entry> = Vec::new();
        let mut rts: Vec<Entry> = Vec::new();
        let mut tombstone_file_ages = Vec::new();
        let mut files = 0usize;
        let mut metadata_bytes = 0u64;
        let version = self.versions.current();
        for level in &version.levels {
            for run in &level.runs {
                for table in run.tables() {
                    files += 1;
                    metadata_bytes += table.memory_footprint() as u64;
                    if table.has_tombstones() {
                        tombstone_file_ages.push((table.tombstone_age(now), table.tombstone_count()));
                    }
                    all.extend(table.read_all_entries(self.backend.as_ref())?);
                    rts.extend(table.range_tombstones.iter().cloned());
                }
            }
        }
        // include the buffer (active + frozen)
        {
            let active = self.mem.active.read();
            all.extend(active.iter().cloned());
            rts.extend(active.range_tombstones().iter().cloned());
        }
        if let Some(f) = self.mem.frozen.read().as_ref() {
            all.extend(f.entries.iter().cloned());
            rts.extend(f.range_tombstones.iter().cloned());
        }

        let total_entries = (all.len() + rts.len()) as u64;
        let total_bytes: u64 = all.iter().map(|e| e.encoded_size() as u64).sum::<u64>()
            + rts.iter().map(|e| e.encoded_size() as u64).sum::<u64>();
        let tombstones =
            all.iter().filter(|e| e.is_tombstone()).count() as u64 + rts.len() as u64;

        let merged = merge_entries(vec![all], rts, true);
        let unique_entries = merged.entries.len() as u64;
        let unique_bytes: u64 = merged.entries.iter().map(|e| e.encoded_size() as u64).sum();

        Ok(ContentSnapshot {
            total_bytes,
            unique_bytes,
            total_entries,
            unique_entries,
            tombstones,
            tombstone_file_ages,
            populated_levels: version.levels.iter().filter(|l| !l.is_empty()).count(),
            files,
            metadata_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::{FileSelection, SaturationPolicy};

    fn tree(config: LsmConfig) -> LsmTree {
        let backend = lethe_storage::InMemoryBackend::new_shared();
        LsmTree::new(
            config,
            backend,
            LogicalClock::new(),
            Box::new(SaturationPolicy::new(FileSelection::MinOverlap)),
        )
        .unwrap()
    }

    fn value(i: u64) -> Bytes {
        Bytes::from(format!("value-{i:08}"))
    }

    #[test]
    fn put_get_roundtrip_through_flushes() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..500u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        for k in (0..500u64).step_by(7) {
            assert_eq!(t.get(k).unwrap(), Some(value(k)), "key {k}");
        }
        assert_eq!(t.get(10_000).unwrap(), None);
        assert!(t.level_count() >= 1);
        assert!(t.stats().flushes > 0);
    }

    #[test]
    fn write_batch_applies_all_ops_in_order() {
        let mut t = tree(LsmConfig::small_for_test());
        t.put(5, 50, value(5)).unwrap();
        let mut b = WriteBatch::new();
        b.put(1, 10, value(1)).put(2, 20, value(2)).delete(5).put(1, 11, value(100));
        t.write_batch(b).unwrap();
        // last op wins within the batch; the pre-existing key is deleted
        assert_eq!(t.get(1).unwrap(), Some(value(100)));
        assert_eq!(t.get(2).unwrap(), Some(value(2)));
        assert_eq!(t.get(5).unwrap(), None);
        // empty batches are free
        t.write_batch(WriteBatch::new()).unwrap();
        // batches survive flush + compaction churn
        for k in 100..600u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        assert_eq!(t.get(1).unwrap(), Some(value(100)));
        assert_eq!(t.get(5).unwrap(), None);
    }

    #[test]
    fn write_batch_secondary_delete_purges_range() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..20u64 {
            t.put(k, k, value(k)).unwrap();
        }
        let mut b = WriteBatch::new();
        b.secondary_range_delete(0, 10).put(50, 5, value(50));
        t.write_batch(b).unwrap();
        for k in 0..10u64 {
            assert_eq!(t.get(k).unwrap(), None, "delete key {k} in purge range");
        }
        assert_eq!(t.get(15).unwrap(), Some(value(15)));
        // the put rides in the same batch even though its delete key (5)
        // falls in the purged range: ops apply in order
        assert_eq!(t.get(50).unwrap(), Some(value(50)));
    }

    #[test]
    fn batches_replay_from_wal_and_respect_commit_filter() {
        use lethe_storage::MemWal;
        let wal = MemWal::new();
        // stage one local batch (commit point = the frame) and one prepared
        // cross-shard slice for an id that never committed
        {
            let t = tree(LsmConfig::small_for_test());
            let mut t = t.with_wal(Box::new(MemWal::new()));
            let mut b = WriteBatch::new();
            b.put(1, 10, value(1)).delete(2);
            t.write_batch(b).unwrap();
            // copy the records into the outer wal plus an uncommitted slice
            for r in t.wal.as_ref().unwrap().replay().unwrap() {
                wal.append(r).unwrap();
            }
            wal.append(WalRecord::Batch {
                id: Some(99),
                ops: vec![BatchOp::Put { sort_key: 7, delete_key: 70, value: value(7) }],
                ts: 1,
            })
            .unwrap();
            wal.append(WalRecord::Batch {
                id: Some(100),
                ops: vec![BatchOp::Put { sort_key: 8, delete_key: 80, value: value(8) }],
                ts: 2,
            })
            .unwrap();
        }
        let mut t = tree(LsmConfig::small_for_test());
        t.set_committed_batches([100u64].into_iter().collect());
        let replayed = t.recover_from(&wal).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(t.get(1).unwrap(), Some(value(1)));
        assert_eq!(t.get(2).unwrap(), None);
        assert_eq!(t.get(7).unwrap(), None, "uncommitted prepared slice must roll back");
        assert_eq!(t.get(8).unwrap(), Some(value(8)), "committed slice must apply");
    }

    #[test]
    fn shared_seqnum_allocator_spans_trees() {
        let alloc = Arc::new(AtomicU64::new(1));
        let mut a =
            tree(LsmConfig::small_for_test()).with_seqnum_allocator(Arc::clone(&alloc));
        let mut b =
            tree(LsmConfig::small_for_test()).with_seqnum_allocator(Arc::clone(&alloc));
        a.put(1, 1, value(1)).unwrap();
        b.put(2, 2, value(2)).unwrap();
        a.put(3, 3, value(3)).unwrap();
        assert_eq!(alloc.load(Ordering::Relaxed), 4, "three writes drew three seqnums");
    }

    #[test]
    fn updates_return_newest_value() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..200u64 {
            t.put(k, k, value(k)).unwrap();
        }
        for k in 0..200u64 {
            t.put(k, k, Bytes::from(format!("new-{k}"))).unwrap();
        }
        t.flush().unwrap();
        for k in (0..200u64).step_by(11) {
            assert_eq!(t.get(k).unwrap(), Some(Bytes::from(format!("new-{k}"))));
        }
    }

    #[test]
    fn point_delete_hides_key_everywhere() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..300u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        for k in (0..300u64).step_by(3) {
            t.delete(k).unwrap();
        }
        // visible immediately (from the buffer)
        assert_eq!(t.get(0).unwrap(), None);
        assert_eq!(t.get(3).unwrap(), None);
        assert_eq!(t.get(1).unwrap(), Some(value(1)));
        // and still deleted after flush + compaction
        t.flush().unwrap();
        t.maintain().unwrap();
        assert_eq!(t.get(0).unwrap(), None);
        assert_eq!(t.get(299).unwrap(), Some(value(299)));
    }

    #[test]
    fn range_delete_on_sort_key() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..200u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.delete_range(50, 100).unwrap();
        assert_eq!(t.get(49).unwrap(), Some(value(49)));
        assert_eq!(t.get(50).unwrap(), None);
        assert_eq!(t.get(99).unwrap(), None);
        assert_eq!(t.get(100).unwrap(), Some(value(100)));
        // after flush and compaction the result is identical
        t.flush().unwrap();
        t.maintain().unwrap();
        assert_eq!(t.get(75).unwrap(), None);
        let live = t.range(0, 200).unwrap();
        assert_eq!(live.len(), 150);
        // empty range delete is a no-op
        t.delete_range(10, 10).unwrap();
        assert_eq!(t.get(10).unwrap(), Some(value(10)));
    }

    #[test]
    fn range_scan_merges_memtable_and_disk() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..100u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        // overwrite some keys in the buffer only
        for k in 40..60u64 {
            t.put(k, k, Bytes::from_static(b"fresh")).unwrap();
        }
        let got = t.range(30, 70).unwrap();
        assert_eq!(got.len(), 40);
        for (k, v) in got {
            if (40..60).contains(&k) {
                assert_eq!(v, Bytes::from_static(b"fresh"));
            } else {
                assert_eq!(v, value(k));
            }
        }
    }

    #[test]
    fn tree_grows_levels_under_load() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.size_ratio = 3;
        let mut t = tree(cfg);
        for k in 0..3000u64 {
            t.put(k % 1000, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        assert!(t.level_count() >= 2, "levels: {}", t.level_count());
        assert!(t.stats().compactions > 0);
        assert!(t.write_amplification() > 0.0);
        assert!(t.disk_entries() > 0);
        assert!(t.disk_bytes() > 0);
        assert!(t.metadata_footprint() > 0);
    }

    #[test]
    fn tiering_keeps_multiple_runs() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.merge_policy = MergePolicy::Tiering;
        cfg.size_ratio = 4;
        let mut t = tree(cfg);
        for k in 0..2000u64 {
            t.put(k % 500, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        for k in (0..500u64).step_by(13) {
            assert!(t.get(k).unwrap().is_some(), "key {k}");
        }
        assert!(t.stats().compactions > 0);
    }

    #[test]
    fn secondary_range_delete_with_page_drops() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = 4;
        cfg.max_pages_per_file = 8;
        cfg.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
        let mut t = tree(cfg);
        // delete key is decorrelated from sort key
        for k in 0..1000u64 {
            t.put(k, (k * 7919) % 10_000, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        let stats = t.secondary_range_delete(0, 5_000).unwrap();
        assert!(stats.entries_deleted > 300, "{stats:?}");
        assert!(stats.full_page_drops > 0, "{stats:?}");
        // all surviving entries have delete keys outside the range
        let survivors = t.secondary_range_scan(0, 10_000).unwrap();
        assert!(survivors.iter().all(|e| e.delete_key >= 5_000));
        // point lookups agree
        for k in 0..1000u64 {
            let deleted = (k * 7919) % 10_000 < 5_000;
            assert_eq!(t.get(k).unwrap().is_none(), deleted, "key {k}");
        }
    }

    #[test]
    fn secondary_range_delete_with_full_compaction_baseline() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.secondary_delete_mode = SecondaryDeleteMode::FullTreeCompaction;
        let mut t = tree(cfg);
        for k in 0..500u64 {
            t.put(k, (k * 31) % 1000, value(k)).unwrap();
        }
        t.flush().unwrap();
        let before = t.stats().full_tree_compactions;
        let stats = t.secondary_range_delete(0, 500).unwrap();
        assert_eq!(t.stats().full_tree_compactions, before + 1);
        assert!(stats.entries_deleted > 100);
        for k in 0..500u64 {
            let deleted = (k * 31) % 1000 < 500;
            assert_eq!(t.get(k).unwrap().is_none(), deleted, "key {k}");
        }
    }

    #[test]
    fn blind_delete_suppression() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.suppress_blind_deletes = true;
        let mut t = tree(cfg);
        for k in 0..100u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        // deleting an existing key inserts a tombstone
        assert!(t.delete(5).unwrap());
        // deleting a key that never existed is suppressed
        assert!(!t.delete(1_000_000).unwrap());
        assert_eq!(t.stats().blind_deletes_suppressed, 1);
        assert_eq!(t.get(5).unwrap(), None);
    }

    #[test]
    fn force_full_compaction_collapses_tree() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.size_ratio = 3;
        let mut t = tree(cfg);
        for k in 0..2000u64 {
            t.put(k % 700, k, value(k)).unwrap();
        }
        for k in (0..700u64).step_by(2) {
            t.delete(k).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        t.force_full_compaction().unwrap();
        let snap = t.snapshot_contents().unwrap();
        // a full compaction persists every delete: no tombstones remain
        assert_eq!(snap.tombstones, 0);
        assert_eq!(snap.populated_levels, 1);
        // and queries still work
        assert!(t.get(1).unwrap().is_some());
        assert_eq!(t.get(0).unwrap(), None);
    }

    #[test]
    fn snapshot_reports_space_amplification() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..400u64 {
            t.put(k % 100, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        let snap = t.snapshot_contents().unwrap();
        assert_eq!(snap.unique_entries, 100);
        assert!(snap.total_entries >= snap.unique_entries);
        assert!(snap.space_amplification() >= 0.0);
        assert!(snap.files > 0);
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        // large buffer so nothing is flushed (and the WAL never truncated):
        // the whole working set must be recoverable from the log alone
        let mut cfg = LsmConfig::small_for_test();
        cfg.buffer_pages = 1024;
        let wal = std::sync::Arc::new(lethe_storage::MemWal::new());

        struct SharedWal(std::sync::Arc<lethe_storage::MemWal>);
        impl Wal for SharedWal {
            fn append(&self, r: WalRecord) -> Result<()> {
                self.0.append(r)
            }
            fn replay(&self) -> Result<Vec<WalRecord>> {
                self.0.replay()
            }
            fn truncate(&self) -> Result<()> {
                self.0.truncate()
            }
            fn sync(&self) -> Result<()> {
                self.0.sync()
            }
            fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize> {
                self.0.purge_older_than(cutoff)
            }
        }

        let mut t = tree(cfg.clone()).with_wal(Box::new(SharedWal(std::sync::Arc::clone(&wal))));
        for k in 0..50u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.delete(7).unwrap();
        // simulate a crash: build a fresh tree and replay the WAL
        let mut recovered = tree(cfg);
        let replayed = recovered.recover_from(wal.as_ref()).unwrap();
        assert_eq!(replayed, 51);
        assert_eq!(recovered.get(3).unwrap(), Some(value(3)));
        assert_eq!(recovered.get(7).unwrap(), None);
    }

    #[test]
    fn wal_replay_preserves_tombstones_stats_and_timestamps() {
        // regression: the old replay path went through the public put/delete
        // API, so blind-delete suppression could drop a legitimately logged
        // tombstone, ingest stats were double-counted across restarts, and
        // replayed records were re-stamped by the ingest clock
        let mut cfg = LsmConfig::small_for_test();
        cfg.buffer_pages = 1024;
        cfg.suppress_blind_deletes = true;
        let wal = lethe_storage::MemWal::new();
        // a tombstone whose key was flushed before the crash: the reopened
        // buffer has no trace of it, so the public path would call it blind
        wal.append(WalRecord::Delete { sort_key: 5, ts: 12_345 }).unwrap();
        wal.append(WalRecord::Put {
            sort_key: 6,
            delete_key: 6,
            value: Bytes::from_static(b"v"),
            ts: 12_400,
        })
        .unwrap();
        let mut t = tree(cfg);
        assert_eq!(t.recover_from(&wal).unwrap(), 2);
        // the logged tombstone survives replay
        assert_eq!(t.buffered_entries(), 2);
        assert_eq!(t.get(5).unwrap(), None);
        assert_eq!(t.get(6).unwrap(), Some(Bytes::from_static(b"v")));
        // ingest statistics are not re-counted
        assert_eq!(t.stats().entries_ingested, 0);
        assert_eq!(t.stats().point_deletes_issued, 0);
        assert_eq!(t.stats().blind_deletes_suppressed, 0);
        // the clock sits at the logged watermark, not a re-stamped one
        assert_eq!(t.clock().now(), 12_400);
    }

    #[test]
    fn manifest_recovery_restores_flushed_tree() {
        use lethe_storage::{FileBackend, FileWal, Manifest};
        let dir = std::env::temp_dir().join(format!("lethe-tree-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = LsmConfig::small_for_test();
        cfg.size_ratio = 3;
        let open = |cfg: &LsmConfig| -> (LsmTree, FileWal) {
            let backend = Arc::new(FileBackend::open(&dir).unwrap());
            let wal = FileWal::open(dir.join("lethe.wal")).unwrap();
            let manifest = Manifest::open(dir.join("lethe.manifest")).unwrap();
            let t = LsmTree::new(
                cfg.clone(),
                backend,
                LogicalClock::new(),
                Box::new(crate::compaction::SaturationPolicy::new(
                    crate::compaction::FileSelection::MinOverlap,
                )),
            )
            .unwrap()
            .with_manifest(manifest);
            (t, wal)
        };
        let (files_before, seq_hwm);
        {
            let (mut t, wal) = open(&cfg);
            t.recover(&wal).unwrap();
            let mut t = t.with_wal(Box::new(wal));
            for k in 0..2000u64 {
                t.put(k % 700, k, value(k)).unwrap();
            }
            for k in (0..700u64).step_by(5) {
                t.delete(k).unwrap();
            }
            t.flush().unwrap();
            t.maintain().unwrap();
            files_before = t.files_per_level();
            seq_hwm = t.next_seqnum.load(Ordering::Relaxed);
            assert!(t.level_count() >= 2, "need a multi-level tree to make this meaningful");
        }
        {
            let (mut t, wal) = open(&cfg);
            let report = t.recover(&wal).unwrap();
            assert_eq!(report.files_recovered, files_before.iter().sum::<usize>());
            assert_eq!(t.files_per_level(), files_before);
            assert!(
                t.next_seqnum.load(Ordering::Relaxed) >= seq_hwm,
                "seqnums must not regress across restarts"
            );
            for k in 0..700u64 {
                let expect_deleted = k % 5 == 0;
                let got = t.get(k).unwrap();
                if expect_deleted {
                    assert_eq!(got, None, "key {k} should stay deleted after recovery");
                } else {
                    let newest = (0..2000u64).filter(|v| v % 700 == k).max().unwrap();
                    assert_eq!(got, Some(value(newest)), "key {k}");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clock_advances_with_ingestion() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.ingestion_rate = 1000; // 1000 entries/s → 1ms per entry
        let mut t = tree(cfg);
        for k in 0..100u64 {
            t.put(k, k, value(k)).unwrap();
        }
        assert_eq!(t.clock().now(), 100_000);
    }

    #[test]
    fn frozen_buffer_stays_readable_until_version_installed() {
        // background mode: a full buffer is only frozen; every write must
        // stay visible from the reader between freeze and flush
        let mut t = tree(LsmConfig::small_for_test());
        t.set_maintenance_mode(MaintenanceMode::Background);
        let reader = t.reader();
        for k in 0..200u64 {
            t.put(k, k, value(k)).unwrap();
        }
        assert!(t.has_frozen(), "filling the buffer in background mode must freeze it");
        for k in (0..200u64).step_by(17) {
            assert_eq!(reader.get(k).unwrap(), Some(value(k)), "key {k} invisible while frozen");
        }
        // the worker-equivalent cycle: plan → execute (lock-free) → apply
        while let Some(plan) = t.plan_job(true) {
            let ctx = t.build_ctx();
            let out = plan.execute(&ctx).unwrap();
            assert!(t.apply_job(plan, out).unwrap());
        }
        assert!(!t.has_frozen());
        assert!(t.level_count() >= 1);
        for k in (0..200u64).step_by(17) {
            assert_eq!(reader.get(k).unwrap(), Some(value(k)), "key {k} lost by flush");
        }
    }

    #[test]
    fn pinned_snapshot_survives_full_compaction() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.size_ratio = 3;
        let mut t = tree(cfg);
        for k in 0..1000u64 {
            t.put(k % 300, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        let reader = t.reader();
        let pinned = reader.pin_version();
        let files_before: usize = pinned.levels.iter().map(|l| l.file_count()).sum();
        assert!(files_before > 0);
        // rewrite the whole tree under the pin
        t.force_full_compaction().unwrap();
        // the pinned version still reads every page it references
        for level in &pinned.levels {
            for run in &level.runs {
                for table in run.tables() {
                    table.read_all_entries(t.backend().as_ref()).unwrap();
                }
            }
        }
        assert!(t.versions().garbage_len() > 0, "replaced files must await the pin");
        drop(pinned);
        t.versions().collect_garbage(t.backend().as_ref());
        assert_eq!(t.versions().garbage_len(), 0);
    }

    #[test]
    fn iter_range_streams_a_stable_snapshot_through_maintenance() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..300u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        let reader = t.reader();
        let expected = reader.range(50, 250).unwrap();
        let mut iter = reader.iter_range(50, 250).unwrap();
        let mut got: Vec<(SortKey, Bytes)> = Vec::new();
        for _ in 0..20 {
            got.push(iter.next().unwrap().unwrap());
        }
        // restructure the whole tree mid-iteration: deletes, a flush and a
        // full compaction retire every file the iterator still has to read
        for k in (0..300u64).step_by(3) {
            t.delete(k).unwrap();
        }
        t.flush().unwrap();
        t.force_full_compaction().unwrap();
        got.extend(iter.map(|r| r.unwrap()));
        assert_eq!(got, expected, "a live iterator must stream its creation-time snapshot");
        // a scan opened now observes the deletes
        let after = reader.range(50, 250).unwrap();
        assert!(after.len() < expected.len());
        // and dropping the iterator released its version pin: the retired
        // files become reclaimable
        t.versions().collect_garbage(t.backend().as_ref());
        assert_eq!(t.versions().garbage_len(), 0);
    }

    #[test]
    fn write_stall_signal_tracks_frozen_and_full_buffer() {
        let mut t = tree(LsmConfig::small_for_test());
        t.set_maintenance_mode(MaintenanceMode::Background);
        assert!(!t.write_stalled());
        for k in 0..200u64 {
            t.put(k, k, value(k)).unwrap();
        }
        assert!(t.has_frozen());
        // keep writing without a worker: active fills up again → stall
        for k in 200..400u64 {
            t.put(k, k, value(k)).unwrap();
        }
        assert!(t.write_stalled());
        t.flush().unwrap();
        assert!(!t.write_stalled());
        assert_eq!(t.range(0, 400).unwrap().len(), 400);
    }
}
