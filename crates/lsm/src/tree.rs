//! The LSM tree engine.
//!
//! [`LsmTree`] wires together the memtable, the leveled/tiered on-device
//! structure, a pluggable [`CompactionPolicy`]
//! and the KiWi file layout into a complete storage engine: puts, point and
//! range deletes on the sort key, secondary range deletes on the delete key,
//! point lookups, range scans, flushing and compaction.
//!
//! The same type serves as the state-of-the-art baseline (saturation-driven
//! policies, `h = 1`, full-tree compaction for secondary deletes) and as the
//! substrate that the `lethe-core` crate configures into Lethe (FADE policy,
//! `h > 1`, KiWi page drops).

use crate::compaction::{CompactionPolicy, CompactionTask, TreeView};
use crate::config::{LsmConfig, MergePolicy, SecondaryDeleteMode};
use crate::level::{Level, Run};
use crate::merge::merge_entries;
use crate::sstable::{SecondaryDeleteStats, SsTable};
use crate::stats::{ContentSnapshot, TreeStats};
use bytes::Bytes;
use lethe_storage::{
    DeleteKey, Entry, EntryKind, Histogram, IoSnapshot, LogicalClock, Manifest, ManifestState,
    PageId, Result, SeqNum, SortKey, StorageBackend, StorageError, Timestamp, Wal, WalRecord,
};
use std::collections::HashSet;
use std::sync::Arc;

/// Safety bound on back-to-back compactions triggered by a single flush.
const MAX_MAINTENANCE_ROUNDS: usize = 10_000;

/// What [`LsmTree::recover`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Files rebuilt from the manifest (Bloom filters and fence pointers
    /// re-derived from their pages).
    pub files_recovered: usize,
    /// Device pages released because the durable manifest state did not
    /// reference them (half-written flush output, pages dropped after the
    /// last committed edit).
    pub pages_released: usize,
    /// WAL records replayed on top of the recovered tree.
    pub wal_records_replayed: usize,
}

/// A complete LSM storage engine instance.
pub struct LsmTree {
    config: LsmConfig,
    backend: Arc<dyn StorageBackend>,
    clock: LogicalClock,
    policy: Box<dyn CompactionPolicy>,
    memtable: lethe_storage::MemTable,
    /// Insertion time of the oldest tombstone currently buffered.
    buffer_oldest_tombstone_ts: Option<Timestamp>,
    levels: Vec<Level>,
    next_seqnum: SeqNum,
    next_file_id: u64,
    stats: TreeStats,
    sort_key_histogram: Histogram,
    delete_key_histogram: Histogram,
    wal: Option<Box<dyn Wal>>,
    manifest: Option<Manifest>,
}

impl LsmTree {
    /// Creates an engine on `backend` with the given compaction policy.
    pub fn new(
        config: LsmConfig,
        backend: Arc<dyn StorageBackend>,
        clock: LogicalClock,
        policy: Box<dyn CompactionPolicy>,
    ) -> Result<Self> {
        config.validate().map_err(StorageError::InvalidOperation)?;
        let domain = config.key_domain.max(2);
        Ok(LsmTree {
            sort_key_histogram: Histogram::new(0, domain, config.histogram_buckets),
            delete_key_histogram: Histogram::new(0, domain, config.histogram_buckets),
            config,
            backend,
            clock,
            policy,
            memtable: lethe_storage::MemTable::new(),
            buffer_oldest_tombstone_ts: None,
            levels: Vec::new(),
            next_seqnum: 1,
            next_file_id: 1,
            stats: TreeStats::default(),
            wal: None,
            manifest: None,
        })
    }

    /// Attaches a write-ahead log; every subsequent mutation is logged before
    /// it is buffered.
    pub fn with_wal(mut self, wal: Box<dyn Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Attaches a durable manifest; every subsequent flush, compaction and
    /// secondary page drop commits an edit describing the new tree state
    /// before the WAL is allowed to forget the covered records. Attach it
    /// *before* calling [`LsmTree::recover`] so the recorded state is
    /// rebuilt first.
    pub fn with_manifest(mut self, manifest: Manifest) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// Recovers a freshly-constructed engine from its durable artifacts:
    /// rebuilds levels, runs and files from the attached manifest (re-deriving
    /// Bloom filters and fence pointers from page contents), releases device
    /// pages the manifest does not reference (half-written flush output,
    /// pages dropped after the last manifest edit), then replays the WAL on
    /// top through the internal replay path. The WAL is *not* truncated here:
    /// its records stay until the next flush commits a manifest edit that
    /// covers them, so a crash during or right after recovery loses nothing.
    pub fn recover(&mut self, wal: &dyn Wal) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        if !self.levels.is_empty() || !self.memtable.is_empty() {
            return Err(StorageError::InvalidOperation(
                "recover() requires a freshly-constructed (empty) tree".into(),
            ));
        }
        if let Some(manifest) = &self.manifest {
            let state = manifest.state().clone();
            self.next_file_id = self.next_file_id.max(state.next_file_id);
            self.next_seqnum = self.next_seqnum.max(state.next_seqnum);
            self.clock.advance_to(state.clock_micros);
            let mut levels = Vec::with_capacity(state.levels.len());
            for level_desc in &state.levels {
                let mut level = Level::new();
                for run_desc in level_desc {
                    let mut tables = Vec::with_capacity(run_desc.len());
                    for fd in run_desc {
                        let table = SsTable::recover(fd, &self.config, self.backend.as_ref())?;
                        self.next_file_id = self.next_file_id.max(fd.id + 1);
                        self.next_seqnum = self.next_seqnum.max(fd.max_seqnum + 1);
                        report.files_recovered += 1;
                        tables.push(Arc::new(table));
                    }
                    level.runs.push(Run::new(tables));
                }
                level.prune_empty_runs();
                levels.push(level);
            }
            self.levels = levels;
            // the device scan resurfaces every frame in the data file; drop
            // whatever the durable state does not reference
            let referenced: HashSet<PageId> =
                state.files().flat_map(|f| f.tiles.iter().flatten().copied()).collect();
            for id in self.backend.page_ids() {
                if !referenced.contains(&id) {
                    let _ = self.backend.drop_page(id);
                    report.pages_released += 1;
                }
            }
        }
        report.wal_records_replayed = self.recover_from(wal)?;
        Ok(report)
    }

    /// Replays a WAL into the engine through the internal replay path:
    /// unlike the public write path it never suppresses a logged tombstone as
    /// blind, never re-counts ingest statistics or histograms (they were
    /// counted when the record was first acknowledged), and re-applies each
    /// record at its *logged* timestamp instead of re-stamping it.
    pub fn recover_from(&mut self, wal: &dyn Wal) -> Result<usize> {
        let records = wal.replay()?;
        let n = records.len();
        for r in records {
            self.replay_record(r)?;
        }
        Ok(n)
    }

    /// Applies one logged record to the buffer, bypassing acknowledgement-time
    /// bookkeeping (see [`LsmTree::recover_from`]).
    fn replay_record(&mut self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::Put { sort_key, delete_key, value, ts } => {
                self.clock.advance_to(ts);
                let seq = self.next_seq();
                self.memtable.put(sort_key, delete_key, seq, value);
            }
            WalRecord::Delete { sort_key, ts } => {
                self.clock.advance_to(ts);
                let seq = self.next_seq();
                self.buffer_oldest_tombstone_ts.get_or_insert(ts);
                self.memtable.delete(sort_key, seq);
            }
            WalRecord::DeleteRange { start, end, ts } => {
                if end <= start {
                    return Ok(());
                }
                self.clock.advance_to(ts);
                let seq = self.next_seq();
                self.buffer_oldest_tombstone_ts.get_or_insert(ts);
                self.memtable.delete_range(start, end, seq);
            }
            WalRecord::SecondaryDelete { d_lo, d_hi, ts } => {
                self.clock.advance_to(ts);
                // re-purges buffered entries replayed so far and re-drops
                // any on-device pages the pre-crash run did not get to
                // (idempotent on the ones it did)
                self.apply_secondary_range_delete(d_lo, d_hi)?;
            }
        }
        self.maybe_flush()
    }

    // ----------------------------------------------------------------- writes

    /// Inserts (or updates) `sort_key` with the given delete key and value.
    pub fn put(&mut self, sort_key: SortKey, delete_key: DeleteKey, value: Bytes) -> Result<()> {
        self.advance_clock_for_ingest();
        let now = self.clock.now();
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::Put { sort_key, delete_key, value: value.clone(), ts: now })?;
        }
        let seq = self.next_seq();
        let entry = Entry::put(sort_key, delete_key, seq, value);
        self.stats.record_ingest(entry.encoded_size() as u64);
        self.sort_key_histogram.add(sort_key);
        self.delete_key_histogram.add(delete_key);
        self.memtable.put(sort_key, delete_key, seq, entry.value);
        self.maybe_flush()
    }

    /// Issues a point delete for `sort_key`. Returns `false` when the delete
    /// was suppressed as *blind* (the key cannot exist anywhere in the tree —
    /// only checked when `suppress_blind_deletes` is enabled).
    pub fn delete(&mut self, sort_key: SortKey) -> Result<bool> {
        self.advance_clock_for_ingest();
        if self.config.suppress_blind_deletes && !self.key_may_exist(sort_key)? {
            self.stats.blind_deletes_suppressed += 1;
            return Ok(false);
        }
        let now = self.clock.now();
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::Delete { sort_key, ts: now })?;
        }
        let seq = self.next_seq();
        let entry = Entry::point_tombstone(sort_key, seq);
        self.stats.record_ingest(entry.encoded_size() as u64);
        self.stats.point_deletes_issued += 1;
        self.buffer_oldest_tombstone_ts.get_or_insert(now);
        self.memtable.delete(sort_key, seq);
        self.maybe_flush()?;
        Ok(true)
    }

    /// Issues a range delete on the **sort key** for `[start, end)`.
    pub fn delete_range(&mut self, start: SortKey, end: SortKey) -> Result<()> {
        if end <= start {
            return Ok(());
        }
        self.advance_clock_for_ingest();
        let now = self.clock.now();
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::DeleteRange { start, end, ts: now })?;
        }
        let seq = self.next_seq();
        let entry = Entry::range_tombstone(start, end, seq);
        self.stats.record_ingest(entry.encoded_size() as u64);
        self.stats.range_deletes_issued += 1;
        self.buffer_oldest_tombstone_ts.get_or_insert(now);
        self.memtable.delete_range(start, end, seq);
        self.maybe_flush()
    }

    /// Executes a secondary range delete: removes every entry whose **delete
    /// key** lies in `[d_lo, d_hi)`, using the strategy selected by
    /// [`LsmConfig::secondary_delete_mode`]. Logged to the WAL before it
    /// runs: the purge of *buffered* entries would otherwise be resurrected
    /// by replaying their still-logged puts after a crash.
    pub fn secondary_range_delete(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        if let Some(wal) = &self.wal {
            wal.append(WalRecord::SecondaryDelete { d_lo, d_hi, ts: self.clock.now() })?;
        }
        self.stats.secondary_range_deletes += 1;
        let result = self.apply_secondary_range_delete(d_lo, d_hi)?;
        self.stats.secondary_delete.merge(&result);
        Ok(result)
    }

    /// The logging- and statistics-free body of a secondary range delete,
    /// shared by the public path and WAL replay.
    fn apply_secondary_range_delete(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        // the buffered portion is purged in place in both modes
        self.memtable.purge_by_delete_key(d_lo, d_hi);
        let result = match self.config.secondary_delete_mode {
            SecondaryDeleteMode::KiwiPageDrops => self.secondary_delete_with_drops(d_lo, d_hi),
            SecondaryDeleteMode::FullTreeCompaction => {
                self.secondary_delete_with_full_compaction(d_lo, d_hi)
            }
        }?;
        self.commit_manifest()?;
        Ok(result)
    }

    fn secondary_delete_with_drops(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        let now = self.clock.now();
        let mut total = SecondaryDeleteStats::default();
        for level in &mut self.levels {
            for run in &mut level.runs {
                let ids: Vec<u64> = run.tables().iter().map(|t| t.meta.id).collect();
                for id in ids {
                    let table = match run.find_by_id(id) {
                        Some(t) => Arc::clone(t),
                        None => continue,
                    };
                    if table.meta.num_entries == 0
                        || table.meta.max_delete < d_lo
                        || table.meta.min_delete >= d_hi
                    {
                        continue;
                    }
                    let (replacement, stats) = table.secondary_range_delete(
                        d_lo,
                        d_hi,
                        &self.config,
                        self.backend.as_ref(),
                        now,
                    )?;
                    total.merge(&stats);
                    run.replace(id, replacement.map(Arc::new));
                }
            }
            level.prune_empty_runs();
        }
        Ok(total)
    }

    fn secondary_delete_with_full_compaction(
        &mut self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        // the state-of-the-art path: read, merge and rewrite the whole tree
        let mut stats = SecondaryDeleteStats::default();
        let before_entries: u64 = self.levels.iter().map(|l| l.total_entries()).sum();
        self.full_tree_compaction_filtered(Some((d_lo, d_hi)))?;
        let after_entries: u64 = self.levels.iter().map(|l| l.total_entries()).sum();
        stats.entries_deleted = before_entries.saturating_sub(after_entries);
        // every surviving page was read and rewritten
        stats.partial_page_drops =
            self.levels.iter().flat_map(|l| l.all_tables()).map(|t| t.page_count() as u64).sum();
        Ok(stats)
    }

    /// Forces a full-tree compaction (reads, merges and rewrites every file
    /// into the last level). This is the operation Lethe is designed to make
    /// unnecessary; it is exposed for the baselines and experiments.
    pub fn force_full_compaction(&mut self) -> Result<()> {
        self.full_tree_compaction_filtered(None)
    }

    // ----------------------------------------------------------------- reads

    /// Point lookup: returns the current value of `sort_key`, or `None` if
    /// the key does not exist or has been deleted.
    pub fn get(&mut self, sort_key: SortKey) -> Result<Option<Bytes>> {
        self.stats.point_lookups += 1;
        Ok(match self.get_entry(sort_key)? {
            Some(e) if e.kind == EntryKind::Put => Some(e.value),
            _ => None,
        })
    }

    /// Internal point lookup returning the newest version (possibly a
    /// tombstone) of `sort_key`.
    fn get_entry(&self, sort_key: SortKey) -> Result<Option<Entry>> {
        if let Some(e) = self.memtable.get(sort_key) {
            return Ok(Some(e));
        }
        let stats = self.backend.stats();
        for level in &self.levels {
            for run in &level.runs {
                // a key normally maps to one file, but range tombstones can
                // stretch a file's range over its neighbours
                let mut candidate: Option<Entry> = None;
                for table in run.tables() {
                    if !table.key_in_range(sort_key) {
                        continue;
                    }
                    if let Some(e) = table.get(sort_key, self.backend.as_ref(), &stats)? {
                        candidate = match candidate {
                            Some(c) if c.seqnum >= e.seqnum => Some(c),
                            _ => Some(e),
                        };
                    }
                }
                if candidate.is_some() {
                    return Ok(candidate);
                }
            }
        }
        Ok(None)
    }

    /// Range lookup on the sort key: returns the live `(key, value)` pairs in
    /// `[lo, hi)`, newest version per key, in key order.
    pub fn range(&mut self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        self.stats.range_lookups += 1;
        if hi <= lo {
            return Ok(Vec::new());
        }
        let mut inputs: Vec<Vec<Entry>> = vec![self.memtable.range(lo, hi)];
        let mut rts: Vec<Entry> = self.memtable.range_tombstones().to_vec();
        for level in &self.levels {
            for run in &level.runs {
                for table in run.overlapping_range(lo, hi) {
                    inputs.push(table.range_scan(lo, hi, self.backend.as_ref())?);
                    rts.extend(table.range_tombstones.iter().cloned());
                }
            }
        }
        let merged = merge_entries(inputs, rts, true);
        Ok(merged
            .entries
            .into_iter()
            .filter(|e| e.sort_key >= lo && e.sort_key < hi)
            .map(|e| (e.sort_key, e.value))
            .collect())
    }

    /// Secondary range lookup: returns every live entry whose **delete key**
    /// lies in `[d_lo, d_hi)`.
    pub fn secondary_range_scan(&mut self, d_lo: DeleteKey, d_hi: DeleteKey) -> Result<Vec<Entry>> {
        self.stats.range_lookups += 1;
        let mut hits: Vec<Entry> = self
            .memtable
            .iter()
            .filter(|e| !e.is_tombstone() && e.delete_key >= d_lo && e.delete_key < d_hi)
            .cloned()
            .collect();
        for level in &self.levels {
            for run in &level.runs {
                for table in run.tables() {
                    hits.extend(table.secondary_range_scan(d_lo, d_hi, self.backend.as_ref())?);
                }
            }
        }
        // keep only the globally newest version of each key, and only if that
        // version is live and still qualifies
        hits.sort_by(|a, b| a.sort_key.cmp(&b.sort_key).then_with(|| b.seqnum.cmp(&a.seqnum)));
        let mut out: Vec<Entry> = Vec::with_capacity(hits.len());
        for e in hits {
            if out.last().map(|p: &Entry| p.sort_key) == Some(e.sort_key) {
                continue;
            }
            // verify this is the newest version tree-wide (it may have been
            // updated or deleted by a newer entry outside the delete-key range)
            if let Some(newest) = self.get_entry(e.sort_key)? {
                if newest.seqnum == e.seqnum && newest.kind == EntryKind::Put {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }

    /// Returns `true` if `sort_key` may exist in the tree (memtable check
    /// plus Bloom probes; no page reads). Used for blind-delete suppression.
    pub fn key_may_exist(&self, sort_key: SortKey) -> Result<bool> {
        if self.memtable.get(sort_key).is_some() {
            return Ok(true);
        }
        let stats = self.backend.stats();
        for level in &self.levels {
            for run in &level.runs {
                for table in run.tables() {
                    if !table.key_in_range(sort_key) {
                        continue;
                    }
                    if !table.range_tombstones.is_empty() {
                        return Ok(true);
                    }
                    if let Some(tile_idx) = table.tile_fences.locate(sort_key) {
                        let tile = &table.tiles[tile_idx];
                        stats.record_bloom_probes(tile.pages.len() as u64);
                        if tile.pages.iter().any(|p| {
                            sort_key >= p.min_sort
                                && sort_key <= p.max_sort
                                && p.bloom.may_contain(sort_key)
                        }) {
                            return Ok(true);
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------ flush/compact

    fn next_seq(&mut self) -> SeqNum {
        let s = self.next_seqnum;
        self.next_seqnum += 1;
        s
    }

    fn next_file_id(&mut self) -> u64 {
        let id = self.next_file_id;
        self.next_file_id += 1;
        id
    }

    fn advance_clock_for_ingest(&self) {
        if self.config.auto_advance_clock {
            self.clock.advance_micros(self.config.micros_per_ingest());
        }
    }

    /// Describes the tree's current durable state for the manifest.
    fn describe_state(&self) -> ManifestState {
        ManifestState {
            next_file_id: self.next_file_id,
            next_seqnum: self.next_seqnum,
            clock_micros: self.clock.now(),
            levels: self
                .levels
                .iter()
                .map(|l| {
                    l.runs
                        .iter()
                        .map(|r| r.tables().iter().map(|t| t.describe()).collect())
                        .collect()
                })
                .collect(),
        }
    }

    /// Commits the current tree state to the attached manifest (if any):
    /// syncs the device first so the manifest never references pages that
    /// could be lost, then appends the edit. A no-op without a manifest.
    fn commit_manifest(&mut self) -> Result<()> {
        if self.manifest.is_none() {
            return Ok(());
        }
        self.backend.sync()?;
        let state = self.describe_state();
        self.manifest.as_mut().expect("manifest presence checked above").commit(state)
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.memtable.size_bytes() >= self.config.buffer_capacity_bytes() {
            self.flush()?;
            self.maintain()?;
        }
        Ok(())
    }

    /// Flushes the memtable to the first disk level and runs the compaction
    /// loop. A no-op when the buffer is empty.
    ///
    /// Durability ordering: the flushed files' pages are synced and a
    /// manifest edit describing the new tree state is committed **before**
    /// the WAL is truncated, so at no instant is an acknowledged write
    /// covered by neither log.
    pub fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let (entries, rts) = self.memtable.drain_sorted();
        let oldest_ts = self.buffer_oldest_tombstone_ts.take();
        self.stats.flushes += 1;
        if self.levels.is_empty() {
            self.levels.push(Level::new());
        }
        match self.config.merge_policy {
            MergePolicy::Tiering => {
                // the flushed buffer becomes a fresh run (newest first)
                let tables = self.build_tables(entries, rts, oldest_ts)?;
                self.levels[0].runs.insert(0, Run::new(tables));
            }
            MergePolicy::Leveling => {
                // greedy sort-merge with the resident run of level 1
                let mut inputs = vec![entries];
                let mut all_rts = rts;
                let mut oldest = oldest_ts;
                let resident = std::mem::take(&mut self.levels[0]);
                let mut victim_tables = Vec::new();
                for run in resident.runs {
                    for table in run.tables() {
                        inputs.push(table.read_all_entries(self.backend.as_ref())?);
                        all_rts.extend(table.range_tombstones.iter().cloned());
                        oldest = min_opt(oldest, table.meta.oldest_tombstone_ts);
                        victim_tables.push(Arc::clone(table));
                    }
                }
                let drop_tombstones = self.deepest_nonempty_level().is_none_or(|d| d == 0);
                let merged = merge_entries(inputs, all_rts, drop_tombstones);
                for t in victim_tables {
                    t.release_pages(self.backend.as_ref());
                }
                let oldest = if drop_tombstones { None } else { oldest };
                let tables = self.build_tables(merged.entries, merged.range_tombstones, oldest)?;
                self.levels[0] = Level::new();
                if !tables.is_empty() {
                    self.levels[0].runs.push(Run::new(tables));
                }
            }
        }
        self.commit_manifest()?;
        if let Some(wal) = &self.wal {
            wal.truncate()?;
        }
        Ok(())
    }

    /// Runs the compaction loop: repeatedly asks the policy for work until it
    /// reports none is needed.
    pub fn maintain(&mut self) -> Result<()> {
        for _ in 0..MAX_MAINTENANCE_ROUNDS {
            self.policy.on_tree_growth(self.levels.len());
            let task = {
                let view = TreeView {
                    levels: &self.levels,
                    capacities: (0..self.levels.len())
                        .map(|i| self.config.level_capacity_bytes(i + 1))
                        .collect(),
                    now: self.clock.now(),
                    config: &self.config,
                    sort_key_histogram: &self.sort_key_histogram,
                };
                self.policy.pick(&view)
            };
            match task {
                None => break,
                Some(CompactionTask::LeveledPartial { level, file_id }) => {
                    self.compact_files(level, &[file_id])?;
                }
                Some(CompactionTask::LeveledMulti { level, file_ids }) => {
                    self.compact_files(level, &file_ids)?;
                }
                Some(CompactionTask::TieredLevel { level }) => {
                    self.compact_tier(level)?;
                }
                Some(CompactionTask::FullTree) => {
                    self.full_tree_compaction_filtered(None)?;
                }
            }
        }
        Ok(())
    }

    fn deepest_nonempty_level(&self) -> Option<usize> {
        (0..self.levels.len()).rev().find(|&i| !self.levels[i].is_empty())
    }

    fn ensure_level(&mut self, idx: usize) {
        while self.levels.len() <= idx {
            self.levels.push(Level::new());
        }
    }

    /// Builds one or more files (each at most `max_pages_per_file` pages)
    /// from a merged, sorted entry stream.
    fn build_tables(
        &mut self,
        entries: Vec<Entry>,
        range_tombstones: Vec<Entry>,
        oldest_tombstone_ts: Option<Timestamp>,
    ) -> Result<Vec<Arc<SsTable>>> {
        if entries.is_empty() && range_tombstones.is_empty() {
            return Ok(Vec::new());
        }
        let per_file = self.config.entries_per_file().max(1);
        let now = self.clock.now();
        let mut tables = Vec::new();
        let chunks: Vec<Vec<Entry>> = if entries.is_empty() {
            vec![Vec::new()]
        } else {
            entries.chunks(per_file).map(|c| c.to_vec()).collect()
        };
        let n_chunks = chunks.len();
        let mut rts_remaining = range_tombstones;
        for (i, chunk) in chunks.into_iter().enumerate() {
            // attach range tombstones that start within this chunk's range
            // (the last chunk absorbs whatever is left)
            let rts: Vec<Entry> = if i + 1 == n_chunks {
                std::mem::take(&mut rts_remaining)
            } else {
                let upper = chunk.last().map(|e| e.sort_key).unwrap_or(0);
                let (take, keep): (Vec<Entry>, Vec<Entry>) =
                    rts_remaining.into_iter().partition(|rt| rt.sort_key <= upper);
                rts_remaining = keep;
                take
            };
            let has_tombstones = rts.iter().len() > 0 || chunk.iter().any(|e| e.is_tombstone());
            let id = self.next_file_id();
            let table = SsTable::build(
                id,
                chunk,
                rts,
                now,
                if has_tombstones { oldest_tombstone_ts } else { None },
                &self.config,
                self.backend.as_ref(),
            )?;
            if table.meta.num_entries > 0 {
                tables.push(Arc::new(table));
            }
        }
        Ok(tables)
    }

    /// Merges one or more files of `level` into `level + 1` (leveling
    /// partial compaction). FADE's delete-driven trigger passes every
    /// TTL-expired file of the level so they are compacted in a single job.
    fn compact_files(&mut self, level: usize, file_ids: &[u64]) -> Result<()> {
        let sources: Vec<Arc<SsTable>> = {
            let run = match self.levels[level].runs.first() {
                Some(r) => r,
                None => return Ok(()),
            };
            file_ids.iter().filter_map(|id| run.find_by_id(*id).map(Arc::clone)).collect()
        };
        if sources.is_empty() {
            return Ok(());
        }
        let now = self.clock.now();
        let ttl_trigger = self
            .config
            .delete_persistence_threshold
            .map(|dth| {
                sources
                    .iter()
                    .any(|s| s.has_tombstones() && s.tombstone_age(now) >= dth / 2)
            })
            .unwrap_or(false);

        let deepest = self.deepest_nonempty_level().unwrap_or(level);
        // Files picked from the deepest level while that level still has
        // headroom are being compacted only to persist their tombstones (a
        // TTL-driven compaction): rewrite them in place instead of growing
        // the tree by a level. A saturated deepest level still spills down.
        let saturated = self.levels[level].total_bytes() > self.config.level_capacity_bytes(level + 1);
        let dst_level = if level == deepest && !saturated { level } else { level + 1 };
        self.ensure_level(dst_level);

        let overlapping: Vec<Arc<SsTable>> = if dst_level == level {
            Vec::new()
        } else {
            self.levels[dst_level]
                .runs
                .first()
                .map(|r| {
                    r.tables()
                        .iter()
                        .filter(|t| sources.iter().any(|s| t.overlaps_table(s)))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };

        let drop_tombstones = dst_level >= deepest;

        let mut inputs = Vec::with_capacity(sources.len() + overlapping.len());
        let mut rts = Vec::new();
        let mut oldest: Option<Timestamp> = None;
        let mut input_entries = 0u64;
        for table in sources.iter().chain(overlapping.iter()) {
            inputs.push(table.read_all_entries(self.backend.as_ref())?);
            rts.extend(table.range_tombstones.iter().cloned());
            oldest = min_opt(oldest, table.meta.oldest_tombstone_ts);
            input_entries += table.meta.num_entries;
        }
        let merged = merge_entries(inputs, rts, drop_tombstones);

        // detach inputs and release their pages
        if let Some(run) = self.levels[level].runs.first_mut() {
            run.remove_ids(file_ids);
        }
        self.levels[level].prune_empty_runs();
        if dst_level != level {
            if let Some(run) = self.levels[dst_level].runs.first_mut() {
                run.remove_ids(&overlapping.iter().map(|t| t.meta.id).collect::<Vec<_>>());
            }
            self.levels[dst_level].prune_empty_runs();
        }
        for t in sources.iter().chain(overlapping.iter()) {
            t.release_pages(self.backend.as_ref());
        }

        let oldest = if drop_tombstones { None } else { oldest };
        let tables = self.build_tables(merged.entries, merged.range_tombstones, oldest)?;
        if !tables.is_empty() {
            if self.levels[dst_level].runs.is_empty() {
                self.levels[dst_level].runs.push(Run::default());
            }
            self.levels[dst_level].runs[0].add_tables(tables);
        }
        self.stats.compactions += 1;
        if ttl_trigger {
            self.stats.ttl_triggered_compactions += 1;
        }
        self.stats.entries_compacted += input_entries;
        self.commit_manifest()
    }

    /// Merges every run of `level` into one run appended to `level + 1`
    /// (tiering compaction).
    fn compact_tier(&mut self, level: usize) -> Result<()> {
        self.ensure_level(level + 1);
        let source_runs = std::mem::take(&mut self.levels[level].runs);
        if source_runs.is_empty() {
            return Ok(());
        }
        // Tiering merges only the source level's runs; runs already resident
        // in deeper levels are not part of the merge, so tombstones may only
        // be discarded when *nothing* exists at the destination level or
        // below — otherwise an older version they cover could resurface.
        let drop_tombstones = self.deepest_nonempty_level().is_none_or(|d| d < level + 1);
        let mut inputs = Vec::new();
        let mut rts = Vec::new();
        let mut oldest: Option<Timestamp> = None;
        let mut input_entries = 0u64;
        let mut victims = Vec::new();
        for run in &source_runs {
            for table in run.tables() {
                inputs.push(table.read_all_entries(self.backend.as_ref())?);
                rts.extend(table.range_tombstones.iter().cloned());
                oldest = min_opt(oldest, table.meta.oldest_tombstone_ts);
                input_entries += table.meta.num_entries;
                victims.push(Arc::clone(table));
            }
        }
        let merged = merge_entries(inputs, rts, drop_tombstones);
        for t in victims {
            t.release_pages(self.backend.as_ref());
        }
        let oldest = if drop_tombstones { None } else { oldest };
        let tables = self.build_tables(merged.entries, merged.range_tombstones, oldest)?;
        if !tables.is_empty() {
            self.levels[level + 1].runs.insert(0, Run::new(tables));
        }
        self.stats.compactions += 1;
        self.stats.entries_compacted += input_entries;
        self.commit_manifest()
    }

    /// Reads, merges and rewrites the entire tree into its last level,
    /// optionally filtering out entries whose delete key falls in the given
    /// range (the state-of-the-art implementation of secondary range
    /// deletes).
    fn full_tree_compaction_filtered(
        &mut self,
        delete_key_range: Option<(DeleteKey, DeleteKey)>,
    ) -> Result<()> {
        let deepest = match self.deepest_nonempty_level() {
            Some(d) => d,
            None => return Ok(()),
        };
        let mut inputs = Vec::new();
        let mut rts = Vec::new();
        let mut input_entries = 0u64;
        let mut victims = Vec::new();
        for level in &self.levels {
            for run in &level.runs {
                for table in run.tables() {
                    inputs.push(table.read_all_entries(self.backend.as_ref())?);
                    rts.extend(table.range_tombstones.iter().cloned());
                    input_entries += table.meta.num_entries;
                    victims.push(Arc::clone(table));
                }
            }
        }
        let mut merged = merge_entries(inputs, rts, true);
        if let Some((d_lo, d_hi)) = delete_key_range {
            merged.entries.retain(|e| e.delete_key < d_lo || e.delete_key >= d_hi);
        }
        for level in &mut self.levels {
            *level = Level::new();
        }
        for t in victims {
            t.release_pages(self.backend.as_ref());
        }
        let tables = self.build_tables(merged.entries, Vec::new(), None)?;
        if !tables.is_empty() {
            self.ensure_level(deepest);
            self.levels[deepest].runs.push(Run::new(tables));
        }
        self.stats.compactions += 1;
        self.stats.full_tree_compactions += 1;
        self.stats.entries_compacted += input_entries;
        self.commit_manifest()
    }

    // ---------------------------------------------------------- introspection

    /// Engine configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// The logical clock driving TTLs and tombstone ages.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Lifetime operation counters.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Snapshot of the device's I/O counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.backend.stats().snapshot()
    }

    /// The storage device the tree writes to.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Number of disk levels currently allocated.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of files per level (index 0 = first disk level).
    pub fn files_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.file_count()).collect()
    }

    /// Total entries currently stored on disk (including tombstones and
    /// stale versions).
    pub fn disk_entries(&self) -> u64 {
        self.levels.iter().map(|l| l.total_entries()).sum()
    }

    /// Total bytes currently stored on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.total_bytes()).sum()
    }

    /// Number of entries currently buffered in memory.
    pub fn buffered_entries(&self) -> usize {
        self.memtable.len()
    }

    /// Read-only access to the disk levels (used by policies' tests and the
    /// benchmark harness for white-box assertions).
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Write amplification so far (paper §3.2.3): device bytes written beyond
    /// the bytes of new/modified data, relative to the latter.
    pub fn write_amplification(&self) -> f64 {
        self.stats.write_amplification(self.io_snapshot().bytes_written)
    }

    /// In-memory footprint of all filters and fence pointers, in bytes.
    pub fn metadata_footprint(&self) -> u64 {
        self.levels
            .iter()
            .flat_map(|l| l.all_tables())
            .map(|t| t.memory_footprint() as u64)
            .sum()
    }

    /// Produces a measurement-time snapshot of the tree contents: space
    /// amplification inputs, tombstone counts and tombstone-age distribution.
    ///
    /// Note: this reads every page of the tree through the backend, so take
    /// an [`LsmTree::io_snapshot`] *before* calling it if you are measuring
    /// I/O activity.
    pub fn snapshot_contents(&self) -> Result<ContentSnapshot> {
        let now = self.clock.now();
        let mut all: Vec<Entry> = Vec::new();
        let mut rts: Vec<Entry> = Vec::new();
        let mut tombstone_file_ages = Vec::new();
        let mut files = 0usize;
        let mut metadata_bytes = 0u64;
        for level in &self.levels {
            for run in &level.runs {
                for table in run.tables() {
                    files += 1;
                    metadata_bytes += table.memory_footprint() as u64;
                    if table.has_tombstones() {
                        tombstone_file_ages.push((table.tombstone_age(now), table.tombstone_count()));
                    }
                    all.extend(table.read_all_entries(self.backend.as_ref())?);
                    rts.extend(table.range_tombstones.iter().cloned());
                }
            }
        }
        // include the buffer
        all.extend(self.memtable.iter().cloned());
        rts.extend(self.memtable.range_tombstones().iter().cloned());

        let total_entries = (all.len() + rts.len()) as u64;
        let total_bytes: u64 = all.iter().map(|e| e.encoded_size() as u64).sum::<u64>()
            + rts.iter().map(|e| e.encoded_size() as u64).sum::<u64>();
        let tombstones =
            all.iter().filter(|e| e.is_tombstone()).count() as u64 + rts.len() as u64;

        let merged = merge_entries(vec![all], rts, true);
        let unique_entries = merged.entries.len() as u64;
        let unique_bytes: u64 = merged.entries.iter().map(|e| e.encoded_size() as u64).sum();

        Ok(ContentSnapshot {
            total_bytes,
            unique_bytes,
            total_entries,
            unique_entries,
            tombstones,
            tombstone_file_ages,
            populated_levels: self.levels.iter().filter(|l| !l.is_empty()).count(),
            files,
            metadata_bytes,
        })
    }
}

fn min_opt(a: Option<Timestamp>, b: Option<Timestamp>) -> Option<Timestamp> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::{FileSelection, SaturationPolicy};

    fn tree(config: LsmConfig) -> LsmTree {
        let backend = lethe_storage::InMemoryBackend::new_shared();
        LsmTree::new(
            config,
            backend,
            LogicalClock::new(),
            Box::new(SaturationPolicy::new(FileSelection::MinOverlap)),
        )
        .unwrap()
    }

    fn value(i: u64) -> Bytes {
        Bytes::from(format!("value-{i:08}"))
    }

    #[test]
    fn put_get_roundtrip_through_flushes() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..500u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        for k in (0..500u64).step_by(7) {
            assert_eq!(t.get(k).unwrap(), Some(value(k)), "key {k}");
        }
        assert_eq!(t.get(10_000).unwrap(), None);
        assert!(t.level_count() >= 1);
        assert!(t.stats().flushes > 0);
    }

    #[test]
    fn updates_return_newest_value() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..200u64 {
            t.put(k, k, value(k)).unwrap();
        }
        for k in 0..200u64 {
            t.put(k, k, Bytes::from(format!("new-{k}"))).unwrap();
        }
        t.flush().unwrap();
        for k in (0..200u64).step_by(11) {
            assert_eq!(t.get(k).unwrap(), Some(Bytes::from(format!("new-{k}"))));
        }
    }

    #[test]
    fn point_delete_hides_key_everywhere() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..300u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        for k in (0..300u64).step_by(3) {
            t.delete(k).unwrap();
        }
        // visible immediately (from the buffer)
        assert_eq!(t.get(0).unwrap(), None);
        assert_eq!(t.get(3).unwrap(), None);
        assert_eq!(t.get(1).unwrap(), Some(value(1)));
        // and still deleted after flush + compaction
        t.flush().unwrap();
        t.maintain().unwrap();
        assert_eq!(t.get(0).unwrap(), None);
        assert_eq!(t.get(299).unwrap(), Some(value(299)));
    }

    #[test]
    fn range_delete_on_sort_key() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..200u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.delete_range(50, 100).unwrap();
        assert_eq!(t.get(49).unwrap(), Some(value(49)));
        assert_eq!(t.get(50).unwrap(), None);
        assert_eq!(t.get(99).unwrap(), None);
        assert_eq!(t.get(100).unwrap(), Some(value(100)));
        // after flush and compaction the result is identical
        t.flush().unwrap();
        t.maintain().unwrap();
        assert_eq!(t.get(75).unwrap(), None);
        let live = t.range(0, 200).unwrap();
        assert_eq!(live.len(), 150);
        // empty range delete is a no-op
        t.delete_range(10, 10).unwrap();
        assert_eq!(t.get(10).unwrap(), Some(value(10)));
    }

    #[test]
    fn range_scan_merges_memtable_and_disk() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..100u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        // overwrite some keys in the buffer only
        for k in 40..60u64 {
            t.put(k, k, Bytes::from_static(b"fresh")).unwrap();
        }
        let got = t.range(30, 70).unwrap();
        assert_eq!(got.len(), 40);
        for (k, v) in got {
            if (40..60).contains(&k) {
                assert_eq!(v, Bytes::from_static(b"fresh"));
            } else {
                assert_eq!(v, value(k));
            }
        }
    }

    #[test]
    fn tree_grows_levels_under_load() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.size_ratio = 3;
        let mut t = tree(cfg);
        for k in 0..3000u64 {
            t.put(k % 1000, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        assert!(t.level_count() >= 2, "levels: {}", t.level_count());
        assert!(t.stats().compactions > 0);
        assert!(t.write_amplification() > 0.0);
        assert!(t.disk_entries() > 0);
        assert!(t.disk_bytes() > 0);
        assert!(t.metadata_footprint() > 0);
    }

    #[test]
    fn tiering_keeps_multiple_runs() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.merge_policy = MergePolicy::Tiering;
        cfg.size_ratio = 4;
        let mut t = tree(cfg);
        for k in 0..2000u64 {
            t.put(k % 500, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        for k in (0..500u64).step_by(13) {
            assert!(t.get(k).unwrap().is_some(), "key {k}");
        }
        assert!(t.stats().compactions > 0);
    }

    #[test]
    fn secondary_range_delete_with_page_drops() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = 4;
        cfg.max_pages_per_file = 8;
        cfg.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
        let mut t = tree(cfg);
        // delete key is decorrelated from sort key
        for k in 0..1000u64 {
            t.put(k, (k * 7919) % 10_000, value(k)).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        let stats = t.secondary_range_delete(0, 5_000).unwrap();
        assert!(stats.entries_deleted > 300, "{stats:?}");
        assert!(stats.full_page_drops > 0, "{stats:?}");
        // all surviving entries have delete keys outside the range
        let survivors = t.secondary_range_scan(0, 10_000).unwrap();
        assert!(survivors.iter().all(|e| e.delete_key >= 5_000));
        // point lookups agree
        for k in 0..1000u64 {
            let deleted = (k * 7919) % 10_000 < 5_000;
            assert_eq!(t.get(k).unwrap().is_none(), deleted, "key {k}");
        }
    }

    #[test]
    fn secondary_range_delete_with_full_compaction_baseline() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.secondary_delete_mode = SecondaryDeleteMode::FullTreeCompaction;
        let mut t = tree(cfg);
        for k in 0..500u64 {
            t.put(k, (k * 31) % 1000, value(k)).unwrap();
        }
        t.flush().unwrap();
        let before = t.stats().full_tree_compactions;
        let stats = t.secondary_range_delete(0, 500).unwrap();
        assert_eq!(t.stats().full_tree_compactions, before + 1);
        assert!(stats.entries_deleted > 100);
        for k in 0..500u64 {
            let deleted = (k * 31) % 1000 < 500;
            assert_eq!(t.get(k).unwrap().is_none(), deleted, "key {k}");
        }
    }

    #[test]
    fn blind_delete_suppression() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.suppress_blind_deletes = true;
        let mut t = tree(cfg);
        for k in 0..100u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        // deleting an existing key inserts a tombstone
        assert!(t.delete(5).unwrap());
        // deleting a key that never existed is suppressed
        assert!(!t.delete(1_000_000).unwrap());
        assert_eq!(t.stats().blind_deletes_suppressed, 1);
        assert_eq!(t.get(5).unwrap(), None);
    }

    #[test]
    fn force_full_compaction_collapses_tree() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.size_ratio = 3;
        let mut t = tree(cfg);
        for k in 0..2000u64 {
            t.put(k % 700, k, value(k)).unwrap();
        }
        for k in (0..700u64).step_by(2) {
            t.delete(k).unwrap();
        }
        t.flush().unwrap();
        t.maintain().unwrap();
        t.force_full_compaction().unwrap();
        let snap = t.snapshot_contents().unwrap();
        // a full compaction persists every delete: no tombstones remain
        assert_eq!(snap.tombstones, 0);
        assert_eq!(snap.populated_levels, 1);
        // and queries still work
        assert!(t.get(1).unwrap().is_some());
        assert_eq!(t.get(0).unwrap(), None);
    }

    #[test]
    fn snapshot_reports_space_amplification() {
        let mut t = tree(LsmConfig::small_for_test());
        for k in 0..400u64 {
            t.put(k % 100, k, value(k)).unwrap();
        }
        t.flush().unwrap();
        let snap = t.snapshot_contents().unwrap();
        assert_eq!(snap.unique_entries, 100);
        assert!(snap.total_entries >= snap.unique_entries);
        assert!(snap.space_amplification() >= 0.0);
        assert!(snap.files > 0);
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        // large buffer so nothing is flushed (and the WAL never truncated):
        // the whole working set must be recoverable from the log alone
        let mut cfg = LsmConfig::small_for_test();
        cfg.buffer_pages = 1024;
        let wal = std::sync::Arc::new(lethe_storage::MemWal::new());

        struct SharedWal(std::sync::Arc<lethe_storage::MemWal>);
        impl Wal for SharedWal {
            fn append(&self, r: WalRecord) -> Result<()> {
                self.0.append(r)
            }
            fn replay(&self) -> Result<Vec<WalRecord>> {
                self.0.replay()
            }
            fn truncate(&self) -> Result<()> {
                self.0.truncate()
            }
            fn sync(&self) -> Result<()> {
                self.0.sync()
            }
            fn purge_older_than(&self, cutoff: Timestamp) -> Result<usize> {
                self.0.purge_older_than(cutoff)
            }
        }

        let mut t = tree(cfg.clone()).with_wal(Box::new(SharedWal(std::sync::Arc::clone(&wal))));
        for k in 0..50u64 {
            t.put(k, k, value(k)).unwrap();
        }
        t.delete(7).unwrap();
        // simulate a crash: build a fresh tree and replay the WAL
        let mut recovered = tree(cfg);
        let replayed = recovered.recover_from(wal.as_ref()).unwrap();
        assert_eq!(replayed, 51);
        assert_eq!(recovered.get(3).unwrap(), Some(value(3)));
        assert_eq!(recovered.get(7).unwrap(), None);
    }

    #[test]
    fn wal_replay_preserves_tombstones_stats_and_timestamps() {
        // regression: the old replay path went through the public put/delete
        // API, so blind-delete suppression could drop a legitimately logged
        // tombstone, ingest stats were double-counted across restarts, and
        // replayed records were re-stamped by the ingest clock
        let mut cfg = LsmConfig::small_for_test();
        cfg.buffer_pages = 1024;
        cfg.suppress_blind_deletes = true;
        let wal = lethe_storage::MemWal::new();
        // a tombstone whose key was flushed before the crash: the reopened
        // buffer has no trace of it, so the public path would call it blind
        wal.append(WalRecord::Delete { sort_key: 5, ts: 12_345 }).unwrap();
        wal.append(WalRecord::Put {
            sort_key: 6,
            delete_key: 6,
            value: Bytes::from_static(b"v"),
            ts: 12_400,
        })
        .unwrap();
        let mut t = tree(cfg);
        assert_eq!(t.recover_from(&wal).unwrap(), 2);
        // the logged tombstone survives replay
        assert_eq!(t.buffered_entries(), 2);
        assert_eq!(t.get(5).unwrap(), None);
        assert_eq!(t.get(6).unwrap(), Some(Bytes::from_static(b"v")));
        // ingest statistics are not re-counted
        assert_eq!(t.stats().entries_ingested, 0);
        assert_eq!(t.stats().point_deletes_issued, 0);
        assert_eq!(t.stats().blind_deletes_suppressed, 0);
        // the clock sits at the logged watermark, not a re-stamped one
        assert_eq!(t.clock().now(), 12_400);
    }

    #[test]
    fn manifest_recovery_restores_flushed_tree() {
        use lethe_storage::{FileBackend, FileWal, Manifest};
        let dir = std::env::temp_dir().join(format!("lethe-tree-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = LsmConfig::small_for_test();
        cfg.size_ratio = 3;
        let open = |cfg: &LsmConfig| -> (LsmTree, FileWal) {
            let backend = Arc::new(FileBackend::open(&dir).unwrap());
            let wal = FileWal::open(dir.join("lethe.wal")).unwrap();
            let manifest = Manifest::open(dir.join("lethe.manifest")).unwrap();
            let t = LsmTree::new(
                cfg.clone(),
                backend,
                LogicalClock::new(),
                Box::new(crate::compaction::SaturationPolicy::new(
                    crate::compaction::FileSelection::MinOverlap,
                )),
            )
            .unwrap()
            .with_manifest(manifest);
            (t, wal)
        };
        let (files_before, seq_hwm);
        {
            let (mut t, wal) = open(&cfg);
            t.recover(&wal).unwrap();
            let mut t = t.with_wal(Box::new(wal));
            for k in 0..2000u64 {
                t.put(k % 700, k, value(k)).unwrap();
            }
            for k in (0..700u64).step_by(5) {
                t.delete(k).unwrap();
            }
            t.flush().unwrap();
            t.maintain().unwrap();
            files_before = t.files_per_level();
            seq_hwm = t.next_seqnum;
            assert!(t.level_count() >= 2, "need a multi-level tree to make this meaningful");
        }
        {
            let (mut t, wal) = open(&cfg);
            let report = t.recover(&wal).unwrap();
            assert_eq!(report.files_recovered, files_before.iter().sum::<usize>());
            assert_eq!(t.files_per_level(), files_before);
            assert!(t.next_seqnum >= seq_hwm, "seqnums must not regress across restarts");
            for k in 0..700u64 {
                let expect_deleted = k % 5 == 0;
                let got = t.get(k).unwrap();
                if expect_deleted {
                    assert_eq!(got, None, "key {k} should stay deleted after recovery");
                } else {
                    let newest = (0..2000u64).filter(|v| v % 700 == k).max().unwrap();
                    assert_eq!(got, Some(value(newest)), "key {k}");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clock_advances_with_ingestion() {
        let mut cfg = LsmConfig::small_for_test();
        cfg.ingestion_rate = 1000; // 1000 entries/s → 1ms per entry
        let mut t = tree(cfg);
        for k in 0..100u64 {
            t.put(k, k, value(k)).unwrap();
        }
        assert_eq!(t.clock().now(), 100_000);
    }
}
