//! Atomic multi-operation write batches.
//!
//! A [`WriteBatch`] groups puts, point deletes and secondary range deletes
//! into one unit that commits atomically: the engine logs the whole batch as
//! a single WAL frame (so crash recovery replays it entirely or not at all —
//! a torn tail discards the frame whole) and applies its point operations to
//! the write buffer under a single memtable write lock (so concurrent
//! readers never observe a prefix of the batch). Across shards, the sharded
//! front-end splits one logical batch into per-shard slices and runs a
//! two-phase commit over the per-shard WALs; see `lethe-core`'s shard module.

use lethe_storage::{BatchOp, DeleteKey, SortKey};

/// An ordered, atomic group of write operations.
///
/// Build one incrementally, then hand it to `LsmTree::write_batch` (or the
/// engine front-ends in `lethe-core`). Operations apply in insertion order
/// under a single shared commit timestamp and consecutive sequence numbers.
///
/// ```
/// use lethe_lsm::batch::WriteBatch;
///
/// let mut batch = WriteBatch::new();
/// batch.put(1, 100, "a");
/// batch.put(2, 200, "b");
/// batch.delete(3);
/// assert_eq!(batch.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        WriteBatch { ops: Vec::with_capacity(n) }
    }

    /// Appends a put of `(sort_key, delete_key, value)`.
    pub fn put(
        &mut self,
        sort_key: SortKey,
        delete_key: DeleteKey,
        value: impl Into<bytes::Bytes>,
    ) -> &mut Self {
        self.ops.push(BatchOp::Put { sort_key, delete_key, value: value.into() });
        self
    }

    /// Appends a point delete of `sort_key`.
    ///
    /// Unlike the single-op delete path, batch deletes are never suppressed
    /// as blind: the batch is logged as one opaque frame before any of it is
    /// evaluated against the tree.
    pub fn delete(&mut self, sort_key: SortKey) -> &mut Self {
        self.ops.push(BatchOp::Delete { sort_key });
        self
    }

    /// Appends a secondary range delete of delete keys `[d_lo, d_hi)`.
    pub fn secondary_range_delete(&mut self, d_lo: DeleteKey, d_hi: DeleteKey) -> &mut Self {
        self.ops.push(BatchOp::SecondaryDelete { d_lo, d_hi });
        self
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operations (committing it is a no-op).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in insertion order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Consumes the batch, yielding its operations.
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }
}

impl From<Vec<BatchOp>> for WriteBatch {
    fn from(ops: Vec<BatchOp>) -> Self {
        WriteBatch { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order() {
        let mut b = WriteBatch::new();
        b.put(1, 10, "x").delete(2).secondary_range_delete(5, 9);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let ops = b.clone().into_ops();
        assert!(matches!(ops[0], BatchOp::Put { sort_key: 1, .. }));
        assert!(matches!(ops[1], BatchOp::Delete { sort_key: 2 }));
        assert!(matches!(ops[2], BatchOp::SecondaryDelete { d_lo: 5, d_hi: 9 }));
        assert_eq!(WriteBatch::from(ops), b);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(WriteBatch::new().is_empty());
        assert_eq!(WriteBatch::with_capacity(8).len(), 0);
    }
}
