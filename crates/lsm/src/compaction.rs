//! Compaction policies.
//!
//! A policy answers two questions after every flush (paper §4.1.4): *should a
//! compaction run now*, and *which file should it compact*. The engine calls
//! [`CompactionPolicy::pick`] in a loop until it returns `None`.
//!
//! This crate ships the state-of-the-art baselines:
//!
//! * [`SaturationPolicy`] with [`FileSelection::MinOverlap`] — compact only
//!   when a level exceeds its capacity and pick the file with the least
//!   overlap with the next level (write-amplification optimised; the paper's
//!   "SO" mode and the default of production engines).
//! * [`SaturationPolicy`] with [`FileSelection::MostTombstones`] — RocksDB's
//!   tombstone-count-based file selection (§3.1.3).
//! * [`PeriodicFullCompactionPolicy`] — the industry workaround for delete
//!   persistence: force a full-tree compaction every `period` time units.
//!
//! The FADE policy of the paper lives in the `lethe-core` crate and
//! implements the same trait; the size-tiered and date-tiered strategies
//! live in [`crate::strategy`].
//!
//! Policies only *choose* work. Executing a chosen job
//! ([`crate::tree::JobPlan::execute`]) streams the input files through the
//! lazy cursors and heap merge of [`crate::cursor`], so even a policy that
//! picks an arbitrarily large merge (e.g. a forced full-tree compaction)
//! runs in memory bounded by output-file and delete-tile granularity, never
//! by total input size.

use crate::config::{LsmConfig, MergePolicy};
use crate::level::Level;
use crate::sstable::SsTable;
use lethe_storage::{Histogram, Timestamp};
use std::sync::Arc;

/// A read-only view of the tree handed to compaction policies.
pub struct TreeView<'a> {
    /// Disk levels (index 0 = the first disk level, "Level 1" in the paper).
    pub levels: &'a [Level],
    /// Capacity in bytes of each disk level.
    pub capacities: Vec<u64>,
    /// Current logical time.
    pub now: Timestamp,
    /// Engine configuration.
    pub config: &'a LsmConfig,
    /// System-wide histogram over the sort key, used to estimate how many
    /// entries a range tombstone invalidates (FADE's `b`).
    pub sort_key_histogram: &'a Histogram,
    /// True while a live snapshot gates tombstone GC (see
    /// `lethe_lsm::snapshot`): a compaction planned now must retain its
    /// tombstones, so delete-persistence-driven (TTL) triggers should be
    /// deferred — a gated TTL rewrite would make no progress and be re-picked
    /// forever. Saturation-driven work proceeds normally.
    pub tombstone_gc_gated: bool,
}

impl<'a> TreeView<'a> {
    /// Index of the deepest level that currently holds data, if any.
    pub fn deepest_nonempty_level(&self) -> Option<usize> {
        (0..self.levels.len()).rev().find(|&i| !self.levels[i].is_empty())
    }

    /// True if `level` holds more bytes than its capacity.
    pub fn is_saturated(&self, level: usize) -> bool {
        match self.config.merge_policy {
            MergePolicy::Leveling => {
                self.levels[level].total_bytes() > self.capacities[level]
            }
            // under tiering a level is "full" once it has accumulated T runs
            MergePolicy::Tiering => self.levels[level].run_count() >= self.config.size_ratio,
        }
    }

    /// Estimated number of entries in the whole tree invalidated by the
    /// tombstones of `table`: exact point-tombstone count plus a
    /// histogram-based estimate for its range tombstones (paper §4.1.3).
    pub fn estimated_invalidation_count(&self, table: &SsTable) -> f64 {
        let mut b = table.meta.num_point_tombstones as f64;
        for rt in &table.range_tombstones {
            if let Some(end) = rt.range_end() {
                b += self.sort_key_histogram.estimate_range(rt.sort_key, end);
            }
        }
        b
    }

    /// Total bytes of next-level files overlapping `table`'s key range
    /// (the merge cost proxy used by overlap-driven selection).
    pub fn overlap_bytes(&self, level: usize, table: &SsTable) -> u64 {
        if level + 1 >= self.levels.len() {
            return 0;
        }
        self.levels[level + 1]
            .all_tables()
            .filter(|t| t.overlaps_table(table))
            .map(|t| t.meta.data_bytes)
            .sum()
    }
}

/// A unit of compaction work chosen by a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionTask {
    /// Merge one file of `level` into `level + 1` (leveling, partial
    /// compaction).
    LeveledPartial {
        /// Source level index.
        level: usize,
        /// Id of the file to move down.
        file_id: u64,
    },
    /// Merge several files of `level` into `level + 1` in a single job
    /// (FADE compacts every TTL-expired file of a level together, paper
    /// Figure 4: "all files with expired TTL are compacted").
    LeveledMulti {
        /// Source level index.
        level: usize,
        /// Ids of the files to move down together.
        file_ids: Vec<u64>,
    },
    /// Merge every run of `level` into a single run placed in `level + 1`
    /// (tiering).
    TieredLevel {
        /// Source level index.
        level: usize,
    },
    /// Merge a *subset* of `level`'s runs — identified by the ids of every
    /// file they contain — into one run that **replaces them in place**. The
    /// tiered strategies (see [`crate::strategy`]) use this to merge exactly
    /// one size class or one time window without touching the level's other
    /// runs. The planner only accepts whole runs that are **contiguous** in
    /// the level's run list: the merged run takes the segment's position, so
    /// the global recency order of runs (shallower level first, then newer
    /// run first) is preserved and reads stay correct.
    MergeRuns {
        /// Source level index.
        level: usize,
        /// Ids of every file of the runs to merge (whole adjacent runs only).
        file_ids: Vec<u64>,
    },
    /// Retire whole files without reading them: the files vanish from every
    /// level in one atomic version install, their manifest entries are
    /// removed, and their pages are reclaimed — zero pages read or written.
    /// This is how a date-tiered TTL expiry drops a wholly-expired time
    /// window. The planner routes the task through the snapshot gate: while
    /// a live snapshot pins history the drop is deferred (counted in
    /// `TreeStats::tombstone_gc_delayed`) and the expired files stay
    /// readable.
    DropFiles {
        /// Ids of the files to retire, across all levels.
        file_ids: Vec<u64>,
    },
    /// Read, merge and rewrite the entire tree into its last level.
    FullTree,
}

/// A compaction trigger + file selection strategy.
pub trait CompactionPolicy: Send {
    /// Returns the next compaction to perform, or `None` if the tree needs no
    /// work right now. Called repeatedly until it returns `None`.
    fn pick(&mut self, view: &TreeView<'_>) -> Option<CompactionTask>;

    /// Human-readable policy name (used by the benchmark harness output).
    fn name(&self) -> &'static str;

    /// Notifies the policy that the tree now has `level_count` disk levels
    /// (FADE re-derives its per-level TTLs here).
    fn on_tree_growth(&mut self, level_count: usize) {
        let _ = level_count;
    }
}

/// How saturation-driven policies choose the file to compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileSelection {
    /// The file with the smallest byte-overlap with the next level
    /// (minimises write amplification; ties broken by most tombstones).
    MinOverlap,
    /// The file containing the most tombstones (RocksDB's delete-triggered
    /// selection; ties broken by smallest overlap).
    MostTombstones,
    /// The oldest file in the level (simple aging heuristic).
    Oldest,
}

/// The classic saturation-driven compaction policy used by state-of-the-art
/// engines: compact only when a level exceeds its size threshold.
#[derive(Debug, Clone)]
pub struct SaturationPolicy {
    selection: FileSelection,
}

impl SaturationPolicy {
    /// Creates a saturation-driven policy with the given file selection.
    pub fn new(selection: FileSelection) -> Self {
        SaturationPolicy { selection }
    }

    /// Picks a file from `level` according to the configured selection.
    fn select_file(&self, view: &TreeView<'_>, level: usize) -> Option<u64> {
        let tables: Vec<&Arc<SsTable>> = view.levels[level].all_tables().collect();
        if tables.is_empty() {
            return None;
        }
        let chosen = match self.selection {
            FileSelection::MinOverlap => tables.iter().min_by(|a, b| {
                view.overlap_bytes(level, a)
                    .cmp(&view.overlap_bytes(level, b))
                    .then_with(|| b.tombstone_count().cmp(&a.tombstone_count()))
            }),
            FileSelection::MostTombstones => tables.iter().max_by(|a, b| {
                a.tombstone_count()
                    .cmp(&b.tombstone_count())
                    .then_with(|| view.overlap_bytes(level, b).cmp(&view.overlap_bytes(level, a)))
            }),
            FileSelection::Oldest => tables.iter().min_by_key(|t| t.meta.created_at),
        };
        chosen.map(|t| t.meta.id)
    }
}

impl CompactionPolicy for SaturationPolicy {
    fn pick(&mut self, view: &TreeView<'_>) -> Option<CompactionTask> {
        // smallest saturated level first (ties among levels go to the
        // smallest level to avoid write stalls, paper §4.1.4)
        for level in 0..view.levels.len() {
            if view.levels[level].is_empty() || !view.is_saturated(level) {
                continue;
            }
            return match view.config.merge_policy {
                MergePolicy::Leveling => self
                    .select_file(view, level)
                    .map(|file_id| CompactionTask::LeveledPartial { level, file_id }),
                MergePolicy::Tiering => Some(CompactionTask::TieredLevel { level }),
            };
        }
        None
    }

    fn name(&self) -> &'static str {
        match self.selection {
            FileSelection::MinOverlap => "saturation/min-overlap",
            FileSelection::MostTombstones => "saturation/most-tombstones",
            FileSelection::Oldest => "saturation/oldest",
        }
    }
}

/// The industry workaround the paper argues against: in addition to
/// saturation-driven compactions, force a full-tree compaction every
/// `period` microseconds of logical time so that deletes eventually persist.
#[derive(Debug, Clone)]
pub struct PeriodicFullCompactionPolicy {
    inner: SaturationPolicy,
    period: Timestamp,
    last_full: Timestamp,
}

impl PeriodicFullCompactionPolicy {
    /// Creates the policy with a full-compaction `period` (logical µs).
    pub fn new(selection: FileSelection, period: Timestamp) -> Self {
        PeriodicFullCompactionPolicy {
            inner: SaturationPolicy::new(selection),
            period: period.max(1),
            last_full: 0,
        }
    }
}

impl CompactionPolicy for PeriodicFullCompactionPolicy {
    fn pick(&mut self, view: &TreeView<'_>) -> Option<CompactionTask> {
        if view.now.saturating_sub(self.last_full) >= self.period
            && view.deepest_nonempty_level().is_some()
        {
            self.last_full = view.now;
            return Some(CompactionTask::FullTree);
        }
        self.inner.pick(view)
    }

    fn name(&self) -> &'static str {
        "saturation+periodic-full-compaction"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Run;
    use bytes::Bytes;
    use lethe_storage::{Entry, InMemoryBackend};

    fn table(id: u64, lo: u64, hi: u64, tombstones: u64, backend: &InMemoryBackend) -> Arc<SsTable> {
        let cfg = LsmConfig::small_for_test();
        let mut entries: Vec<Entry> =
            (lo..hi).map(|k| Entry::put(k, k, k + 1, Bytes::from(vec![0u8; 32]))).collect();
        for i in 0..tombstones {
            entries.push(Entry::point_tombstone(hi + i, 1000 + i));
        }
        entries.sort_by_key(|e| e.sort_key);
        let ts = if tombstones > 0 { Some(10) } else { None };
        Arc::new(SsTable::build(id, entries, vec![], 0, ts, &cfg, backend).unwrap())
    }

    fn histogram() -> Histogram {
        Histogram::new(0, 1 << 20, 16)
    }

    #[test]
    fn no_compaction_when_under_capacity() {
        let backend = InMemoryBackend::new();
        let cfg = LsmConfig::small_for_test();
        let mut levels = vec![Level::new()];
        levels[0].runs.push(Run::new(vec![table(1, 0, 4, 0, &backend)]));
        let hist = histogram();
        let view = TreeView {
            levels: &levels,
            capacities: vec![u64::MAX],
            now: 0,
            config: &cfg,
            sort_key_histogram: &hist,
            tombstone_gc_gated: false,
        };
        let mut policy = SaturationPolicy::new(FileSelection::MinOverlap);
        assert!(policy.pick(&view).is_none());
        assert_eq!(policy.name(), "saturation/min-overlap");
    }

    #[test]
    fn saturated_level_triggers_partial_compaction() {
        let backend = InMemoryBackend::new();
        let cfg = LsmConfig::small_for_test();
        let mut levels = vec![Level::new(), Level::new()];
        levels[0].runs.push(Run::new(vec![
            table(1, 0, 100, 0, &backend),
            table(2, 100, 200, 5, &backend),
        ]));
        // next level holds a file overlapping file 1 only
        levels[1].runs.push(Run::new(vec![table(3, 0, 100, 0, &backend)]));
        let hist = histogram();
        let view = TreeView {
            levels: &levels,
            capacities: vec![1, u64::MAX], // level 0 over capacity
            now: 0,
            config: &cfg,
            sort_key_histogram: &hist,
            tombstone_gc_gated: false,
        };
        // min-overlap picks file 2 (no overlap below)
        let mut policy = SaturationPolicy::new(FileSelection::MinOverlap);
        assert_eq!(
            policy.pick(&view),
            Some(CompactionTask::LeveledPartial { level: 0, file_id: 2 })
        );
        // most-tombstones also picks file 2 (it holds the tombstones)
        let mut policy = SaturationPolicy::new(FileSelection::MostTombstones);
        assert_eq!(
            policy.pick(&view),
            Some(CompactionTask::LeveledPartial { level: 0, file_id: 2 })
        );
        // oldest picks either (same creation time) — must return some task
        let mut policy = SaturationPolicy::new(FileSelection::Oldest);
        assert!(matches!(policy.pick(&view), Some(CompactionTask::LeveledPartial { level: 0, .. })));
    }

    #[test]
    fn tiering_triggers_when_t_runs_accumulate() {
        let backend = InMemoryBackend::new();
        let mut cfg = LsmConfig::small_for_test();
        cfg.merge_policy = MergePolicy::Tiering;
        cfg.size_ratio = 3;
        let mut levels = vec![Level::new()];
        for id in 0..3 {
            levels[0].runs.push(Run::new(vec![table(id, 0, 10, 0, &backend)]));
        }
        let hist = histogram();
        let view = TreeView {
            levels: &levels,
            capacities: vec![u64::MAX],
            now: 0,
            config: &cfg,
            sort_key_histogram: &hist,
            tombstone_gc_gated: false,
        };
        let mut policy = SaturationPolicy::new(FileSelection::MinOverlap);
        assert_eq!(policy.pick(&view), Some(CompactionTask::TieredLevel { level: 0 }));
    }

    #[test]
    fn periodic_policy_issues_full_compactions() {
        let backend = InMemoryBackend::new();
        let cfg = LsmConfig::small_for_test();
        let mut levels = vec![Level::new()];
        levels[0].runs.push(Run::new(vec![table(1, 0, 10, 1, &backend)]));
        let hist = histogram();
        let mk_view = |now| TreeView {
            levels: &levels,
            capacities: vec![u64::MAX],
            now,
            config: &cfg,
            sort_key_histogram: &hist,
            tombstone_gc_gated: false,
        };
        let mut policy = PeriodicFullCompactionPolicy::new(FileSelection::MinOverlap, 1000);
        // at t=1000 the period elapsed → full tree compaction
        assert_eq!(policy.pick(&mk_view(1000)), Some(CompactionTask::FullTree));
        // immediately afterwards nothing more to do
        assert!(policy.pick(&mk_view(1001)).is_none());
        // after another period elapses it fires again
        assert_eq!(policy.pick(&mk_view(2100)), Some(CompactionTask::FullTree));
        assert_eq!(policy.name(), "saturation+periodic-full-compaction");
    }

    #[test]
    fn estimated_invalidation_counts_points_and_ranges() {
        let backend = InMemoryBackend::new();
        let cfg = LsmConfig::small_for_test();
        let mut hist = Histogram::new(0, 1000, 10);
        for k in 0..1000 {
            hist.add(k);
        }
        let mut entries: Vec<Entry> =
            (0..10u64).map(|k| Entry::put(k, k, k + 1, Bytes::from_static(b"v"))).collect();
        entries.push(Entry::point_tombstone(3, 100));
        entries.sort_by_key(|e| e.sort_key);
        let rt = Entry::range_tombstone(0, 500, 101);
        let t = SsTable::build(9, entries, vec![rt], 0, Some(1), &cfg, &backend).unwrap();
        let levels = vec![Level::new()];
        let view = TreeView {
            levels: &levels,
            capacities: vec![u64::MAX],
            now: 0,
            config: &cfg,
            sort_key_histogram: &hist,
            tombstone_gc_gated: false,
        };
        let b = view.estimated_invalidation_count(&t);
        // 1 point tombstone + ~500 estimated range-invalidations
        assert!(b > 400.0 && b < 600.0, "b = {b}");
    }
}
