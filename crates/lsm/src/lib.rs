//! # lethe-lsm
//!
//! A complete LSM-tree storage engine substrate for the Lethe reproduction
//! (*Lethe: A Tunable Delete-Aware LSM Engine*, SIGMOD 2020).
//!
//! The crate provides the tree itself and the state-of-the-art baselines the
//! paper compares against:
//!
//! * [`config`] — every knob of the paper's Table 1 (size ratio `T`, buffer
//!   geometry, Bloom bits, leveling/tiering, delete-tile granularity `h`,
//!   delete persistence threshold `D_th`).
//! * [`sstable`] — immutable sorted files laid out as delete tiles (the Key
//!   Weaving Storage Layout; `h = 1` is the classic layout).
//! * [`level`] — runs and levels.
//! * [`cursor`] — streaming entry cursors (lazy per-tile file readers) and
//!   the binary-heap k-way [`cursor::MergeIterator`] every scan, flush and
//!   compaction is built on.
//! * [`merge`] — the materialising sort-merge wrapper with tombstone
//!   semantics (content snapshots, tests).
//! * [`compaction`] — the [`compaction::CompactionPolicy`] trait plus the
//!   baseline policies (saturation + min-overlap, saturation + most
//!   tombstones, periodic full-tree compaction).
//! * [`batch`] — [`batch::WriteBatch`], the atomic multi-op unit the
//!   group-commit write path logs as a single WAL frame.
//! * [`tree`] — [`tree::LsmTree`], the engine: puts, deletes, range deletes,
//!   secondary range deletes, lookups, scans, flush and compaction, plus the
//!   lock-free [`tree::TreeReader`] read surface and the plan/execute/apply
//!   job cycle a background worker drives.
//! * [`version`] — immutable, `Arc`-shared version sets: snapshot-isolated
//!   reads and deferred page reclamation.
//! * [`reclaim`] — the page-retirement choke point every engine-path
//!   `drop_page` funnels through (enforced by the repo lint).
//! * [`snapshot`] — the live-snapshot tracker: registered seqnum fences
//!   gate tombstone GC and deferred page reclamation, with a lowest-freed
//!   watermark that fails stale handles closed.
//! * [`stats`] — space/write amplification and tombstone-age accounting.
//! * [`strategy`] — pluggable compaction strategies: size-tiered run
//!   bucketing and date-tiered time windows whose wholly-expired windows are
//!   retired as whole files without reading a page.
//!
//! The delete-aware pieces of the paper (the FADE compaction policy and the
//! Lethe engine wrapper) live in the `lethe-core` crate and plug into this
//! substrate through [`compaction::CompactionPolicy`] and [`config::LsmConfig`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod compaction;
pub mod config;
pub mod cursor;
pub mod level;
pub mod merge;
pub mod reclaim;
pub mod snapshot;
pub mod sstable;
pub mod stats;
pub mod strategy;
pub mod tree;
pub mod version;

pub use batch::WriteBatch;
pub use compaction::{
    CompactionPolicy, CompactionTask, FileSelection, PeriodicFullCompactionPolicy,
    SaturationPolicy, TreeView,
};
pub use cursor::{EntryCursor, MergeIterator, SsTableCursor, TombstoneWindow, VecCursor};
pub use config::{CompactionStrategy, LsmConfig, MergePolicy, SecondaryDeleteMode};
pub use level::{Level, Run};
pub use merge::{merge_entries, MergeOutput};
pub use snapshot::SnapshotTracker;
pub use sstable::{DeleteTile, PageHandle, SecondaryDeleteStats, SsTable, SsTableMeta};
pub use stats::{ContentSnapshot, TreeStats};
pub use strategy::{DateTieredPolicy, SizeTieredPolicy};
pub use tree::{
    BuildCtx, JobOutput, JobPlan, LsmTree, MaintenanceMode, RangeIter, RecoveryReport,
    TreeReader, TreeSnapshot,
};
pub use version::{Version, VersionSet};
